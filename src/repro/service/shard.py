"""Consistent-hash ring for sharding requests by program digest.

The service cache is content-addressed: every endpoint's key starts
with the canonical :func:`repro.ir.digest.program_digest` of the
program(s) involved.  Sharding by that same digest means every request
for a given program lands on the same backend, so each backend's
result cache, shared-predictor pool, and placement memo stay hot for
*its* slice of the keyspace instead of every backend cold-starting
every program.

A consistent-hash ring (Karger et al.) keeps that locality through
membership churn: each node is hashed onto a 64-bit circle at
``vnodes`` pseudo-random positions, and a key belongs to the first
node position clockwise from the key's own hash.  Removing one of K
nodes therefore remaps only the keys that node owned (~1/K of the
keyspace) and leaves every other key's owner untouched -- the property
the ring's hypothesis suite pins down.

Determinism matters as much as balance: positions come from SHA-256
of ``"node#index"`` strings, never from :func:`hash`, so every router
process (any ``PYTHONHASHSEED``, any host) derives the identical ring
from the same membership list.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Iterable, Iterator

__all__ = ["HashRing", "ring_position"]

_SPACE_BITS = 64
_SPACE = 1 << _SPACE_BITS


def ring_position(key: str) -> int:
    """Map an arbitrary key string to a position on the 64-bit circle."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring with virtual nodes.

    ``vnodes`` trades balance for memory/lookup cost: with V virtual
    nodes per physical node the largest ownership share concentrates
    around ``1/K * (1 + O(1/sqrt(V)))``; 64 keeps the spread tight
    enough that a 3-shard ring stays within a few percent of even.

    Lookup is ``O(log(K * vnodes))`` (one bisect); membership changes
    rebuild the sorted position list (``O(K * vnodes)``), which is fine
    for rings that change on operator action, not per request.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._positions: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def add(self, node: str) -> None:
        """Insert ``node`` at its ``vnodes`` ring positions (idempotent)."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        """Drop ``node``; only the keys it owned change hands."""
        if node not in self._nodes:
            raise KeyError(node)
        self._nodes.remove(node)
        self._rebuild()

    def _rebuild(self) -> None:
        pairs: list[tuple[int, str]] = []
        for node in self._nodes:
            for index in range(self.vnodes):
                position = ring_position(f"{node}#{index}")
                pairs.append((position, node))
        # Position collisions between distinct nodes are ~impossible in a
        # 64-bit space, but sorting the (position, node) pair makes the
        # tie-break deterministic anyway.
        pairs.sort()
        self._positions = [p for p, _ in pairs]
        self._owners = [n for _, n in pairs]

    # ------------------------------------------------------------------
    def owner(self, key: str) -> str:
        """The node that owns ``key`` (first vnode clockwise of its hash)."""
        if not self._nodes:
            raise LookupError("ring has no nodes")
        index = bisect.bisect_left(self._positions, ring_position(key))
        if index == len(self._positions):
            index = 0  # wrap past 2**64 to the first vnode
        return self._owners[index]

    def preference(self, key: str,
                   alive: Callable[[str], bool] | None = None) -> Iterator[str]:
        """Distinct nodes in failover order for ``key``.

        Walks the ring clockwise from the key's position and yields each
        physical node the first time one of its vnodes is met -- the
        owner first, then the natural replica sequence.  ``alive``
        filters the walk (dead nodes are skipped, not reordered), so a
        key's failover target is stable while membership is stable.
        """
        if not self._nodes:
            return
        start = bisect.bisect_left(self._positions, ring_position(key))
        seen: set[str] = set()
        total = len(self._positions)
        for step in range(total):
            node = self._owners[(start + step) % total]
            if node in seen:
                continue
            seen.add(node)
            if alive is None or alive(node):
                yield node
            if len(seen) == len(self._nodes):
                return

    def ownership(self) -> dict[str, float]:
        """Fraction of the keyspace each node owns (sums to 1.0).

        A key belongs to the first vnode at-or-after its position, so
        the arc *ending* at each vnode (exclusive of the previous vnode,
        inclusive of this one) belongs to that vnode's node.
        """
        if not self._nodes:
            return {}
        shares = {node: 0 for node in self._nodes}
        previous = self._positions[-1] - _SPACE  # wraparound arc
        for position, node in zip(self._positions, self._owners):
            shares[node] += position - previous
            previous = position
        return {node: span / _SPACE for node, span in shares.items()}
