"""The prediction engine: batched, concurrent, cached request execution.

Requests (predict / compare / restructure / kernels) come in as wire
dicts or typed :mod:`protocol` dataclasses, singly or in batches.  The
engine:

1. validates each request strictly at the boundary;
2. computes its content-addressed cache key (canonical program digest
   + machine + back-end capability flags + evaluation point) and
   answers hits without touching a worker; identical misses within a
   batch execute once and fan back out;
3. fans the misses out over a worker pool -- ``ProcessPoolExecutor``
   for true CPU parallelism of the pure-Python cost model, degrading
   automatically to threads (Windows spawn quirks, pickling edge
   cases, broken pools) and to inline execution for ``workers <= 1``;
4. stores fresh results back in the cache and reports counters and
   latencies to a :class:`~repro.service.metrics.MetricsRegistry`.

Scheduling is *weight-classed* by default: a tiny predict and a
depth-3 restructure differ by three orders of magnitude, so giving
each its own pool task lets one heavy request occupy a worker for
seconds while light requests queue behind it.  Instead the engine

* groups light requests (predict / compare / small restructures) into
  shared chunk tasks, amortizing pool overhead and keeping their
  queueing delay bounded by a chunk, not a search;
* splits each heavy restructure into per-round subtasks: the A* round
  loop runs engine-side and ships every round's fresh candidates to
  the shared pool in chunks capped at ``workers - 1``, so a single
  request can never occupy the whole pool;
* submits light chunks *before* heavy subtasks, so FIFO pools serve
  them first.

``scheduling="naive"`` restores one-task-per-request (the E-SERVICE
bench compares the two).

Workers keep a bounded pool of :class:`IncrementalPredictor` instances
(:func:`~repro.transform.parallel.shared_predictor` -- the same LRU the
parallel search uses), so repeated work on the same program -- other
evaluation points, restructure probes -- reuses the paper's section
3.3.1 affected-region cache instead of re-aggregating from scratch.
Worker tasks also report their placement-memo hit/miss deltas, which
the engine folds into ``repro_placement_cache_requests_total``.
"""

from __future__ import annotations

import logging
import pickle
import threading
import time
from concurrent.futures import (
    CancelledError,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Mapping, NamedTuple, Sequence

from ..cost.arena import arena_cache_stats
from ..cost.columnar import columnar_cache_stats
from ..cost.placement import placement_cache_stats, placement_kernel
from ..ir.digest import program_digest, stmts_digest
from ..ir.parser import ParseError, parse_program
from ..ir.lexer import LexError
from ..machine.registry import get_machine, machine_fingerprint
from ..obs import (
    TraceBuffer,
    Tracer,
    current_context,
    current_tracer,
    trace_span,
)
from ..symbolic.poly import PolyError
from ..transform.parallel import (
    _adopt_kernel,
    _chunked,
    _predictors,
    evaluate_chunk,
    shared_predictor,
)
from .cache import ResultCache, endpoint_of
from .metrics import MetricsRegistry
from .protocol import (
    CompareRequest,
    CompareResponse,
    KernelRow,
    KernelsRequest,
    KernelsResponse,
    PredictRequest,
    PredictResponse,
    ProtocolError,
    RestructureRequest,
    RestructureResponse,
    SweepPointRow,
    SweepRequest,
    SweepResponse,
    error_envelope,
    parse_bindings,
    parse_domain,
    request_from_dict,
    response_from_dict,
    response_to_dict,
)

__all__ = [
    "PredictionEngine", "ServiceError", "execute_request",
    "execute_request_chunk",
]

#: Exceptions that mean "the client sent something invalid" (HTTP 400),
#: as opposed to an internal fault (HTTP 500).
_CLIENT_ERRORS = (ProtocolError, ParseError, LexError, PolyError, KeyError, ValueError)

log = logging.getLogger("repro.service.engine")

#: Cache entries live seconds to days; buckets for age telemetry.
CACHE_AGE_BUCKETS = (1.0, 10.0, 60.0, 300.0, 1800.0, 3600.0, 21600.0, 86400.0)

#: ``depth * max_nodes`` at which a restructure counts as heavy (worth
#: splitting into per-round subtasks rather than riding in a chunk).
_SPLIT_THRESHOLD = 100

#: Smallest number of light requests (or search candidates) worth a
#: pool task of their own; below this, chunks are merged.
_GROUP_MIN = 4


class ServiceError(Exception):
    """A request failed; carries the wire error envelope."""

    def __init__(self, envelope: dict[str, Any]):
        super().__init__(envelope.get("message", "service error"))
        self.envelope = envelope


# ----------------------------------------------------------------------
# worker-side execution (module-level so ProcessPoolExecutor can pickle)


def _symbolic_cost(source: str, machine_name: str, backend: str,
                   include_memory: bool):
    """(program, digest, symbolic cost), via the per-worker predictor pool."""
    program = parse_program(source)
    digest = program_digest(program)
    machine = get_machine(machine_name)
    # The fingerprint (memoized per registered factory) rides in the
    # key so recalibrating a machine under the same name retires the
    # old predictor instead of serving its stale table.
    predictor = shared_predictor(
        (digest, machine_name, machine_fingerprint(machine_name), backend,
         include_memory),
        machine, program, backend, include_memory,
    )
    return program, digest, predictor.predict(program)


def _do_predict(request: PredictRequest) -> PredictResponse:
    _, digest, cost = _symbolic_cost(
        request.source, request.machine, request.backend,
        request.include_memory,
    )
    bindings = parse_bindings(request.bindings)
    cycles = str(cost.evaluate(bindings)) if bindings else None
    return PredictResponse(
        cost=str(cost),
        digest=digest,
        machine=request.machine,
        backend=request.backend,
        variables=tuple(sorted(cost.variables())),
        cycles=cycles,
    )


def _do_compare(request: CompareRequest) -> CompareResponse:
    from ..compare.comparator import compare
    from ..compare.regions import region_report

    _, digest_first, cost_first = _symbolic_cost(
        request.first, request.machine, "aggressive", False)
    _, digest_second, cost_second = _symbolic_cost(
        request.second, request.machine, "aggressive", False)
    result = compare(cost_first, cost_second,
                     domain=parse_domain(request.domain) or None)
    return CompareResponse(
        cost_first=str(cost_first),
        cost_second=str(cost_second),
        verdict=result.verdict.value,
        report=region_report(result),
        digest_first=digest_first,
        digest_second=digest_second,
        machine=request.machine,
    )


def _restructure_transformations() -> list:
    from ..transform import (
        Distribute,
        Fuse,
        Interchange,
        ReorderStatements,
        StripMine,
        Unroll,
        UnrollAndJam,
    )

    return [Unroll(factors=(2, 4)), UnrollAndJam(factors=(2, 4)),
            Interchange(), StripMine(tiles=(16,)),
            Fuse(), Distribute(), ReorderStatements()]


def _restructure_response(
    request: RestructureRequest,
    evaluate_batch: Callable[[list], list] | None = None,
    *,
    on_round: Callable[[Any], Any] | None = None,
    resume_from: Any | None = None,
) -> RestructureResponse:
    """The restructure endpoint's body, shared by both execution shapes.

    Run whole on a worker (``evaluate_batch=None``), or engine-side
    with each search round's candidate batch shipped to the pool (the
    split path).  Either way the search is deterministic, so both
    shapes produce the same response for the same request.

    ``on_round`` and ``resume_from`` thread straight into
    :func:`~repro.transform.search.astar_search` -- the job subsystem
    uses them for per-round checkpoints and cooperative cancellation.
    """
    from ..ir.printer import print_program
    from ..transform import astar_search

    program = parse_program(request.source)
    digest = program_digest(program)
    machine = get_machine(request.machine)
    predictor = shared_predictor(
        (digest, request.machine, machine_fingerprint(request.machine),
         "aggressive", False), machine, program)
    workload = {
        name: int(value)
        for name, value in parse_bindings(request.workload).items()
    } or None
    result = astar_search(
        program,
        _restructure_transformations(),
        predictor,
        workload=workload,
        max_depth=request.depth,
        max_nodes=request.max_nodes,
        domain=parse_domain(request.domain) or None,
        beam_width=request.beam_width,
        evaluate_batch=evaluate_batch,
        on_round=on_round,
        resume_from=resume_from,
    )
    return RestructureResponse(
        sequence=result.sequence,
        cost=str(result.cost),
        program=print_program(result.program),
        digest=digest,
        machine=request.machine,
        nodes_expanded=result.nodes_expanded,
    )


def _do_restructure(request: RestructureRequest) -> RestructureResponse:
    return _restructure_response(request)


def _do_kernels(request: KernelsRequest) -> KernelsResponse:
    from ..backend.simulator import simulate
    from ..bench.kernels import kernel, kernel_names, kernel_stream
    from ..cost import StraightLineEstimator

    machine = get_machine(request.machine)
    estimator = StraightLineEstimator(machine)
    rows = []
    for name in kernel_names():
        info = kernel_stream(kernel(name), machine)
        predicted = estimator.estimate(info.stream).cycles
        iterative = [i for i in info.stream if not i.one_time]
        reference = simulate(machine, iterative).cycles
        error = 100.0 * (predicted - reference) / reference
        rows.append(KernelRow(name, predicted, reference, round(error, 2)))
    return KernelsResponse(machine=request.machine, rows=tuple(rows))


def _do_sweep(request: SweepRequest) -> SweepResponse:
    from ..sweep import sweep_program

    from ..machine.registry import cached_machine

    program = parse_program(request.source)
    digest = program_digest(program)
    # cached_machine keeps the base identity stable across requests, so
    # the sweep's symbolic memo (and the family-member memo behind it)
    # stay hot; recalibration swaps the instance and retires both.
    machine = cached_machine(request.machine)
    outcome = sweep_program(
        program,
        machine=machine,
        widths=tuple(request.widths) if request.widths else None,
        bindings=parse_bindings(request.bindings),
        branch_miss_rate=float(request.branch_miss_rate),
        cache_miss_rate=float(request.cache_miss_rate),
        cache_key=digest,
    )
    return SweepResponse(
        machine=request.machine,
        digest=digest,
        widths=outcome.widths,
        points=tuple(
            SweepPointRow(
                width=p.width, cycles=p.cycles, ipc=p.ipc,
                fingerprint=p.fingerprint,
                placement_cycles=p.placement_cycles,
                penalty_cycles=p.penalty_cycles,
            ) for p in outcome.points
        ),
        saturation_width=outcome.saturation_width,
        instructions=outcome.instructions,
    )


_HANDLERS = {
    "predict": _do_predict,
    "compare": _do_compare,
    "restructure": _do_restructure,
    "kernels": _do_kernels,
    "sweep": _do_sweep,
}


def execute_request(kind: str, payload: Mapping[str, Any],
                    collect_trace: bool = False,
                    trace_context: tuple[str, str | None] | None = None,
                    ) -> dict[str, Any]:
    """Run one request end to end; never raises -- errors become envelopes.

    This is the unit of work shipped to pool workers, so both the
    argument and the return value are plain picklable dicts.  With
    ``collect_trace``, the request runs under a fresh request-local
    tracer and the finished spans travel back in the result under
    ``"trace"`` -- the engine re-ingests them, since a worker process's
    tracer (and metrics registry) dies with the worker.
    ``trace_context`` is the caller's ``(trace_id, parent_span_id)``;
    seeding the worker tracer with it keeps the worker's spans in the
    same trace as the serving request, so exported traces stitch
    across the process boundary.
    """
    if collect_trace:
        tracer = (Tracer(trace_id=trace_context[0],
                         remote_parent_id=trace_context[1])
                  if trace_context else Tracer())
        with tracer.activate():
            result = _execute_one(kind, payload)
        result["trace"] = tracer.export()
        return result
    return _execute_one(kind, payload)


def _placement_delta(before: Mapping[str, int],
                     after: Mapping[str, int]) -> dict[str, int]:
    return {"hits": after["hits"] - before["hits"],
            "misses": after["misses"] - before["misses"]}


def execute_request_chunk(jobs: Sequence[tuple[str, Mapping[str, Any]]],
                          collect_trace: bool = False,
                          trace_context: tuple[str, str | None] | None = None,
                          kernel: str | None = None,
                          ) -> dict[str, Any]:
    """Run several light requests as one pool task.

    A task per tiny predict pays pool round-trip overhead comparable to
    the work itself; grouping amortizes it.  The worker also reports
    its placement-memo hit/miss delta, which the engine cannot observe
    across a process boundary.  ``kernel`` is the engine process's
    placement kernel, adopted on arrival so forked workers track a
    runtime kernel switch (all kernels are bit-identical; this only
    moves where the time goes).
    """
    _adopt_kernel(kernel)
    before = placement_cache_stats()
    results = [execute_request(kind, payload, collect_trace, trace_context)
               for kind, payload in jobs]
    return {"results": results,
            "placement": _placement_delta(before, placement_cache_stats())}


def _search_round_chunk(root, root_key, machine, programs,
                        kernel: str | None = None) -> dict[str, Any]:
    """Evaluate one slice of a split restructure's round batch."""
    before = placement_cache_stats()
    costs = evaluate_chunk(root, root_key, machine, programs, kernel)
    return {"costs": costs,
            "placement": _placement_delta(before, placement_cache_stats())}


def _fast_path_trace(kind: str) -> list[dict[str, Any]]:
    """The trace block for a surrogate answer: one honest span.

    The fast tier never runs the pipeline, so there are no pipeline
    spans to show -- just the serving lookup itself.
    """
    ctx = current_context()
    tracer = (Tracer(trace_id=ctx.trace_id, remote_parent_id=ctx.span_id)
              if ctx is not None else Tracer())
    with tracer.activate():
        with trace_span("engine.execute", kind=kind, fidelity="fast"):
            pass
    return tracer.export()


def _cache_hit_trace(kind: str) -> list[dict[str, Any]]:
    """The trace block for a cache hit: one ``engine.execute`` span.

    Hits never re-run the pipeline, so replaying the stored pipeline
    spans would report work that did not happen; a traced hit instead
    gets a single honest span marking the lookup (joined to the serving
    request's trace when one is active).
    """
    ctx = current_context()
    tracer = (Tracer(trace_id=ctx.trace_id, remote_parent_id=ctx.span_id)
              if ctx is not None else Tracer())
    with tracer.activate():
        with trace_span("engine.execute", kind=kind, cached=True):
            pass
    return tracer.export()


def _trace_ctx() -> tuple[str, str | None] | None:
    """The ambient trace context as a picklable (trace_id, parent) tuple."""
    ctx = current_context()
    if ctx is None:
        return None
    return (ctx.trace_id, ctx.span_id)


def _execute_one(kind: str, payload: Mapping[str, Any]) -> dict[str, Any]:
    try:
        request = request_from_dict(kind, payload)
        with trace_span(kind, machine=getattr(request, "machine", "")):
            return response_to_dict(_HANDLERS[kind](request))
    except _CLIENT_ERRORS as error:
        return error_envelope(error, status=400)
    except Exception as error:  # noqa: BLE001 -- envelope, don't crash a worker
        return error_envelope(error, status=500)


# ----------------------------------------------------------------------
# cache keys (computed engine-side, before any worker is involved)


def _canonical_mapping(raw: Mapping[str, Any] | None) -> str:
    if not raw:
        return "-"
    return ",".join(f"{k}={raw[k]}" for k in sorted(raw))


#: The registry memoizes per registered factory (``get_machine`` builds
#: a fresh Machine each call, so an object-identity memo here never
#: hit), which makes the fingerprint free on the hot path while still
#: recomputing when recalibration registers a retrained factory.
_machine_fingerprint = machine_fingerprint


def _cache_key(kind: str, request: Any) -> str:
    """Content-addressed key: program digests + everything that matters.

    ``fp`` is the machine's cost-table fingerprint: recalibrating a
    machine (``repro.machine.training``) changes the predicted numbers
    without changing the machine *name*, so persisted entries from the
    old table must stop matching.
    """
    fp = f"fp={_machine_fingerprint(request.machine)}"
    if kind == "predict":
        digest = program_digest(parse_program(request.source))
        return "|".join((
            "predict", digest, request.machine, fp, request.backend,
            f"mem={int(request.include_memory)}",
            f"at={_canonical_mapping(request.bindings)}",
        ))
    if kind == "compare":
        first = program_digest(parse_program(request.first))
        second = program_digest(parse_program(request.second))
        return "|".join((
            "compare", first, second, request.machine, fp,
            f"dom={_canonical_mapping(request.domain)}",
        ))
    if kind == "restructure":
        digest = program_digest(parse_program(request.source))
        return "|".join((
            "restructure", digest, request.machine, fp,
            f"wl={_canonical_mapping(request.workload)}",
            f"dom={_canonical_mapping(request.domain)}",
            f"depth={request.depth}", f"nodes={request.max_nodes}",
            f"beam={request.beam_width}",
        ))
    if kind == "kernels":
        return f"kernels|{request.machine}|{fp}"
    if kind == "sweep":
        digest = program_digest(parse_program(request.source))
        widths = (",".join(str(w) for w in request.widths)
                  if request.widths else "-")
        return "|".join((
            "sweep", digest, request.machine, fp,
            f"w={widths}",
            f"br={request.branch_miss_rate}",
            f"cm={request.cache_miss_rate}",
            f"at={_canonical_mapping(request.bindings)}",
        ))
    raise ProtocolError(f"unknown request kind {kind!r}")


_KIND_BY_TYPE = {
    PredictRequest: "predict",
    CompareRequest: "compare",
    RestructureRequest: "restructure",
    KernelsRequest: "kernels",
    SweepRequest: "sweep",
}


def _predict_aux(entry: "_Pending", result: Mapping[str, Any],
                 ) -> dict[str, Any] | None:
    """The ``req`` block persisted on predict cache lines.

    Only evaluated predicts (bindings present, numeric cycles) are
    useful to ``repro surrogate train``; everything else stays aux-free
    so the JSONL file does not balloon.
    """
    if entry.kind != "predict" or result.get("cycles") is None:
        return None
    request = entry.request
    if not request.bindings:
        return None
    return {
        "source": request.source,
        "machine": request.machine,
        "backend": request.backend,
        "include_memory": request.include_memory,
        "bindings": {k: str(v) for k, v in request.bindings.items()},
    }


class _Pending(NamedTuple):
    """One cache-missed request awaiting execution."""

    index: int
    kind: str
    payload: dict[str, Any]
    key: str
    want_trace: bool
    request: Any


def _is_heavy(entry: _Pending) -> bool:
    """Weight class: does this request deserve a pool task of its own?"""
    if entry.kind == "kernels":
        return True
    if entry.kind == "restructure":
        request = entry.request
        return request.depth * request.max_nodes >= _SPLIT_THRESHOLD
    return False


# ----------------------------------------------------------------------


class PredictionEngine:
    """Serve prediction requests with batching, caching, and workers.

    ``workers <= 1`` executes inline (no pool) -- the right mode for
    the CLI and for tests.  ``executor`` may force ``"process"``,
    ``"thread"``, or ``"sync"``; the default ``"auto"`` picks processes
    and falls back to threads if the pool cannot be used.

    ``scheduling`` picks how a batch maps onto pool tasks:
    ``"weighted"`` (default) groups light requests into shared chunks
    and splits heavy restructures into per-round subtasks capped at
    ``workers - 1`` slots; ``"naive"`` submits one task per request.
    """

    def __init__(
        self,
        workers: int = 0,
        cache_size: int = 1024,
        cache_path: str | None = None,
        executor: str = "auto",
        metrics: MetricsRegistry | None = None,
        scheduling: str = "weighted",
        surrogate: Any = None,
    ):
        if executor not in ("auto", "process", "thread", "sync"):
            raise ValueError(f"unknown executor policy {executor!r}")
        if scheduling not in ("weighted", "naive"):
            raise ValueError(f"unknown scheduling policy {scheduling!r}")
        self.workers = max(0, workers)
        self.scheduling = scheduling
        self.cache = ResultCache(maxsize=cache_size, path=cache_path)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Learned fast tier (repro.learn.Surrogate) or None.  Serves
        #: fidelity=fast/auto predicts ahead of the cache and harvests
        #: every exact predict as a training sample.
        self.surrogate = surrogate
        if surrogate is not None:
            surrogate.bind_metrics(self.metrics)
        self._executor_policy = executor
        self._pool: Executor | None = None
        self._pool_kind = "sync"
        self._pool_guard = threading.Lock()
        self._requests = self.metrics.counter(
            "repro_engine_requests_total",
            "Engine requests by kind and outcome.")
        self._latency = self.metrics.histogram(
            "repro_engine_request_seconds",
            "Engine request latency by kind (batch arrival to response).")
        self._cache_lookups = self.metrics.counter(
            "repro_cache_requests_total",
            "Result-cache lookups by endpoint and result.")
        self._cache_evicted = self.metrics.counter(
            "repro_cache_endpoint_evictions_total",
            "Result-cache evictions by endpoint.")
        self._evicted_age = self.metrics.histogram(
            "repro_cache_evicted_age_seconds",
            "Age of result-cache entries at eviction.",
            buckets=CACHE_AGE_BUCKETS)
        self._tasks = self.metrics.counter(
            "repro_engine_tasks_total",
            "Worker-pool tasks submitted, by shape.")
        self._placement = self.metrics.counter(
            "repro_placement_cache_requests_total",
            "Placement-memo lookups by result (engine + process workers).")
        self._placement_guard = threading.Lock()
        base = placement_cache_stats()
        self._placement_seen = (base["hits"], base["misses"])
        self.jobs = None   # JobManager once attach_jobs() is called
        #: Recent request traces by request id, behind /debug/trace.
        self.traces = TraceBuffer(capacity=64)

    # -- pool management ------------------------------------------------
    def start_workers(self) -> None:
        """Spawn the worker pool now instead of at the first batch.

        The server calls this *before* binding its listening socket:
        forked workers must not inherit the socket fd, or they keep
        the port bound (and black-hole connections) if the parent
        dies without a clean shutdown.
        """
        self._ensure_pool()

    def _ensure_pool(self) -> None:
        if self._pool is not None or self.workers <= 1:
            return
        policy = self._executor_policy
        if policy in ("auto", "process"):
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
                self._pool_kind = "process"
                return
            except (OSError, ValueError):
                if policy == "process":
                    raise
        if policy in ("auto", "thread", "process"):
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
            self._pool_kind = "thread"

    def _degrade_to_threads(self) -> None:
        with self._pool_guard:
            if self._pool_kind == "thread" and self._pool is not None:
                return          # another thread already degraded
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
            self._pool_kind = "thread"

    def close(self) -> None:
        if self.surrogate is not None:
            self.surrogate.close()
        if self.jobs is not None:
            self.jobs.close()
            self.jobs = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_kind = "sync"

    def __enter__(self) -> "PredictionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire-level API -------------------------------------------------
    def handle(self, kind: str, payload: Mapping[str, Any]) -> dict[str, Any]:
        """One request dict in, one response dict out (never raises)."""
        return self.handle_batch([(kind, payload)])[0]

    def handle_batch(
        self,
        items: Sequence[tuple[str, Mapping[str, Any]]],
        on_result: Callable[[int, dict[str, Any]], None] | None = None,
    ) -> list[dict[str, Any]]:
        """Serve a mixed batch; order of responses matches the input.

        Cache hits are answered immediately; the misses run on the
        worker pool concurrently (inline when ``workers <= 1``).
        Identical misses (same cache key) within the batch execute
        once: the first becomes the representative, the rest are
        answered with copies when it finishes.  ``on_result`` fires
        once per item, as its response becomes final -- in completion
        order under weighted scheduling, so a caller can stream answers
        out while heavy work is still running.
        """
        started = time.perf_counter()
        results: list[dict[str, Any] | None] = [None] * len(items)
        pending: list[_Pending] = []
        # Within-batch dedup: cache key -> followers awaiting the
        # representative's result.  Trace-requesting duplicates are
        # never followers (each deserves its own honest trace).
        represented: set[str] = set()
        followers: dict[str, list[_Pending]] = {}

        def resolve(index: int, kind: str, result: dict[str, Any]) -> None:
            results[index] = result
            self._latency.observe(time.perf_counter() - started, kind=kind)
            if on_result is not None:
                on_result(index, result)

        for index, (kind, payload) in enumerate(items):
            try:
                request = request_from_dict(kind, payload)
            except _CLIENT_ERRORS as error:
                self._requests.inc(kind=kind, outcome="client_error")
                resolve(index, kind, error_envelope(error, status=400))
                continue
            want_trace = bool(getattr(request, "trace", False))
            # The learned fast tier answers *ahead of the cache*: a
            # cache key costs a parse, a surrogate hit costs a memo
            # lookup and a dot product.  A None means fall through to
            # the exact path below (and the exact answer becomes a
            # training sample in _finish).
            if (self.surrogate is not None and kind == "predict"
                    and request.fidelity in ("fast", "auto")):
                served = self.surrogate.serve(request)
                if served is not None:
                    if want_trace:
                        served["trace"] = _fast_path_trace(kind)
                    self._requests.inc(kind=kind, outcome="fast")
                    resolve(index, kind, served)
                    continue
            try:
                key = _cache_key(kind, request)
            except _CLIENT_ERRORS as error:
                self._requests.inc(kind=kind, outcome="client_error")
                resolve(index, kind, error_envelope(error, status=400))
                continue
            hit = self.cache.get(key)
            if hit is not None:
                with trace_span("engine.execute", kind=kind, cached=True):
                    served = dict(hit)
                    served["cached"] = True
                    if want_trace:
                        served["trace"] = _cache_hit_trace(kind)
                self._cache_lookups.inc(endpoint=kind, result="hit")
                self._requests.inc(kind=kind, outcome="cache_hit")
                resolve(index, kind, served)
                continue
            entry = _Pending(index, kind, dict(payload), key, want_trace,
                             request)
            if key in represented and not want_trace:
                self._cache_lookups.inc(endpoint=kind, result="deduplicated")
                followers.setdefault(key, []).append(entry)
                continue
            self._cache_lookups.inc(endpoint=kind, result="miss")
            represented.add(key)
            pending.append(entry)

        if pending:
            def finish(entry: _Pending, result: dict[str, Any]) -> None:
                self._finish(entry, result, resolve)
                for dup in followers.pop(entry.key, ()):
                    # ``result`` is the cache-bound copy: _finish popped
                    # any trace block, so followers stay trace-free.
                    self._requests.inc(kind=dup.kind, outcome="deduplicated")
                    resolve(dup.index, dup.kind, dict(result))

            self._run_pending(pending, finish)
            self._sync_local_placement()
        return results  # type: ignore[return-value]

    def _finish(self, entry: _Pending, result: dict[str, Any],
                resolve: Callable[[int, str, dict[str, Any]], None]) -> None:
        """Post-process one computed result (always on the batch thread)."""
        spans = result.pop("trace", None)
        if spans:
            tracer = current_tracer()
            if tracer is not None:
                tracer.ingest(spans)
        final = result
        if "error" in result:
            if result.get("status") == 400:
                outcome = "client_error"
            else:
                outcome = "error"
                log.error(
                    "request failed",
                    extra={"fields": {
                        "kind": entry.kind,
                        "error": result.get("error"),
                        "message": result.get("message"),
                    }},
                )
        else:
            evicted = self.cache.put(entry.key, result,
                                     aux=_predict_aux(entry, result))
            if evicted is not None:
                self._cache_evicted.inc(endpoint=evicted.endpoint)
                self._evicted_age.observe(
                    evicted.age, endpoint=evicted.endpoint)
            if (self.surrogate is not None and entry.kind == "predict"
                    and result.get("cycles") is not None):
                try:
                    from fractions import Fraction
                    self.surrogate.observe(
                        entry.request,
                        float(Fraction(str(result["cycles"]))))
                except (ValueError, ZeroDivisionError, OverflowError):
                    pass    # symbolic/non-finite cycles: not a sample
            outcome = "computed"
            if entry.want_trace and spans is not None:
                # Attach *after* cache.put so cached copies stay
                # trace-free (a replayed trace would be a lie).
                final = {**result, "trace": spans}
        self._requests.inc(kind=entry.kind, outcome=outcome)
        resolve(entry.index, entry.kind, final)

    # -- scheduling -----------------------------------------------------
    def _run_pending(
        self,
        pending: Sequence[_Pending],
        finish: Callable[[_Pending, dict[str, Any]], None],
    ) -> None:
        if self.workers <= 1 or not pending:
            return self._run_inline(pending, finish)
        self._ensure_pool()
        if self._pool is None:
            return self._run_inline(pending, finish)
        # Workers cannot see this process's active tracer; have them
        # collect spans locally whenever anyone is listening.  The
        # ambient trace context rides along so worker-side spans stay
        # in the serving request's trace.
        collect = (current_tracer() is not None
                   or any(entry.want_trace for entry in pending))
        ctx = _trace_ctx() if collect else None
        if self.scheduling == "naive":
            self._run_naive(pending, finish, collect, ctx)
        else:
            self._run_weighted(pending, finish, collect, ctx)

    def _run_inline(
        self,
        pending: Sequence[_Pending],
        finish: Callable[[_Pending, dict[str, Any]], None],
    ) -> None:
        for entry in pending:
            finish(entry, self._execute_inline(
                entry.kind, entry.payload, entry.want_trace))

    def _run_naive(
        self,
        pending: Sequence[_Pending],
        finish: Callable[[_Pending, dict[str, Any]], None],
        collect: bool,
        ctx: tuple[str, str | None] | None = None,
    ) -> None:
        """One pool task per request, awaited in submission order."""
        jobs = [(execute_request, (entry.kind, entry.payload, collect, ctx))
                for entry in pending]
        futures = [self._submit(fn, *args) for fn, args in jobs]
        for entry, future, job in zip(pending, futures, jobs):
            self._tasks.inc(shape="single")
            with trace_span("engine.execute", kind=entry.kind, cached=False):
                result = self._result_or_retry(future, job)
            finish(entry, result)

    def _run_weighted(
        self,
        pending: Sequence[_Pending],
        finish: Callable[[_Pending, dict[str, Any]], None],
        collect: bool,
        ctx: tuple[str, str | None] | None = None,
    ) -> None:
        """Weight-classed scheduling: chunked light work, split heavy work.

        Light chunks are submitted before any heavy subtask so a FIFO
        pool serves them first; each heavy restructure is driven from
        its own engine-side thread and may occupy at most
        ``workers - 1`` pool slots per round, so light traffic always
        has a free slot.  Results are finished on this thread, in
        completion order.
        """
        light = [entry for entry in pending if not _is_heavy(entry)]
        heavy = [entry for entry in pending if _is_heavy(entry)]
        waiters: dict[Any, tuple[str, Any, Any]] = {}

        if light:
            chunk_count = min(self.workers, max(1, len(light) // _GROUP_MIN))
            for group in _chunked(light, chunk_count):
                jobs = [(entry.kind, entry.payload) for entry in group]
                job = (execute_request_chunk,
                       (jobs, collect, ctx, placement_kernel()))
                waiters[self._submit(*_flatten(job))] = ("chunk", group, job)
                self._tasks.inc(shape="chunk")
        singles = [entry for entry in heavy if entry.kind != "restructure"]
        splits = [entry for entry in heavy if entry.kind == "restructure"]
        for entry in singles:
            job = (execute_request, (entry.kind, entry.payload, collect, ctx))
            waiters[self._submit(*_flatten(job))] = ("single", entry, job)
            self._tasks.inc(shape="single")
        drivers: ThreadPoolExecutor | None = None
        if splits:
            drivers = ThreadPoolExecutor(
                max_workers=len(splits),
                thread_name_prefix="restructure-driver")
            for entry in splits:
                future = drivers.submit(
                    self._drive_restructure, entry, collect, ctx)
                waiters[future] = ("driver", entry, None)
                self._tasks.inc(shape="split")
        try:
            for future in as_completed(list(waiters)):
                shape, target, job = waiters[future]
                if shape == "chunk":
                    outcome = self._result_or_retry(future, job)
                    self._ingest_placement(outcome.get("placement"))
                    for entry, result in zip(target, outcome["results"]):
                        with trace_span("engine.execute", kind=entry.kind,
                                        cached=False):
                            finish(entry, result)
                elif shape == "single":
                    with trace_span("engine.execute", kind=target.kind,
                                    cached=False):
                        finish(target, self._result_or_retry(future, job))
                else:
                    with trace_span("engine.execute", kind=target.kind,
                                    cached=False):
                        finish(target, future.result())
        finally:
            if drivers is not None:
                drivers.shutdown(wait=True)

    def _drive_restructure(self, entry: _Pending, collect: bool,
                           ctx: tuple[str, str | None] | None = None,
                           ) -> dict[str, Any]:
        """Run one heavy restructure engine-side (in a driver thread).

        Mirrors :func:`execute_request` -- errors become envelopes,
        spans are collected under a request-local tracer -- but the A*
        round loop runs here and ships each round's candidate batch to
        the shared pool.
        """
        def run() -> dict[str, Any]:
            try:
                request = entry.request
                with trace_span("restructure", machine=request.machine):
                    response = self._restructure_split(request)
                return response_to_dict(response)
            except _CLIENT_ERRORS as error:
                return error_envelope(error, status=400)
            except Exception as error:  # noqa: BLE001 -- envelope it
                return error_envelope(error, status=500)

        if collect:
            tracer = (Tracer(trace_id=ctx[0], remote_parent_id=ctx[1])
                      if ctx else Tracer())
            with tracer.activate():
                result = run()
            result["trace"] = tracer.export()
            return result
        return run()

    def _restructure_split(
        self, request: RestructureRequest,
        *,
        on_round: Callable[[Any], Any] | None = None,
        resume_from: Any | None = None,
    ) -> RestructureResponse:
        """The split execution shape: pool-evaluated search rounds.

        Each round's fresh candidates go to the pool in at most
        ``workers - 1`` chunks, leaving one slot free for light
        chunks regardless of how long the search runs.  Pool failures
        degrade this search to inline evaluation (same results).
        """
        cap = max(1, self.workers - 1)
        program = parse_program(request.source)
        machine = get_machine(request.machine)
        root_key = ("search", stmts_digest(program.body),
                    machine.fingerprint())
        degraded = [False]

        def evaluate(programs: list) -> list:
            programs = list(programs)
            if not programs:
                return []
            if degraded[0] or self._pool is None:
                return evaluate_chunk(program, root_key, machine, programs)
            chunks = _chunked(
                programs, min(cap, max(1, len(programs) // _GROUP_MIN)))
            try:
                futures = [
                    self._submit(_search_round_chunk, program, root_key,
                                 machine, chunk, placement_kernel())
                    for chunk in chunks
                ]
                costs: list = []
                for future in futures:
                    outcome = future.result()
                    self._ingest_placement(outcome.get("placement"))
                    costs.extend(outcome["costs"])
                self._tasks.inc(len(chunks), shape="search_round")
                return costs
            except (BrokenProcessPool, CancelledError, OSError,
                    pickle.PicklingError, TypeError, AttributeError):
                degraded[0] = True
                return evaluate_chunk(program, root_key, machine, programs)

        return _restructure_response(request, evaluate_batch=evaluate,
                                     on_round=on_round,
                                     resume_from=resume_from)

    # -- job execution --------------------------------------------------
    def run_restructure_job(
        self,
        request: RestructureRequest,
        *,
        on_round: Callable[[Any], Any] | None = None,
        resume_from: Any | None = None,
    ) -> dict[str, Any]:
        """Run one async job's search to completion (blocking).

        Called from a :class:`~repro.service.jobs.JobManager` runner
        thread, never from the HTTP batch path.  With a worker pool,
        each round's candidates are evaluated on at most ``workers - 1``
        pool slots (the same cap split restructures use), so N
        concurrent jobs still leave a slot free for light requests;
        without one, evaluation runs inline on the runner thread.
        Errors become envelopes, exactly like :func:`execute_request`.
        """
        try:
            with trace_span("restructure.job", machine=request.machine):
                if self.workers > 1:
                    self._ensure_pool()
                if self._pool is not None and self.workers > 1:
                    response = self._restructure_split(
                        request, on_round=on_round, resume_from=resume_from)
                else:
                    response = _restructure_response(
                        request, on_round=on_round, resume_from=resume_from)
            return response_to_dict(response)
        except _CLIENT_ERRORS as error:
            return error_envelope(error, status=400)
        except Exception as error:  # noqa: BLE001 -- envelope, keep the runner
            return error_envelope(error, status=500)

    def attach_jobs(self, store_root: str, *, slots: int | None = None,
                    stale_after: float = 5.0):
        """Enable the async job subsystem backed by ``store_root``.

        Point several shards at one shared directory to get
        resume-on-successor failover.  Returns the started
        :class:`~repro.service.jobs.JobManager` (also kept on
        ``self.jobs`` for the server's routes).
        """
        from .jobs import JobManager
        from .jobstore import JobStore

        if self.jobs is not None:
            return self.jobs
        self.jobs = JobManager(
            self, JobStore(store_root), slots=slots,
            stale_after=stale_after).start()
        return self.jobs

    # -- pool plumbing --------------------------------------------------
    def _submit(self, fn, *args):
        try:
            return self._pool.submit(fn, *args)
        except (BrokenProcessPool, OSError):
            self._degrade_to_threads()
            return self._pool.submit(fn, *args)

    def _result_or_retry(self, future, job):
        """Await a pool future; on a broken pool, degrade and re-run."""
        fn, args = job
        try:
            return future.result()
        except (BrokenProcessPool, CancelledError, OSError):
            self._degrade_to_threads()
            return self._pool.submit(fn, *args).result()

    @staticmethod
    def _execute_inline(kind: str, payload: dict[str, Any],
                        want_trace: bool) -> dict[str, Any]:
        # Without a trace block to build, spans flow straight into any
        # active tracer; with one, a request-local tracer collects them
        # (and handle_batch re-ingests, so nothing is lost either way).
        with trace_span("engine.execute", kind=kind, cached=False):
            return execute_request(
                kind, payload, collect_trace=want_trace,
                trace_context=_trace_ctx() if want_trace else None)

    # -- placement-memo telemetry --------------------------------------
    def _ingest_placement(self, delta: Mapping[str, int] | None) -> None:
        """Fold a worker task's placement-memo delta into the counter.

        Thread workers and inline execution hit *this* process's memo,
        which :meth:`_sync_local_placement` already counts; folding
        their deltas too would double-count, so only process workers
        report this way.
        """
        if not delta or self._pool_kind != "process":
            return
        hits = int(delta.get("hits", 0))
        misses = int(delta.get("misses", 0))
        if hits > 0:
            self._placement.inc(hits, result="hit")
        if misses > 0:
            self._placement.inc(misses, result="miss")

    def _sync_local_placement(self) -> None:
        """Count engine-process placement-memo activity since last sync."""
        stats = placement_cache_stats()
        with self._placement_guard:
            hits = stats["hits"] - self._placement_seen[0]
            misses = stats["misses"] - self._placement_seen[1]
            self._placement_seen = (stats["hits"], stats["misses"])
        if hits > 0:
            self._placement.inc(hits, result="hit")
        if misses > 0:
            self._placement.inc(misses, result="miss")

    # -- typed API ------------------------------------------------------
    def _typed(self, request: Any):
        kind = _KIND_BY_TYPE[type(request)]
        result = self.handle(kind, _request_to_dict(request))
        if "error" in result:
            raise ServiceError(result)
        return response_from_dict(kind, result)

    def predict(self, request: PredictRequest) -> PredictResponse:
        return self._typed(request)

    def compare(self, request: CompareRequest) -> CompareResponse:
        return self._typed(request)

    def restructure(self, request: RestructureRequest) -> RestructureResponse:
        return self._typed(request)

    def kernels(self, request: KernelsRequest) -> KernelsResponse:
        return self._typed(request)

    def sweep(self, request: SweepRequest) -> SweepResponse:
        return self._typed(request)

    def batch(self, requests: Sequence[Any]) -> list[Any]:
        """Typed batch: dataclass requests in, dataclass responses out.

        Failed entries come back as :class:`ServiceError` instances
        (not raised), so one bad request cannot void a whole batch.
        """
        kinds = [_KIND_BY_TYPE[type(r)] for r in requests]
        raw = self.handle_batch(
            [(kind, _request_to_dict(r)) for kind, r in zip(kinds, requests)]
        )
        out: list[Any] = []
        for kind, result in zip(kinds, raw):
            if "error" in result:
                out.append(ServiceError(result))
            else:
                out.append(response_from_dict(kind, result))
        return out

    # -- observability --------------------------------------------------
    def export_cache_metrics(self) -> None:
        """Refresh the cache gauges (called at /metrics scrape time)."""
        stats = self.cache.stats
        self.metrics.gauge(
            "repro_cache_hits_total", "Result-cache hits.").set(stats.hits)
        self.metrics.gauge(
            "repro_cache_misses_total", "Result-cache misses.").set(stats.misses)
        self.metrics.gauge(
            "repro_cache_evictions_total",
            "Result-cache evictions.").set(stats.evictions)
        self.metrics.gauge(
            "repro_cache_entries", "Resident result-cache entries.").set(
            len(self.cache))
        self.metrics.gauge(
            "repro_engine_workers", "Configured worker count.").set(self.workers)
        if self.surrogate is not None:
            self.surrogate.export_metrics()
        self._sync_local_placement()
        placement = placement_cache_stats()
        self.metrics.gauge(
            "repro_placement_cache_entries",
            "Resident placement-memo entries (engine process).").set(
            placement["entries"])
        self.metrics.gauge(
            "repro_placement_cache_evictions_total",
            "Placement-memo evictions (engine process).").set(
            placement["evictions"])
        columnar = columnar_cache_stats()
        self.metrics.gauge(
            "repro_columnar_cache_hits_total",
            "Compiled-stream cache hits (engine process).").set(
            columnar["hits"])
        self.metrics.gauge(
            "repro_columnar_cache_misses_total",
            "Compiled-stream cache misses (engine process).").set(
            columnar["misses"])
        self.metrics.gauge(
            "repro_columnar_cache_entries",
            "Resident compiled-stream cache entries (engine process).").set(
            columnar["entries"])
        self.metrics.gauge(
            "repro_columnar_cache_evictions_total",
            "Compiled-stream cache evictions (engine process).").set(
            columnar["evictions"])
        arena = arena_cache_stats()
        self.metrics.gauge(
            "repro_arena_streams_total",
            "Streams placed through the batch arena (engine process).").set(
            arena["streams"])
        self.metrics.gauge(
            "repro_arena_dedup_total",
            "Batch-identical streams answered by dedup (engine process).").set(
            arena["dedup"])
        self.metrics.gauge(
            "repro_arena_memo_hits_total",
            "Arena batch slots answered by the placement memo "
            "(engine process).").set(arena["memo_hits"])
        self.metrics.gauge(
            "repro_arena_prefix_reuses_total",
            "Arena drops resumed from a shared-prefix snapshot "
            "(engine process).").set(arena["prefix_reuses"])
        self.metrics.gauge(
            "repro_arena_prefix_ops_saved_total",
            "Instruction drops skipped via prefix snapshots "
            "(engine process).").set(arena["prefix_ops_saved"])
        self.metrics.gauge(
            "repro_arena_drops_total",
            "Instructions actually dropped by the arena "
            "(engine process).").set(arena["drops"])
        self.metrics.gauge(
            "repro_arena_pool_entries",
            "Resident prefix-pool trajectories across arenas "
            "(engine process).").set(arena["pool_entries"])
        from ..calib import calibration_stats
        from ..sweep import sweep_stats

        sweep = sweep_stats()
        self.metrics.gauge(
            "repro_sweep_runs_total",
            "Width sweeps evaluated (engine process).").set(sweep["sweeps"])
        self.metrics.gauge(
            "repro_sweep_widths_total",
            "Ladder points evaluated across all sweeps "
            "(engine process).").set(sweep["widths"])
        self.metrics.gauge(
            "repro_sweep_shared_translations_total",
            "Translations replayed from the sweep facade instead of "
            "re-translated (engine process).").set(
            sweep["shared_translations"])
        self.metrics.gauge(
            "repro_sweep_batched_streams_total",
            "Streams pre-warmed via batched arena placement during sweeps "
            "(engine process).").set(sweep["batched_streams"])
        self.metrics.gauge(
            "repro_sweep_symbolic_hits_total",
            "Sweeps served from the memoized symbolic ladder "
            "(engine process).").set(sweep["symbolic_hits"])
        calib = calibration_stats()
        self.metrics.gauge(
            "repro_calib_runs_total",
            "Cost-table calibrations performed (engine process).").set(
            calib["calibrations"])
        self.metrics.gauge(
            "repro_calib_probes_total",
            "Probe streams measured across all calibrations "
            "(engine process).").set(calib["probes"])
        age_hist = self.metrics.histogram(
            "repro_cache_entry_age_seconds",
            "Ages of resident result-cache entries (snapshot per scrape).",
            buckets=CACHE_AGE_BUCKETS)
        age_hist.reset()  # snapshot of *current* residents, not cumulative
        for key, age in self.cache.entry_ages().items():
            age_hist.observe(age, endpoint=endpoint_of(key))


def _flatten(job: tuple) -> tuple:
    fn, args = job
    return (fn, *args)


def _request_to_dict(request: Any) -> dict[str, Any]:
    from dataclasses import asdict

    out = asdict(request)
    return {k: v for k, v in out.items() if v is not None}
