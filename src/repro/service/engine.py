"""The prediction engine: batched, concurrent, cached request execution.

Requests (predict / compare / restructure / kernels) come in as wire
dicts or typed :mod:`protocol` dataclasses, singly or in batches.  The
engine:

1. validates each request strictly at the boundary;
2. computes its content-addressed cache key (canonical program digest
   + machine + back-end capability flags + evaluation point) and
   answers hits without touching a worker;
3. fans the misses out over a worker pool -- ``ProcessPoolExecutor``
   for true CPU parallelism of the pure-Python cost model, degrading
   automatically to threads (Windows spawn quirks, pickling edge
   cases, broken pools) and to inline execution for ``workers <= 1``;
4. stores fresh results back in the cache and reports counters and
   latencies to a :class:`~repro.service.metrics.MetricsRegistry`.

Workers keep a bounded pool of :class:`IncrementalPredictor` instances
keyed by (program digest, machine, flags), so repeated work on the
same program -- different evaluation points, restructure probes --
reuses the paper's section 3.3.1 affected-region cache instead of
re-aggregating from scratch.
"""

from __future__ import annotations

import logging
import time
from collections import OrderedDict
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Mapping, Sequence

from ..ir.digest import program_digest
from ..ir.parser import ParseError, parse_program
from ..ir.lexer import LexError
from ..ir.symtab import SymbolTable
from ..machine.registry import get_machine
from ..obs import Tracer, current_tracer, trace_span
from ..symbolic.poly import PolyError
from ..translate.backend_opts import AGGRESSIVE_BACKEND, NAIVE_BACKEND, BackendFlags
from .cache import ResultCache, endpoint_of
from .metrics import MetricsRegistry
from .protocol import (
    CompareRequest,
    CompareResponse,
    KernelRow,
    KernelsRequest,
    KernelsResponse,
    PredictRequest,
    PredictResponse,
    ProtocolError,
    RestructureRequest,
    RestructureResponse,
    error_envelope,
    parse_bindings,
    parse_domain,
    request_from_dict,
    response_from_dict,
    response_to_dict,
)

__all__ = ["PredictionEngine", "ServiceError", "execute_request"]

#: Exceptions that mean "the client sent something invalid" (HTTP 400),
#: as opposed to an internal fault (HTTP 500).
_CLIENT_ERRORS = (ProtocolError, ParseError, LexError, PolyError, KeyError, ValueError)

log = logging.getLogger("repro.service.engine")

#: Cache entries live seconds to days; buckets for age telemetry.
CACHE_AGE_BUCKETS = (1.0, 10.0, 60.0, 300.0, 1800.0, 3600.0, 21600.0, 86400.0)


class ServiceError(Exception):
    """A request failed; carries the wire error envelope."""

    def __init__(self, envelope: dict[str, Any]):
        super().__init__(envelope.get("message", "service error"))
        self.envelope = envelope


def _flags(backend: str) -> BackendFlags:
    return AGGRESSIVE_BACKEND if backend == "aggressive" else NAIVE_BACKEND


# ----------------------------------------------------------------------
# worker-side execution (module-level so ProcessPoolExecutor can pickle)

_PREDICTOR_LIMIT = 64
_predictors: OrderedDict[tuple, Any] = OrderedDict()


def _symbolic_cost(source: str, machine_name: str, backend: str,
                   include_memory: bool):
    """(program, digest, symbolic cost), via the per-worker predictor pool."""
    from ..aggregate.aggregator import CostAggregator
    from ..transform.incremental import IncrementalPredictor

    program = parse_program(source)
    digest = program_digest(program)
    key = (digest, machine_name, backend, include_memory)
    predictor = _predictors.get(key)
    if predictor is None:
        machine = get_machine(machine_name)
        kwargs: dict[str, Any] = {}
        if include_memory:
            from ..memory.model import MemoryCostModel
            kwargs["memory_model"] = MemoryCostModel(machine)
            kwargs["include_memory"] = True
        aggregator = CostAggregator(
            machine, SymbolTable.from_program(program),
            flags=_flags(backend), **kwargs,
        )
        predictor = IncrementalPredictor(aggregator)
        _predictors[key] = predictor
        while len(_predictors) > _PREDICTOR_LIMIT:
            _predictors.popitem(last=False)
    else:
        _predictors.move_to_end(key)
    return program, digest, predictor.predict(program)


def _do_predict(request: PredictRequest) -> PredictResponse:
    _, digest, cost = _symbolic_cost(
        request.source, request.machine, request.backend,
        request.include_memory,
    )
    bindings = parse_bindings(request.bindings)
    cycles = str(cost.evaluate(bindings)) if bindings else None
    return PredictResponse(
        cost=str(cost),
        digest=digest,
        machine=request.machine,
        backend=request.backend,
        variables=tuple(sorted(cost.variables())),
        cycles=cycles,
    )


def _do_compare(request: CompareRequest) -> CompareResponse:
    from ..compare.comparator import compare
    from ..compare.regions import region_report

    _, digest_first, cost_first = _symbolic_cost(
        request.first, request.machine, "aggressive", False)
    _, digest_second, cost_second = _symbolic_cost(
        request.second, request.machine, "aggressive", False)
    result = compare(cost_first, cost_second,
                     domain=parse_domain(request.domain) or None)
    return CompareResponse(
        cost_first=str(cost_first),
        cost_second=str(cost_second),
        verdict=result.verdict.value,
        report=region_report(result),
        digest_first=digest_first,
        digest_second=digest_second,
        machine=request.machine,
    )


def _do_restructure(request: RestructureRequest) -> RestructureResponse:
    from ..aggregate.aggregator import CostAggregator
    from ..ir.printer import print_program
    from ..transform import (
        Distribute,
        Fuse,
        IncrementalPredictor,
        Interchange,
        ReorderStatements,
        StripMine,
        Unroll,
        UnrollAndJam,
        astar_search,
    )

    program = parse_program(request.source)
    digest = program_digest(program)
    machine = get_machine(request.machine)
    predictor = IncrementalPredictor(
        CostAggregator(machine, SymbolTable.from_program(program))
    )
    workload = {
        name: int(value)
        for name, value in parse_bindings(request.workload).items()
    } or None
    result = astar_search(
        program,
        [Unroll(factors=(2, 4)), UnrollAndJam(factors=(2, 4)),
         Interchange(), StripMine(tiles=(16,)),
         Fuse(), Distribute(), ReorderStatements()],
        predictor,
        workload=workload,
        max_depth=request.depth,
        max_nodes=request.max_nodes,
        domain=parse_domain(request.domain) or None,
    )
    return RestructureResponse(
        sequence=result.sequence,
        cost=str(result.cost),
        program=print_program(result.program),
        digest=digest,
        machine=request.machine,
        nodes_expanded=result.nodes_expanded,
    )


def _do_kernels(request: KernelsRequest) -> KernelsResponse:
    from ..backend.simulator import simulate
    from ..bench.kernels import kernel, kernel_names, kernel_stream
    from ..cost import StraightLineEstimator

    machine = get_machine(request.machine)
    estimator = StraightLineEstimator(machine)
    rows = []
    for name in kernel_names():
        info = kernel_stream(kernel(name), machine)
        predicted = estimator.estimate(info.stream).cycles
        iterative = [i for i in info.stream if not i.one_time]
        reference = simulate(machine, iterative).cycles
        error = 100.0 * (predicted - reference) / reference
        rows.append(KernelRow(name, predicted, reference, round(error, 2)))
    return KernelsResponse(machine=request.machine, rows=tuple(rows))


_HANDLERS = {
    "predict": _do_predict,
    "compare": _do_compare,
    "restructure": _do_restructure,
    "kernels": _do_kernels,
}


def execute_request(kind: str, payload: Mapping[str, Any],
                    collect_trace: bool = False) -> dict[str, Any]:
    """Run one request end to end; never raises -- errors become envelopes.

    This is the unit of work shipped to pool workers, so both the
    argument and the return value are plain picklable dicts.  With
    ``collect_trace``, the request runs under a fresh request-local
    tracer and the finished spans travel back in the result under
    ``"trace"`` -- the engine re-ingests them, since a worker process's
    tracer (and metrics registry) dies with the worker.
    """
    if collect_trace:
        tracer = Tracer()
        with tracer.activate():
            result = _execute_one(kind, payload)
        result["trace"] = tracer.export()
        return result
    return _execute_one(kind, payload)


def _cache_hit_trace(kind: str) -> list[dict[str, Any]]:
    """The trace block for a cache hit: one ``engine.execute`` span.

    Hits never re-run the pipeline, so replaying the stored pipeline
    spans would report work that did not happen; a traced hit instead
    gets a single honest span marking the lookup.
    """
    tracer = Tracer()
    with tracer.activate():
        with trace_span("engine.execute", kind=kind, cached=True):
            pass
    return tracer.export()


def _execute_one(kind: str, payload: Mapping[str, Any]) -> dict[str, Any]:
    try:
        request = request_from_dict(kind, payload)
        with trace_span(kind, machine=getattr(request, "machine", "")):
            return response_to_dict(_HANDLERS[kind](request))
    except _CLIENT_ERRORS as error:
        return error_envelope(error, status=400)
    except Exception as error:  # noqa: BLE001 -- envelope, don't crash a worker
        return error_envelope(error, status=500)


# ----------------------------------------------------------------------
# cache keys (computed engine-side, before any worker is involved)


def _canonical_mapping(raw: Mapping[str, Any] | None) -> str:
    if not raw:
        return "-"
    return ",".join(f"{k}={raw[k]}" for k in sorted(raw))


#: Machine-name -> (machine object identity, fingerprint).  Machines
#: are registry singletons, so the identity check makes the fingerprint
#: free on the hot path while still recomputing when recalibration
#: swaps in a retrained machine under the same name.
_FINGERPRINTS: dict[str, tuple[int, str]] = {}


def _machine_fingerprint(name: str) -> str:
    machine = get_machine(name)
    memo = _FINGERPRINTS.get(name)
    if memo is not None and memo[0] == id(machine):
        return memo[1]
    fingerprint = machine.fingerprint()
    _FINGERPRINTS[name] = (id(machine), fingerprint)
    return fingerprint


def _cache_key(kind: str, request: Any) -> str:
    """Content-addressed key: program digests + everything that matters.

    ``fp`` is the machine's cost-table fingerprint: recalibrating a
    machine (``repro.machine.training``) changes the predicted numbers
    without changing the machine *name*, so persisted entries from the
    old table must stop matching.
    """
    fp = f"fp={_machine_fingerprint(request.machine)}"
    if kind == "predict":
        digest = program_digest(parse_program(request.source))
        return "|".join((
            "predict", digest, request.machine, fp, request.backend,
            f"mem={int(request.include_memory)}",
            f"at={_canonical_mapping(request.bindings)}",
        ))
    if kind == "compare":
        first = program_digest(parse_program(request.first))
        second = program_digest(parse_program(request.second))
        return "|".join((
            "compare", first, second, request.machine, fp,
            f"dom={_canonical_mapping(request.domain)}",
        ))
    if kind == "restructure":
        digest = program_digest(parse_program(request.source))
        return "|".join((
            "restructure", digest, request.machine, fp,
            f"wl={_canonical_mapping(request.workload)}",
            f"dom={_canonical_mapping(request.domain)}",
            f"depth={request.depth}", f"nodes={request.max_nodes}",
        ))
    if kind == "kernels":
        return f"kernels|{request.machine}|{fp}"
    raise ProtocolError(f"unknown request kind {kind!r}")


_KIND_BY_TYPE = {
    PredictRequest: "predict",
    CompareRequest: "compare",
    RestructureRequest: "restructure",
    KernelsRequest: "kernels",
}


# ----------------------------------------------------------------------


class PredictionEngine:
    """Serve prediction requests with batching, caching, and workers.

    ``workers <= 1`` executes inline (no pool) -- the right mode for
    the CLI and for tests.  ``executor`` may force ``"process"``,
    ``"thread"``, or ``"sync"``; the default ``"auto"`` picks processes
    and falls back to threads if the pool cannot be used.
    """

    def __init__(
        self,
        workers: int = 0,
        cache_size: int = 1024,
        cache_path: str | None = None,
        executor: str = "auto",
        metrics: MetricsRegistry | None = None,
    ):
        if executor not in ("auto", "process", "thread", "sync"):
            raise ValueError(f"unknown executor policy {executor!r}")
        self.workers = max(0, workers)
        self.cache = ResultCache(maxsize=cache_size, path=cache_path)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._executor_policy = executor
        self._pool: Executor | None = None
        self._pool_kind = "sync"
        self._requests = self.metrics.counter(
            "repro_engine_requests_total",
            "Engine requests by kind and outcome.")
        self._latency = self.metrics.histogram(
            "repro_engine_request_seconds",
            "Engine request latency by kind.")
        self._cache_lookups = self.metrics.counter(
            "repro_cache_requests_total",
            "Result-cache lookups by endpoint and result.")
        self._cache_evicted = self.metrics.counter(
            "repro_cache_endpoint_evictions_total",
            "Result-cache evictions by endpoint.")
        self._evicted_age = self.metrics.histogram(
            "repro_cache_evicted_age_seconds",
            "Age of result-cache entries at eviction.",
            buckets=CACHE_AGE_BUCKETS)

    # -- pool management ------------------------------------------------
    def start_workers(self) -> None:
        """Spawn the worker pool now instead of at the first batch.

        The server calls this *before* binding its listening socket:
        forked workers must not inherit the socket fd, or they keep
        the port bound (and black-hole connections) if the parent
        dies without a clean shutdown.
        """
        self._ensure_pool()

    def _ensure_pool(self) -> None:
        if self._pool is not None or self.workers <= 1:
            return
        policy = self._executor_policy
        if policy in ("auto", "process"):
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
                self._pool_kind = "process"
                return
            except (OSError, ValueError):
                if policy == "process":
                    raise
        if policy in ("auto", "thread", "process"):
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
            self._pool_kind = "thread"

    def _degrade_to_threads(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = ThreadPoolExecutor(max_workers=self.workers)
        self._pool_kind = "thread"

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_kind = "sync"

    def __enter__(self) -> "PredictionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire-level API -------------------------------------------------
    def handle(self, kind: str, payload: Mapping[str, Any]) -> dict[str, Any]:
        """One request dict in, one response dict out (never raises)."""
        return self.handle_batch([(kind, payload)])[0]

    def handle_batch(
        self, items: Sequence[tuple[str, Mapping[str, Any]]]
    ) -> list[dict[str, Any]]:
        """Serve a mixed batch; order of responses matches the input.

        Cache hits are answered immediately; the misses run on the
        worker pool concurrently (inline when ``workers <= 1``).
        """
        started = time.perf_counter()
        results: list[dict[str, Any] | None] = [None] * len(items)
        pending: list[tuple[int, str, dict[str, Any], str, bool]] = []

        for index, (kind, payload) in enumerate(items):
            try:
                request = request_from_dict(kind, payload)
                key = _cache_key(kind, request)
            except _CLIENT_ERRORS as error:
                results[index] = error_envelope(error, status=400)
                self._requests.inc(kind=kind, outcome="client_error")
                continue
            want_trace = bool(getattr(request, "trace", False))
            hit = self.cache.get(key)
            if hit is not None:
                with trace_span("engine.execute", kind=kind, cached=True):
                    served = dict(hit)
                    served["cached"] = True
                    if want_trace:
                        served["trace"] = _cache_hit_trace(kind)
                results[index] = served
                self._cache_lookups.inc(endpoint=kind, result="hit")
                self._requests.inc(kind=kind, outcome="cache_hit")
                continue
            self._cache_lookups.inc(endpoint=kind, result="miss")
            pending.append((index, kind, dict(payload), key, want_trace))

        if pending:
            fresh = self._run_pending(pending)
            for (index, kind, _, key, want_trace), result in zip(pending, fresh):
                spans = result.pop("trace", None)
                if spans:
                    tracer = current_tracer()
                    if tracer is not None:
                        tracer.ingest(spans)
                results[index] = result
                if "error" in result:
                    if result.get("status") == 400:
                        outcome = "client_error"
                    else:
                        outcome = "error"
                        log.error(
                            "request failed",
                            extra={"fields": {
                                "kind": kind,
                                "error": result.get("error"),
                                "message": result.get("message"),
                            }},
                        )
                else:
                    evicted = self.cache.put(key, result)
                    if evicted is not None:
                        self._cache_evicted.inc(endpoint=evicted.endpoint)
                        self._evicted_age.observe(
                            evicted.age, endpoint=evicted.endpoint)
                    outcome = "computed"
                    if want_trace and spans is not None:
                        # Attach *after* cache.put so cached copies stay
                        # trace-free (a replayed trace would be a lie).
                        results[index] = {**result, "trace": spans}
                self._requests.inc(kind=kind, outcome=outcome)

        elapsed = time.perf_counter() - started
        for kind, _ in items:
            self._latency.observe(elapsed / max(1, len(items)), kind=kind)
        return results  # type: ignore[return-value]

    def _run_pending(
        self, pending: Sequence[tuple[int, str, dict[str, Any], str, bool]]
    ) -> list[dict[str, Any]]:
        jobs = [(kind, payload) for _, kind, payload, _, _ in pending]
        if self.workers <= 1 or len(jobs) == 0:
            return [self._execute_inline(kind, payload, want)
                    for (_, kind, payload, _, want) in pending]
        self._ensure_pool()
        if self._pool is None:
            return [self._execute_inline(kind, payload, want)
                    for (_, kind, payload, _, want) in pending]
        # Workers cannot see this process's active tracer; have them
        # collect spans locally whenever anyone is listening.
        collect = (current_tracer() is not None
                   or any(want for *_, want in pending))
        try:
            futures = [self._pool.submit(execute_request, kind, payload, collect)
                       for kind, payload in jobs]
            return [self._await(future, kind)
                    for future, (kind, _) in zip(futures, jobs)]
        except (BrokenProcessPool, OSError):
            # A worker died or the pool could not run: degrade once to
            # threads and retry the whole slice.
            self._degrade_to_threads()
            futures = [self._pool.submit(execute_request, kind, payload, collect)
                       for kind, payload in jobs]
            return [self._await(future, kind)
                    for future, (kind, _) in zip(futures, jobs)]

    @staticmethod
    def _execute_inline(kind: str, payload: dict[str, Any],
                        want_trace: bool) -> dict[str, Any]:
        # Without a trace block to build, spans flow straight into any
        # active tracer; with one, a request-local tracer collects them
        # (and handle_batch re-ingests, so nothing is lost either way).
        with trace_span("engine.execute", kind=kind, cached=False):
            return execute_request(kind, payload, collect_trace=want_trace)

    @staticmethod
    def _await(future, kind: str) -> dict[str, Any]:
        with trace_span("engine.execute", kind=kind, cached=False):
            return future.result()

    # -- typed API ------------------------------------------------------
    def _typed(self, request: Any):
        kind = _KIND_BY_TYPE[type(request)]
        result = self.handle(kind, _request_to_dict(request))
        if "error" in result:
            raise ServiceError(result)
        return response_from_dict(kind, result)

    def predict(self, request: PredictRequest) -> PredictResponse:
        return self._typed(request)

    def compare(self, request: CompareRequest) -> CompareResponse:
        return self._typed(request)

    def restructure(self, request: RestructureRequest) -> RestructureResponse:
        return self._typed(request)

    def kernels(self, request: KernelsRequest) -> KernelsResponse:
        return self._typed(request)

    def batch(self, requests: Sequence[Any]) -> list[Any]:
        """Typed batch: dataclass requests in, dataclass responses out.

        Failed entries come back as :class:`ServiceError` instances
        (not raised), so one bad request cannot void a whole batch.
        """
        kinds = [_KIND_BY_TYPE[type(r)] for r in requests]
        raw = self.handle_batch(
            [(kind, _request_to_dict(r)) for kind, r in zip(kinds, requests)]
        )
        out: list[Any] = []
        for kind, result in zip(kinds, raw):
            if "error" in result:
                out.append(ServiceError(result))
            else:
                out.append(response_from_dict(kind, result))
        return out

    # -- observability --------------------------------------------------
    def export_cache_metrics(self) -> None:
        """Refresh the cache gauges (called at /metrics scrape time)."""
        stats = self.cache.stats
        self.metrics.gauge(
            "repro_cache_hits_total", "Result-cache hits.").set(stats.hits)
        self.metrics.gauge(
            "repro_cache_misses_total", "Result-cache misses.").set(stats.misses)
        self.metrics.gauge(
            "repro_cache_evictions_total",
            "Result-cache evictions.").set(stats.evictions)
        self.metrics.gauge(
            "repro_cache_entries", "Resident result-cache entries.").set(
            len(self.cache))
        self.metrics.gauge(
            "repro_engine_workers", "Configured worker count.").set(self.workers)
        age_hist = self.metrics.histogram(
            "repro_cache_entry_age_seconds",
            "Ages of resident result-cache entries (snapshot per scrape).",
            buckets=CACHE_AGE_BUCKETS)
        age_hist.reset()  # snapshot of *current* residents, not cumulative
        for key, age in self.cache.entry_ages().items():
            age_hist.observe(age, endpoint=endpoint_of(key))


def _request_to_dict(request: Any) -> dict[str, Any]:
    from dataclasses import asdict

    out = asdict(request)
    return {k: v for k, v in out.items() if v is not None}
