"""Shard router: one front door over N prediction backends.

A single :mod:`repro.service.server` process tops out at one machine's
cores and one process's caches.  The router is a stdlib HTTP process
that fronts N backend servers and forwards every request to the shard
that *owns* its program, so each backend's result cache, shared
predictors, and placement memos stay hot for a stable slice of the
digest space:

* **Sharding.**  Requests are keyed by the same canonical
  :func:`~repro.ir.digest.program_digest` the backends use for their
  caches (``compare`` keys on both digests, ``kernels`` on the machine
  name), mapped to a backend through a consistent-hash
  :class:`~repro.service.shard.HashRing` with virtual nodes --
  resharding from K to K±1 backends remaps only ~1/K of programs.
  The router memoizes source-text -> digest so routing costs one
  SHA-256 per request after first sight, not a parse.

* **Health.**  A daemon thread probes every backend's ``/healthz`` on
  an interval (active), and any connection-level forward failure marks
  the backend down immediately (passive); the next successful probe
  marks it back up.  Dead backends are skipped in ring order, which
  keeps every other key's owner unchanged.

* **Failover.**  A failed forward retries on the next live replica in
  ring preference order with exponential backoff, up to a bounded
  budget.  Responses that prove the backend is alive (2xx/4xx) are
  passed through; 5xx and transport failures fail over.

* **Degradation.**  With *every* backend down, the router answers
  inline from a local single-process engine rather than erroring, so
  a control-plane outage degrades to reduced throughput, not an
  outage.

Batches are split by owning shard and forwarded concurrently, then
reassembled in request order; entries that fail validation locally
never cost a network hop.

* **Jobs.**  Async restructure jobs route by *affinity*: a submit is
  keyed by the program digest (so the job runs where the program's
  caches live), and every later read keys on the digest prefix baked
  into the job id itself -- no parse needed.  Status and cancel
  forward like ordinary requests; the ``/events`` stream is *relayed*
  byte-for-byte as it arrives, and a shard that dies mid-stream simply
  ends the relay -- the client re-attaches with ``from_round`` and the
  failover walk lands it on the ring successor, which adopts and
  resumes the job from its checkpoint.  Jobs never degrade to the
  router's inline engine: the job state lives in the shards' shared
  store, which the router does not mount.

``/metrics`` exports ``repro_router_forwards_total{shard,outcome}``,
``repro_router_failovers_total``, ``repro_router_jobs_total{route}``,
per-shard ring-ownership and liveness gauges, digest-memo size and
eviction gauges, and HTTP latency histograms.

* **Observability.**  With ``tracing=True`` every request runs under a
  ``router.handle`` span, each forward attempt under a
  ``router.forward`` span, and outgoing hops carry a W3C
  ``traceparent`` header (plus ``X-Request-Id``) so the shard's spans
  join the router's trace.  Failed (5xx) and slowest requests are kept
  in a bounded :class:`~repro.obs.ExemplarRing`;
  ``GET /debug/trace/<request_id>`` stitches the exemplar's router
  spans with every live shard's spans for that request into one Chrome
  trace.  ``GET /metrics/cluster`` scrapes all live shards and merges
  their expositions with the router's own registry (samples gain a
  ``shard`` label); an optional :class:`~repro.obs.slo.SloTracker`
  (``--slo-config``) turns the request stream into burn-rate gauges.
"""

from __future__ import annotations

import contextlib
import hashlib
import http.client
import json
import logging
import signal
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, HTTPServer
from socketserver import ThreadingMixIn
from typing import Any, Callable, Mapping, Sequence
from urllib.parse import parse_qs, urlparse

from ..ir.digest import program_digest
from ..ir.lexer import LexError
from ..ir.parser import ParseError, parse_program
from ..obs import (
    TRACEPARENT_HEADER,
    ExemplarRing,
    Tracer,
    chrome_trace,
    configure_json_logging,
    current_context,
    format_traceparent,
    new_request_id,
    parse_traceparent,
    set_request_id,
    trace_span,
)
from ..obs.aggregate import merge_expositions
from .client import HTTPConnectionPool, _split_base_url
from .jobs import JOBS_PREFIX, job_affinity_key, parse_job_path
from .metrics import MetricsRegistry
from .protocol import ProtocolError, error_envelope, request_from_dict
from .shard import HashRing

__all__ = ["BackendState", "ShardRouter", "make_router", "run_router"]

log = logging.getLogger("repro.service.router")

_MAX_BODY_BYTES = 4 * 1024 * 1024
_MAX_BATCH = 256

_POST_ROUTES = {"/predict": "predict", "/compare": "compare",
                "/restructure": "restructure", "/sweep": "sweep"}

_DEBUG_TRACE_PREFIX = "/debug/trace/"

#: Failures that mean "this backend did not answer (usably)": refused or
#: reset connections, timeouts, and protocol-level garbage -- a dropped
#: connection mid-response surfaces as ``BadStatusLine``, a response cut
#: off mid-body as ``IncompleteRead``; both are HTTPException subclasses.
_CONNECT_ERRORS = (ConnectionError, TimeoutError, OSError,
                   http.client.HTTPException)


class _DigestMemo:
    """Bounded source-text -> program-digest memo (thread-safe LRU).

    Routing must not re-parse a program on every request: after the
    first sight of a source text, the digest lookup is one SHA-256 of
    the raw text plus a dict hit.
    """

    def __init__(self, maxsize: int = 4096):
        self.maxsize = max(1, maxsize)
        self.evictions = 0
        self._data: OrderedDict[str, str] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def digest(self, source: str) -> str:
        text_key = hashlib.sha256(source.encode("utf-8")).hexdigest()
        with self._lock:
            hit = self._data.get(text_key)
            if hit is not None:
                self._data.move_to_end(text_key)
                return hit
        value = program_digest(parse_program(source))
        with self._lock:
            self._data[text_key] = value
            self._data.move_to_end(text_key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
        return value


class BackendState:
    """Live view of one backend: address, pool, and health."""

    def __init__(self, url: str, *, pool_size: int, timeout: float):
        self.url = url
        host, port = _split_base_url(url)
        self.host = host
        self.port = port
        self.pool = HTTPConnectionPool(host, port, size=pool_size,
                                       timeout=timeout)
        self._healthy = True          # optimistic until proven otherwise
        self._lock = threading.Lock()
        self.last_failure: float = 0.0
        self.consecutive_failures: int = 0

    @property
    def healthy(self) -> bool:
        with self._lock:
            return self._healthy

    def mark_failure(self) -> bool:
        """Record a transport failure; returns True on an up->down edge."""
        with self._lock:
            self.last_failure = time.time()
            self.consecutive_failures += 1
            was = self._healthy
            self._healthy = False
            return was

    def mark_success(self) -> bool:
        """Record a success; returns True on a down->up edge."""
        with self._lock:
            self.consecutive_failures = 0
            was = self._healthy
            self._healthy = True
            return not was

    def close(self) -> None:
        self.pool.close()


class _RouterHandler(BaseHTTPRequestHandler):
    server: "ShardRouter"
    protocol_version = "HTTP/1.1"
    timeout = 30  # close idle keep-alive connections

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        log.debug("%s -- %s", self.address_string(), format % args)

    # -- plumbing -------------------------------------------------------
    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_bytes(body, status, "application/json")

    def _send_bytes(self, body: bytes, status: int, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "_request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("empty request body")
        if length > _MAX_BODY_BYTES:
            raise ValueError(f"request body over {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        return json.loads(raw.decode("utf-8"))

    @contextlib.contextmanager
    def _request_scope(self):
        router = self.server
        request_id = ((self.headers.get("X-Request-Id") or "").strip()
                      or new_request_id())
        self._request_id = request_id
        self._last_status = 0
        token = set_request_id(request_id)
        tracer = None
        if router.tracing:
            remote = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
            tracer = Tracer(
                trace_id=remote.trace_id if remote else None,
                remote_parent_id=remote.span_id if remote else None)
        scope_start = time.perf_counter()
        try:
            if tracer is None:
                yield request_id
            else:
                with tracer.activate():
                    with trace_span("router.handle", method=self.command,
                                    path=self.path):
                        yield request_id
        finally:
            token.var.reset(token)
            if tracer is not None:
                router.exemplars.offer(
                    request_id, tracer.export(),
                    time.perf_counter() - scope_start,
                    failed=self._last_status >= 500)

    def _observe(self, endpoint: str, status: int, started: float) -> None:
        router = self.server
        self._last_status = status
        elapsed = time.perf_counter() - started
        router.http_requests.inc(endpoint=endpoint, status=str(status))
        router.http_latency.observe(elapsed, endpoint=endpoint)
        if router.slo is not None:
            router.slo.observe(endpoint, elapsed, error=status >= 500)

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 -- http.server API
        started = time.perf_counter()
        url = urlparse(self.path)
        with self._request_scope() as request_id:
            if url.path == "/healthz":
                self._send_json(self.server.health_report())
                self._observe("healthz", 200, started)
                return
            if url.path == "/metrics":
                self.server.export_ring_metrics()
                if self.server.slo is not None:
                    self.server.slo.export(self.server.metrics)
                text = self.server.metrics.render()
                self._send_bytes(text.encode("utf-8"), 200,
                                 "text/plain; version=0.0.4")
                self._observe("metrics", 200, started)
                return
            if url.path == "/metrics/cluster":
                text = self.server.cluster_metrics()
                self._send_bytes(text.encode("utf-8"), 200,
                                 "text/plain; version=0.0.4")
                self._observe("metrics_cluster", 200, started)
                return
            if url.path.startswith(_DEBUG_TRACE_PREFIX):
                self._handle_debug_trace(url, started)
                return
            if url.path == "/kernels":
                params = parse_qs(url.query)
                machine = params.get("machine", ["power"])[0]
                status, body = self.server.route_kernels(machine, request_id)
                self._send_bytes(body, status, "application/json")
                self._observe("kernels", status, started)
                return
            job = parse_job_path(url.path)
            if job is not None:
                job_id, is_events = job
                key = job_affinity_key(job_id)
                if is_events:
                    self.server.job_requests.inc(route="events")
                    status = self.server.relay_stream(
                        self, key, self.path, request_id)
                    self._observe("job_events", status, started)
                    return
                self.server.job_requests.inc(route="status")
                status = self._forward_job("GET", url.path, None, key,
                                           request_id)
                self._observe("job_status", status, started)
                return
            self._send_json(
                {"error": "NotFound", "message": f"no route {url.path}",
                 "status": 404}, 404)
            self._observe("unknown", 404, started)

    def _handle_debug_trace(self, url, started: float) -> None:
        """One stitched trace for a recent request: the router's own
        exemplar spans plus every live shard's spans for that id."""
        request_id = url.path[len(_DEBUG_TRACE_PREFIX):]
        spans = self.server.fetch_trace(request_id)
        if not spans:
            self._send_json(
                {"error": "NotFound",
                 "message": f"no trace for request {request_id!r}",
                 "status": 404}, 404)
            self._observe("debug_trace", 404, started)
            return
        params = parse_qs(url.query)
        if params.get("format", ["chrome"])[0] == "spans":
            self._send_json({"request_id": request_id, "spans": spans})
        else:
            self._send_json(chrome_trace(spans, process_name="repro"))
        self._observe("debug_trace", 200, started)

    def _forward_job(self, method: str, path: str, body: bytes | None,
                     key: str, request_id: str) -> int:
        """Forward a job request along the ring; jobs never run inline.

        The router has no job store, so with every replica down the
        honest answer is 503 -- the job is still resumable once a shard
        returns.
        """
        outcome = self.server._forward(key, method, path, body, request_id)
        if outcome is None:
            self._send_json(error_envelope(
                ConnectionError("no live backend shard"), status=503), 503)
            return 503
        status, payload = outcome
        self._send_bytes(payload, status, "application/json")
        return status

    def do_POST(self) -> None:  # noqa: N802 -- http.server API
        started = time.perf_counter()
        url = urlparse(self.path)
        kind = _POST_ROUTES.get(url.path)
        with self._request_scope() as request_id:
            if url.path == JOBS_PREFIX:
                self._handle_job_submit(started, request_id)
                return
            if kind is None:
                self._send_json(
                    {"error": "NotFound", "message": f"no route {url.path}",
                     "status": 404}, 404)
                self._observe("unknown", 404, started)
                return
            try:
                body = self._read_body()
            except (ValueError, json.JSONDecodeError) as error:
                self._send_json(error_envelope(error, status=400), 400)
                self._observe(kind, 400, started)
                return
            if isinstance(body, list):
                if len(body) > _MAX_BATCH:
                    envelope = error_envelope(
                        ValueError(f"batch over {_MAX_BATCH} requests"), 400)
                    self._send_json(envelope, 400)
                    self._observe(kind, 400, started)
                    return
                results = self.server.route_batch(kind, body, request_id)
                self._send_json(results, 200)
                self._observe(kind, 200, started)
                return
            result = self.server.route_single(kind, body, request_id)
            status = result.get("status", 200) if "error" in result else 200
            self._send_json(result, status)
            self._observe(kind, status, started)

    def _handle_job_submit(self, started: float, request_id: str) -> None:
        """Key the submit on the program digest so the job runs where
        the program's caches (and any prior checkpoint) live."""
        try:
            payload = self._read_body()
            request = request_from_dict("restructure_job", payload)
            key = self.server._digests.digest(request.source)
        except (ProtocolError, ParseError, LexError, ValueError,
                KeyError, json.JSONDecodeError) as error:
            self._send_json(error_envelope(error, status=400), 400)
            self._observe("job_submit", 400, started)
            return
        self.server.job_requests.inc(route="submit")
        body = json.dumps(payload).encode("utf-8")
        status = self._forward_job("POST", JOBS_PREFIX, body, key, request_id)
        self._observe("job_submit", status, started)

    def do_DELETE(self) -> None:  # noqa: N802 -- http.server API
        started = time.perf_counter()
        url = urlparse(self.path)
        with self._request_scope() as request_id:
            job = parse_job_path(url.path)
            if job is None or job[1]:
                self._send_json(
                    {"error": "NotFound", "message": f"no route {url.path}",
                     "status": 404}, 404)
                self._observe("unknown", 404, started)
                return
            job_id, _ = job
            self.server.job_requests.inc(route="cancel")
            status = self._forward_job(
                "DELETE", url.path, None, job_affinity_key(job_id),
                request_id)
            self._observe("job_cancel", status, started)


class ShardRouter(ThreadingMixIn, HTTPServer):
    """The router process: ring, health, failover, degradation.

    ``backends`` are base URLs (``http://host:port``).  ``retries``
    bounds how many *additional* replicas a failed forward may try;
    backoff between attempts is ``backoff * 2**attempt`` seconds.
    ``local_fallback`` controls degraded mode: when no backend is
    live, requests run on an inline single-process engine instead of
    failing.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        backends: Sequence[str],
        *,
        vnodes: int = 64,
        retries: int = 2,
        backoff: float = 0.05,
        forward_timeout: float = 30.0,
        probe_interval: float = 2.0,
        probe_timeout: float = 1.0,
        pool_size: int = 8,
        local_fallback: bool = True,
        digest_memo_size: int = 4096,
        metrics: MetricsRegistry | None = None,
        tracing: bool = False,
        trace_exemplars: int = 32,
        slo: Any = None,
    ):
        if not backends:
            raise ValueError("router needs at least one backend URL")
        super().__init__(address, _RouterHandler)
        self.backends: dict[str, BackendState] = {
            url: BackendState(url, pool_size=pool_size,
                              timeout=forward_timeout)
            for url in backends
        }
        if len(self.backends) != len(backends):
            raise ValueError("duplicate backend URLs")
        self.ring = HashRing(self.backends, vnodes=vnodes)
        self.retries = max(0, retries)
        self.backoff = max(0.0, backoff)
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.local_fallback = local_fallback
        self.tracing = tracing
        self.slo = slo
        self.exemplars = ExemplarRing(capacity=trace_exemplars)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._digests = _DigestMemo(maxsize=digest_memo_size)
        self._local_engine = None
        self._local_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._probe_thread: threading.Thread | None = None
        self._stop_probing = threading.Event()

        self.forwards = self.metrics.counter(
            "repro_router_forwards_total",
            "Forward attempts by shard and outcome.")
        self.failovers = self.metrics.counter(
            "repro_router_failovers_total",
            "Requests retried on another replica after a shard failed.")
        self.degraded = self.metrics.counter(
            "repro_router_degraded_total",
            "Requests served by the router's inline local engine.")
        self.http_requests = self.metrics.counter(
            "repro_router_http_requests_total",
            "Router HTTP requests by endpoint and status.")
        self.http_latency = self.metrics.histogram(
            "repro_router_http_request_seconds",
            "Router HTTP request latency by endpoint.")
        self.job_requests = self.metrics.counter(
            "repro_router_jobs_total",
            "Async-job requests handled by route.")

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> "ShardRouter":
        self.start_probing()
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-router", daemon=True)
        self._thread.start()
        return self

    def start_probing(self) -> None:
        if self._probe_thread is not None:
            return
        self.probe_all()  # synchronous first pass: start with real state
        self._probe_thread = threading.Thread(
            target=self._probe_loop, name="repro-router-probe", daemon=True)
        self._probe_thread.start()

    def stop(self) -> None:
        self._stop_probing.set()
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=5)
            self._probe_thread = None
        for state in self.backends.values():
            state.close()
        with self._local_lock:
            engine, self._local_engine = self._local_engine, None
        if engine is not None:
            engine.close()

    # -- health ---------------------------------------------------------
    def _probe_loop(self) -> None:
        while not self._stop_probing.wait(self.probe_interval):
            self.probe_all()

    def probe_all(self) -> None:
        for state in self.backends.values():
            self._probe_one(state)

    def _probe_one(self, state: BackendState) -> None:
        connection = http.client.HTTPConnection(
            state.host, state.port, timeout=self.probe_timeout)
        try:
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            response.read()
            ok = response.status == 200
        except _CONNECT_ERRORS:
            ok = False
        finally:
            connection.close()
        if ok:
            if state.mark_success():
                log.info("backend up", extra={"fields": {"shard": state.url}})
        else:
            if state.mark_failure():
                log.warning("backend down",
                            extra={"fields": {"shard": state.url}})

    def health_report(self) -> dict[str, Any]:
        shards = {
            url: {"healthy": state.healthy,
                  "consecutive_failures": state.consecutive_failures}
            for url, state in self.backends.items()
        }
        live = sum(1 for s in shards.values() if s["healthy"])
        status = "ok" if live else ("degraded" if self.local_fallback
                                    else "down")
        return {"status": status, "role": "router",
                "live_backends": live, "backends": shards}

    # -- routing keys ---------------------------------------------------
    def _ring_key(self, kind: str, request: Any) -> str:
        """The shard key: digest(s) for programs, machine for kernels."""
        if kind in ("predict", "restructure", "sweep"):
            return self._digests.digest(request.source)
        if kind == "compare":
            # Both digests, so a given pair always compares on one shard
            # (its compare cache key contains both).
            return (self._digests.digest(request.first)
                    + self._digests.digest(request.second))
        if kind == "kernels":
            return f"kernels|{request.machine}"
        raise ProtocolError(f"unknown request kind {kind!r}")

    # -- forwarding -----------------------------------------------------
    def _hop_headers(self, request_id: str, *, json_body: bool = False,
                     traceparent: str | None = None) -> dict[str, str]:
        """Headers every outgoing hop carries: the request id (so the
        shard logs and deposits its trace under the *router's* id, not
        a fresh one) and, when tracing, the ``traceparent`` of the
        innermost open span.  ``traceparent`` is explicit for hops made
        from ad-hoc threads (batch groups) where no ambient context
        exists."""
        headers = {"X-Request-Id": request_id}
        if traceparent is None:
            context = current_context()
            if context is not None:
                traceparent = format_traceparent(context)
        if traceparent:
            headers[TRACEPARENT_HEADER] = traceparent
        if json_body:
            headers["Content-Type"] = "application/json"
        return headers

    def _forward_once(self, state: BackendState, method: str, path: str,
                      body: bytes | None, request_id: str,
                      traceparent: str | None = None) -> tuple[int, bytes]:
        headers = self._hop_headers(request_id, json_body=body is not None,
                                    traceparent=traceparent)
        status, _, payload = state.pool.request(method, path, body, headers)
        return status, payload

    def _forward(self, key: str, method: str, path: str,
                 body: bytes | None, request_id: str,
                 traceparent: str | None = None,
                 ) -> tuple[int, bytes] | None:
        """Forward to the owning shard, failing over along the ring.

        Returns ``(status, body)`` from the first backend that answers,
        or ``None`` when every live replica in the retry budget failed
        (the caller degrades to the local engine).  2xx and 4xx pass
        through -- a 4xx is a deterministic client error that would fail
        identically everywhere; 5xx and transport errors fail over.
        """
        candidates = list(self.ring.preference(
            key, alive=lambda node: self.backends[node].healthy))
        if not candidates:
            # Passive marks may lag reality (e.g. every backend just
            # restarted); fall back to ring order rather than giving up
            # before trying anyone.
            candidates = list(self.ring.preference(key))
        last_5xx: tuple[int, bytes] | None = None
        for attempt, node in enumerate(candidates[: self.retries + 1]):
            state = self.backends[node]
            if attempt:
                self.failovers.inc()
                if self.backoff:
                    time.sleep(min(self.backoff * (2 ** (attempt - 1)), 1.0))
            try:
                with trace_span("router.forward", shard=state.url,
                                method=method, path=path, attempt=attempt):
                    status, payload = self._forward_once(
                        state, method, path, body, request_id, traceparent)
            except _CONNECT_ERRORS as error:
                outcome = ("timeout" if isinstance(error, TimeoutError)
                           else "connection_error")
                self.forwards.inc(shard=state.url, outcome=outcome)
                if state.mark_failure():
                    log.warning("backend down", extra={"fields": {
                        "shard": state.url, "error": str(error)}})
                continue
            state.mark_success()
            if status >= 500:
                self.forwards.inc(shard=state.url, outcome="server_error")
                last_5xx = (status, payload)
                continue
            self.forwards.inc(
                shard=state.url,
                outcome="ok" if status < 400 else "client_error")
            return status, payload
        # Every replica either refused or 5xx'd.  A consistent 5xx is a
        # real (deterministic) failure; surface the last one rather than
        # recomputing locally and masking it.
        return last_5xx

    # -- streaming relay ------------------------------------------------
    def relay_stream(self, handler: _RouterHandler, key: str, path: str,
                     request_id: str) -> int:
        """Relay a streaming GET (job events) byte-for-byte to the client.

        Uses a dedicated connection per attempt (never the pooled ones:
        a stream holds its connection for the job's whole lifetime).
        Failures *before* the response headers fail over along the ring
        like any forward; a shard dying *mid-stream* just ends the relay
        -- replaying from another shard would duplicate rounds the
        client already consumed, and the client's ``from_round`` resume
        re-attaches (via this same walk) to the successor, whose read
        triggers adoption.
        """
        candidates = list(self.ring.preference(
            key, alive=lambda node: self.backends[node].healthy))
        if not candidates:
            candidates = list(self.ring.preference(key))
        for attempt, node in enumerate(candidates[: self.retries + 1]):
            state = self.backends[node]
            if attempt:
                self.failovers.inc()
                if self.backoff:
                    time.sleep(min(self.backoff * (2 ** (attempt - 1)), 1.0))
            connection = http.client.HTTPConnection(
                state.host, state.port, timeout=state.pool.timeout)
            try:
                connection.request("GET", path,
                                   headers=self._hop_headers(request_id))
                response = connection.getresponse()
            except _CONNECT_ERRORS as error:
                self.forwards.inc(shard=state.url, outcome="connection_error")
                if state.mark_failure():
                    log.warning("backend down", extra={"fields": {
                        "shard": state.url, "error": str(error)}})
                connection.close()
                continue
            state.mark_success()
            if response.status >= 500:
                self.forwards.inc(shard=state.url, outcome="server_error")
                with contextlib.suppress(Exception):
                    response.read()
                connection.close()
                continue
            if response.status != 200:
                # Deterministic client error (404, 400): pass through.
                self.forwards.inc(shard=state.url, outcome="client_error")
                body = response.read()
                connection.close()
                handler._send_bytes(
                    body, response.status,
                    response.headers.get("Content-Type", "application/json"))
                return response.status
            self.forwards.inc(shard=state.url, outcome="ok")
            handler.send_response(200)
            handler.send_header(
                "Content-Type",
                response.headers.get("Content-Type", "text/event-stream"))
            handler.send_header("Cache-Control", "no-cache")
            handler.send_header("Connection", "close")
            handler.send_header("X-Request-Id", request_id)
            handler.end_headers()
            handler.close_connection = True
            try:
                while True:
                    try:
                        chunk = response.read1(8192)
                    except _CONNECT_ERRORS:
                        # Shard died mid-stream: close toward the client
                        # too, so its from_round resume takes over.
                        if state.mark_failure():
                            log.warning("backend down mid-stream",
                                        extra={"fields": {
                                            "shard": state.url}})
                        break
                    if not chunk:
                        break
                    handler.wfile.write(chunk)
                    handler.wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass   # client went away; nothing left to relay
            finally:
                connection.close()
            return 200
        envelope = error_envelope(
            ConnectionError("no live backend shard"), status=503)
        handler._send_json(envelope, 503)
        return 503

    # -- local degraded mode --------------------------------------------
    def _local(self):
        from .engine import PredictionEngine

        with self._local_lock:
            if self._local_engine is None:
                self._local_engine = PredictionEngine(
                    workers=0, cache_size=256, metrics=self.metrics)
            return self._local_engine

    def _serve_locally(self, kind: str,
                       payload: Mapping[str, Any]) -> dict[str, Any]:
        self.degraded.inc(kind=kind)
        log.warning("no live backend; serving inline",
                    extra={"fields": {"kind": kind}})
        return self._local().handle(kind, payload)

    # -- request entry points -------------------------------------------
    def _validated(self, kind: str, payload: Mapping[str, Any]):
        """Validate at the boundary; returns (request, key) or envelope."""
        request = request_from_dict(kind, payload)   # raises ProtocolError
        return request, self._ring_key(kind, request)

    def route_single(self, kind: str, payload: Any,
                     request_id: str,
                     traceparent: str | None = None) -> dict[str, Any]:
        try:
            _, key = self._validated(kind, payload)
        except (ProtocolError, ParseError, LexError, ValueError,
                KeyError) as error:
            return error_envelope(error, status=400)
        body = json.dumps(payload).encode("utf-8")
        outcome = self._forward(key, "POST", f"/{kind}", body, request_id,
                                traceparent)
        if outcome is None:
            if self.local_fallback:
                return self._serve_locally(kind, payload)
            return error_envelope(
                ConnectionError("no live backend shard"), status=503)
        status, response_body = outcome
        try:
            return json.loads(response_body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return error_envelope(
                ValueError(f"shard returned undecodable body "
                           f"(status {status})"), status=502)

    def route_kernels(self, machine: str,
                      request_id: str) -> tuple[int, bytes]:
        key = f"kernels|{machine}"
        outcome = self._forward(key, "GET", f"/kernels?machine={machine}",
                                None, request_id)
        if outcome is None:
            if self.local_fallback:
                result = self._serve_locally("kernels", {"machine": machine})
                status = (result.get("status", 200)
                          if "error" in result else 200)
                return status, json.dumps(result, sort_keys=True).encode()
            envelope = error_envelope(
                ConnectionError("no live backend shard"), status=503)
            return 503, json.dumps(envelope, sort_keys=True).encode()
        return outcome

    def route_batch(self, kind: str, items: Sequence[Any],
                    request_id: str) -> list[dict[str, Any]]:
        """Split a batch by owning shard; forward sub-batches concurrently.

        Each sub-batch forwards as one JSON-array POST to its shard --
        the shard's engine then runs it through its own batch scheduler.
        A sub-batch whose shard fails is re-routed item by item through
        the normal single-request failover path, so one dead backend
        costs its items a retry, never the whole batch.
        """
        # Batch groups forward from ad-hoc threads, where the handler's
        # contextvars (active tracer, current span) are invisible --
        # capture the trace context here, once, and hand it to every hop.
        context = current_context()
        traceparent = (format_traceparent(context)
                       if context is not None else None)
        results: list[dict[str, Any] | None] = [None] * len(items)
        groups: dict[str, list[int]] = {}
        keys: dict[int, str] = {}
        for index, payload in enumerate(items):
            try:
                _, key = self._validated(kind, payload)
            except (ProtocolError, ParseError, LexError, ValueError,
                    KeyError) as error:
                results[index] = error_envelope(error, status=400)
                continue
            except Exception as error:  # noqa: BLE001 -- envelope, keep batch
                results[index] = error_envelope(error, status=500)
                continue
            keys[index] = key
            owner = self._owner_or_none(key)
            groups.setdefault(owner or "", []).append(index)

        def run_group(owner: str, indexes: list[int]) -> None:
            sub = [items[i] for i in indexes]
            if owner:
                forwarded = self._forward_group(
                    owner, kind, sub, request_id, traceparent)
                if forwarded is not None:
                    for i, result in zip(indexes, forwarded):
                        results[i] = result
                    return
            # Shard gone (or nothing owned the keys): per-item failover.
            for i in indexes:
                results[i] = self.route_single(kind, items[i], request_id,
                                               traceparent)

        pending = [(owner, indexes) for owner, indexes in groups.items()]
        if len(pending) <= 1:
            for owner, indexes in pending:
                run_group(owner, indexes)
        else:
            threads = [
                threading.Thread(target=run_group, args=(owner, indexes))
                for owner, indexes in pending
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        return [r if r is not None
                else error_envelope(RuntimeError("unrouted item"), 500)
                for r in results]

    def _owner_or_none(self, key: str) -> str | None:
        for node in self.ring.preference(
                key, alive=lambda n: self.backends[n].healthy):
            return node
        return None

    def _forward_group(self, owner: str, kind: str, sub: Sequence[Any],
                       request_id: str, traceparent: str | None = None,
                       ) -> list[dict[str, Any]] | None:
        state = self.backends[owner]
        body = json.dumps(list(sub)).encode("utf-8")
        try:
            status, payload = self._forward_once(
                state, "POST", f"/{kind}", body, request_id, traceparent)
        except _CONNECT_ERRORS:
            self.forwards.inc(shard=state.url, outcome="connection_error")
            if state.mark_failure():
                log.warning("backend down",
                            extra={"fields": {"shard": state.url}})
            self.failovers.inc()
            return None
        state.mark_success()
        if status >= 500:
            self.forwards.inc(shard=state.url, outcome="server_error")
            self.failovers.inc()
            return None
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            self.forwards.inc(shard=state.url, outcome="server_error")
            return None
        if not isinstance(decoded, list) or len(decoded) != len(sub):
            self.forwards.inc(shard=state.url, outcome="server_error")
            return None
        self.forwards.inc(shard=state.url, outcome="ok")
        return decoded

    # -- observability --------------------------------------------------
    def cluster_metrics(self) -> str:
        """Scrape every live shard's ``/metrics`` and merge the texts
        (plus the router's own registry, as ``shard="router"``) into one
        cluster exposition -- the body of ``GET /metrics/cluster``.

        Dead or unparseable shards are skipped, not fatal: the merged
        view should degrade exactly like the data plane does.
        """
        texts: dict[str, str] = {}
        for url, state in self.backends.items():
            if not state.healthy:
                continue
            try:
                status, _, payload = state.pool.request(
                    "GET", "/metrics", None, {})
            except _CONNECT_ERRORS:
                if state.mark_failure():
                    log.warning("backend down", extra={
                        "fields": {"shard": state.url}})
                continue
            state.mark_success()
            if status != 200:
                continue
            texts[url] = payload.decode("utf-8", "replace")
        self.export_ring_metrics()
        if self.slo is not None:
            self.slo.export(self.metrics)
        texts["router"] = self.metrics.render()
        return merge_expositions(texts)

    def fetch_trace(self, request_id: str) -> list[dict[str, Any]]:
        """Stitch one request's spans: the router's exemplar (if kept)
        plus every live shard's ``/debug/trace`` spans for that id,
        merged and ordered by wall-clock start."""
        spans: list[dict[str, Any]] = list(
            self.exemplars.get(request_id) or [])
        for url, state in self.backends.items():
            if not state.healthy:
                continue
            try:
                status, _, payload = state.pool.request(
                    "GET", f"/debug/trace/{request_id}?format=spans",
                    None, {})
            except _CONNECT_ERRORS:
                if state.mark_failure():
                    log.warning("backend down", extra={
                        "fields": {"shard": state.url}})
                continue
            state.mark_success()
            if status != 200:
                continue
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
            if isinstance(decoded, dict):
                shard_spans = decoded.get("spans") or []
                for span in shard_spans:
                    if isinstance(span, dict):
                        span.setdefault("attrs", {}).setdefault("shard", url)
                        spans.append(span)
        spans.sort(key=lambda s: s.get("start", 0.0))
        return spans

    def export_ring_metrics(self) -> None:
        ownership = self.ring.ownership()
        own_gauge = self.metrics.gauge(
            "repro_router_ring_ownership",
            "Fraction of the digest keyspace each shard owns.")
        live_gauge = self.metrics.gauge(
            "repro_router_backend_up",
            "1 when the shard answers health probes, else 0.")
        for url, state in self.backends.items():
            own_gauge.set(ownership.get(url, 0.0), shard=url)
            live_gauge.set(1.0 if state.healthy else 0.0, shard=url)
        self.metrics.gauge(
            "repro_router_backends",
            "Configured backend count.").set(len(self.backends))
        self.metrics.gauge(
            "repro_router_digest_memo_entries",
            "Resident source->digest memo entries.").set(len(self._digests))
        self.metrics.gauge(
            "repro_router_digest_memo_evictions_total",
            "Memo entries evicted since start (LRU cap).",
        ).set(self._digests.evictions)
        self.metrics.gauge(
            "repro_router_digest_memo_size",
            "Configured digest-memo capacity.").set(self._digests.maxsize)
        self.metrics.gauge(
            "repro_router_trace_exemplars",
            "Exemplar traces retained (failed + slowest).",
        ).set(len(self.exemplars))


def make_router(
    backends: Sequence[str],
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: Any,
) -> ShardRouter:
    """Bind a router (``port=0`` picks an ephemeral port) without serving."""
    return ShardRouter((host, port), backends, **kwargs)


def run_router(
    backends: Sequence[str],
    host: str = "127.0.0.1",
    port: int = 8080,
    **kwargs: Any,
) -> None:
    """Blocking router loop with clean Ctrl-C/SIGTERM shutdown (CLI path)."""
    configure_json_logging()
    router = make_router(backends, host, port, **kwargs)
    router.start_probing()

    def _terminate(signum, frame):
        raise SystemExit(128 + signum)

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass  # not the main thread
    log.info("routing on %s:%d", host, router.port)
    print(f"repro router listening on http://{host}:{router.port} "
          f"over {len(router.backends)} backend(s)", flush=True)
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        router.stop()
