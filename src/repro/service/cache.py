"""Content-addressed result cache for the prediction service.

Keys are strings built from the *canonical content digest* of the
program(s) involved (see :func:`repro.ir.program_digest`) plus every
input that changes the answer: machine name, back-end capability
flags, memory-model switch, bindings/domain/workload.  Two clients
posting differently-formatted sources of the same program therefore
share one cache entry, while any semantic variation misses.

Values are the JSON-ready response dicts produced by
:mod:`repro.service.protocol`, which makes on-disk persistence trivial:
the cache appends one JSON line per store, and a restarted server
replays the file to warm itself before taking traffic.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["CacheStats", "Eviction", "ResultCache", "endpoint_of"]


def endpoint_of(key: str) -> str:
    """The endpoint a cache key belongs to (keys start ``kind|...``)."""
    return key.split("|", 1)[0]


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


@dataclass(frozen=True)
class Eviction:
    """One LRU eviction: which entry fell out, and how old it was."""

    key: str
    endpoint: str
    age: float  # seconds since the entry was stored


class ResultCache:
    """A bounded, thread-safe LRU mapping cache keys to response dicts.

    ``maxsize`` bounds the number of resident entries (least recently
    *used* falls out first).  When ``path`` is given, every store is
    appended to that JSON-lines file and :meth:`load` replays it --
    later lines win, and only the newest ``maxsize`` entries stay
    resident, so the file may grow past the memory bound safely.
    """

    def __init__(self, maxsize: int = 1024, path: str | os.PathLike | None = None):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.path = os.fspath(path) if path is not None else None
        self.stats = CacheStats()
        self._data: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._stamps: dict[str, float] = {}  # key -> insertion wall time
        self._aux: dict[str, dict[str, Any]] = {}  # key -> persisted req block
        self._lock = threading.Lock()
        if self.path is not None:
            self.load()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: str) -> dict[str, Any] | None:
        """Look up ``key``; counts a hit or miss and refreshes recency."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: str, value: dict[str, Any],
            aux: dict[str, Any] | None = None) -> Eviction | None:
        """Store ``key``; evicts the LRU entry past ``maxsize``.

        ``aux`` is an optional request-shaped block persisted alongside
        the value (as a ``req`` field on the JSON line) but never held
        resident: offline consumers like ``repro surrogate train`` read
        it back as free labeled training data.  Readers that predate
        the field ignore it.

        Returns an :class:`Eviction` record when a resident entry fell
        out (so callers can report which endpoint lost an entry and how
        stale it was), or ``None`` when everything fit.
        """
        now = time.time()
        evicted: Eviction | None = None
        with self._lock:
            already_present = key in self._data
            self._data[key] = value
            self._data.move_to_end(key)
            self._stamps[key] = now
            if aux:
                self._aux[key] = aux
            if not already_present and len(self._data) > self.maxsize:
                victim, _ = self._data.popitem(last=False)
                stored = self._stamps.pop(victim, now)
                self._aux.pop(victim, None)
                self.stats.evictions += 1
                evicted = Eviction(victim, endpoint_of(victim),
                                   max(now - stored, 0.0))
            if self.path is not None:
                self._append_line(key, value, now, aux)
        return evicted

    def entry_ages(self) -> dict[str, float]:
        """Seconds since insertion for every resident entry."""
        now = time.time()
        with self._lock:
            return {
                key: max(now - self._stamps.get(key, now), 0.0)
                for key in self._data
            }

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._stamps.clear()
            self._aux.clear()
            self.stats = CacheStats()

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._data))

    # ------------------------------------------------------------------
    # persistence

    def _append_line(self, key: str, value: dict[str, Any], stamp: float,
                     aux: dict[str, Any] | None = None) -> None:
        record: dict[str, Any] = {"key": key, "value": value, "ts": stamp}
        if aux:
            record["req"] = aux
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def load(self) -> int:
        """Replay the JSON-lines file; returns how many entries loaded.

        Corrupt lines (a torn final write after a crash) are skipped
        rather than fatal -- a warm start must never block serving.
        """
        if self.path is None or not os.path.exists(self.path):
            return 0
        now = time.time()
        loaded: OrderedDict[str, dict[str, Any]] = OrderedDict()
        stamps: dict[str, float] = {}
        aux: dict[str, dict[str, Any]] = {}
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key, value = record["key"], record["value"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue
                if key in loaded:
                    loaded.move_to_end(key)
                loaded[key] = value
                req = record.get("req")
                if isinstance(req, dict):
                    aux[key] = req
                # Files written before timestamps existed lack "ts";
                # treat those entries as stored at load time.
                ts = record.get("ts")
                stamps[key] = float(ts) if isinstance(ts, (int, float)) else now
        while len(loaded) > self.maxsize:
            victim, _ = loaded.popitem(last=False)
            stamps.pop(victim, None)
            aux.pop(victim, None)
        with self._lock:
            self._data = loaded
            self._stamps = stamps
            self._aux = aux
            return len(self._data)

    def compact(self) -> None:
        """Rewrite the persistence file to exactly the resident entries."""
        if self.path is None:
            return
        with self._lock:
            now = time.time()
            lines = []
            for k, v in self._data.items():
                record: dict[str, Any] = {
                    "key": k, "value": v, "ts": self._stamps.get(k, now),
                }
                req = self._aux.get(k)
                if req:
                    record["req"] = req
                lines.append(json.dumps(record, sort_keys=True))
            tmp = self.path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + ("\n" if lines else ""))
            os.replace(tmp, self.path)
