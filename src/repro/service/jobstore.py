"""Persistent store for async restructure jobs.

One directory holds everything a shard -- or, after a SIGKILL, its
ring successor -- needs to know about a job:

``<root>/<job_id>.json``
    the job record: status, the original request payload, progress
    fields, owner identity + heartbeat, and the final result or error.
    Written atomically (tmp + ``os.replace``), so a reader never sees
    a torn record.
``<root>/<job_id>.events.jsonl``
    append-only event log, one JSON line per beam round (plus one
    ``final`` line at termination).  SSE replay -- including the
    ``?from_round=K`` resume path -- reads this file.
``<root>/<job_id>.ckpt.json``
    the latest versioned checkpoint: JSON metadata (format version,
    program digest, machine fingerprint, search-parameter key, rounds)
    wrapping a base64 pickle of
    :class:`~repro.transform.search.SearchCheckpoint`.  Pickle is the
    right codec here: the state crosses process pools already, and the
    JSON envelope carries everything needed to *reject* a checkpoint
    (format drift, recalibrated machine, changed search parameters)
    before unpickling a stale one.

Point several shards at one shared directory and a killed shard's job
is resumable by whoever the router asks next; the store itself has no
coordination beyond atomic replaces -- ownership fencing lives in
:mod:`repro.service.jobs`.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import re
import threading
from typing import Any

__all__ = ["CHECKPOINT_VERSION", "JobStore", "valid_job_id"]

#: Bump when the checkpoint payload's shape changes; a loader that sees
#: another version ignores the checkpoint (the job restarts from round
#: zero) instead of unpickling state it cannot trust.
CHECKPOINT_VERSION = 1

_JOB_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def valid_job_id(job_id: str) -> bool:
    """Ids are path components; reject anything that could traverse."""
    return bool(isinstance(job_id, str) and _JOB_ID.match(job_id))


class JobStore:
    """Directory-backed job records, event logs, and checkpoints.

    Thread-safe within a process (one lock serializes writers); safe
    across processes for the operations the job subsystem performs:
    record writes are atomic replaces, event appends are single
    ``write`` calls of one line, and duplicate rounds from a briefly
    double-owned job are deduplicated at read time.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()

    # -- paths ----------------------------------------------------------
    def _path(self, job_id: str, suffix: str) -> str:
        if not valid_job_id(job_id):
            raise ValueError(f"invalid job id {job_id!r}")
        return os.path.join(self.root, f"{job_id}{suffix}")

    def record_path(self, job_id: str) -> str:
        return self._path(job_id, ".json")

    def events_path(self, job_id: str) -> str:
        return self._path(job_id, ".events.jsonl")

    def checkpoint_path(self, job_id: str) -> str:
        return self._path(job_id, ".ckpt.json")

    # -- records --------------------------------------------------------
    def _write_record(self, job_id: str, record: dict[str, Any]) -> None:
        path = self.record_path(job_id)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True))
        os.replace(tmp, path)

    def create(self, job_id: str, record: dict[str, Any]) -> dict[str, Any]:
        record = dict(record, job_id=job_id)
        with self._lock:
            self._write_record(job_id, record)
        return record

    def get(self, job_id: str) -> dict[str, Any] | None:
        try:
            with open(self.record_path(job_id), encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError, ValueError):
            return None

    def update(self, job_id: str, **fields: Any) -> dict[str, Any] | None:
        """Read-modify-write the record atomically (within this process)."""
        with self._lock:
            record = self.get(job_id)
            if record is None:
                return None
            record.update(fields)
            self._write_record(job_id, record)
            return record

    def list_ids(self) -> list[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            name[: -len(".json")] for name in names
            if name.endswith(".json") and not name.endswith(".ckpt.json")
            and not name.endswith(".events.jsonl")
        )

    def delete(self, job_id: str) -> None:
        for path in (self.record_path(job_id), self.events_path(job_id),
                     self.checkpoint_path(job_id)):
            try:
                os.remove(path)
            except OSError:
                pass

    # -- events ---------------------------------------------------------
    def append_event(self, job_id: str, event: dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True) + "\n"
        with self._lock:
            with open(self.events_path(job_id), "a",
                      encoding="utf-8") as handle:
                handle.write(line)

    def events(self, job_id: str, from_round: int = 0) -> list[dict[str, Any]]:
        """Round events with ``round > from_round``, then any final event.

        Rounds are deduplicated (first write wins) and returned in
        ascending order even if two runners briefly interleaved appends
        during an ownership handoff -- a resumed ``?from_round=K``
        replay therefore never repeats a round.
        """
        try:
            with open(self.events_path(job_id), encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return []
        rounds: dict[int, dict[str, Any]] = {}
        final: dict[str, Any] | None = None
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail after a crash; never fatal
            if event.get("final"):
                final = final or event
            else:
                rounds.setdefault(int(event.get("round", 0)), event)
        out = [rounds[r] for r in sorted(rounds) if r > from_round]
        if final is not None:
            out.append(final)
        return out

    # -- checkpoints ----------------------------------------------------
    def save_checkpoint(self, job_id: str, *, digest: str, fingerprint: str,
                        params_key: str, rounds: int, state: Any) -> None:
        """Persist the round-``rounds`` search state (atomic replace)."""
        blob = base64.b64encode(
            pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        envelope = {
            "version": CHECKPOINT_VERSION,
            "job_id": job_id,
            "digest": digest,
            "fingerprint": fingerprint,
            "params_key": params_key,
            "rounds": rounds,
            "state": blob,
        }
        path = self.checkpoint_path(job_id)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(envelope, sort_keys=True))
        os.replace(tmp, path)

    def load_checkpoint(self, job_id: str, *, digest: str, fingerprint: str,
                        params_key: str) -> tuple[int, Any] | None:
        """``(rounds, state)`` if a *compatible* checkpoint exists.

        Compatibility is strict: format version, program digest,
        machine cost-table fingerprint, and the search-parameter key
        must all match, or the checkpoint is ignored and the job
        restarts from scratch (correct, just slower).
        """
        try:
            with open(self.checkpoint_path(job_id),
                      encoding="utf-8") as handle:
                envelope = json.load(handle)
        except (OSError, json.JSONDecodeError, ValueError):
            return None
        if (envelope.get("version") != CHECKPOINT_VERSION
                or envelope.get("digest") != digest
                or envelope.get("fingerprint") != fingerprint
                or envelope.get("params_key") != params_key):
            return None
        try:
            state = pickle.loads(base64.b64decode(envelope["state"]))
        except Exception:  # noqa: BLE001 -- corrupt blob == no checkpoint
            return None
        return int(envelope.get("rounds", 0)), state

    def drop_checkpoint(self, job_id: str) -> None:
        try:
            os.remove(self.checkpoint_path(job_id))
        except OSError:
            pass
