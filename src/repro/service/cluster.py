"""Spawn and manage local backend server subprocesses.

One helper shared by three callers that all need "N real ``server.py``
processes on ephemeral ports": the CLI's ``route --spawn N``, the
multi-backend integration tests, and ``benchmarks/bench_router.py``.
Each backend is a full ``python -m repro serve`` process -- its own
interpreter, engine, and caches -- so tests and benchmarks exercise
the real process topology, not threads pretending to be shards.

Backends bind port 0 and announce the chosen port on stdout
(``repro service listening on http://host:port``); :func:`spawn_backend`
parses that line, then waits for ``/healthz`` to answer so callers
never race a half-started server.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
import urllib.request

__all__ = ["LocalBackend", "spawn_backend", "spawn_backends"]

_LISTENING = re.compile(r"listening on (http://[\d.]+:\d+)")


class LocalBackend:
    """One ``repro serve`` subprocess and its base URL."""

    def __init__(self, process: subprocess.Popen, url: str):
        self.process = process
        self.url = url

    @property
    def port(self) -> int:
        return int(self.url.rsplit(":", 1)[1])

    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """Hard-stop (SIGKILL) -- the fault-injection path."""
        if self.alive():
            self.process.kill()
        self.process.wait(timeout=10)

    def terminate(self, timeout: float = 10.0) -> int:
        """Graceful stop (SIGTERM, then SIGKILL if it lingers)."""
        if self.alive():
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=timeout)
        return self.process.returncode

    def __enter__(self) -> "LocalBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.terminate()


def _repo_env() -> dict[str, str]:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def spawn_backend(
    *,
    workers: int = 0,
    cache_size: int = 1024,
    host: str = "127.0.0.1",
    extra_args: tuple[str, ...] = (),
    startup_timeout: float = 30.0,
) -> LocalBackend:
    """Start one backend on an ephemeral port; block until it's healthy."""
    command = [
        sys.executable, "-u", "-m", "repro", "serve",
        "--host", host, "--port", "0",
        "--workers", str(workers), "--cache-size", str(cache_size),
        *extra_args,
    ]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=_repo_env(),
        start_new_session=True,  # our signals, not the caller's Ctrl-C group
    )
    deadline = time.monotonic() + startup_timeout
    url = None
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = _LISTENING.search(line)
        if match:
            url = match.group(1)
            break
    if url is None:
        process.kill()
        process.wait()
        raise RuntimeError("backend did not announce a listening port")
    _wait_healthy(url, deadline)
    return LocalBackend(process, url)


def _wait_healthy(url: str, deadline: float) -> None:
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(f"{url}/healthz", timeout=2) as resp:
                if resp.status == 200:
                    return
        except OSError:
            pass
        time.sleep(0.05)
    raise RuntimeError(f"backend at {url} never became healthy")


def spawn_backends(count: int, **kwargs) -> list[LocalBackend]:
    """Start ``count`` backends; tears all down if any fails to start."""
    backends: list[LocalBackend] = []
    shard_args = tuple(kwargs.pop("extra_args", ()))
    try:
        for index in range(count):
            backends.append(spawn_backend(
                extra_args=shard_args + ("--shard-of", f"{index}/{count}"),
                **kwargs))
    except Exception:
        for backend in backends:
            backend.terminate()
        raise
    return backends
