"""Wire types for the prediction service.

Every endpoint has a request dataclass and a response dataclass with a
strict dict/JSON form: deserialization rejects unknown fields, missing
required fields, and wrong types, so a malformed client call fails at
the boundary with a :class:`ProtocolError` (surfaced as a 400 error
envelope) rather than deep inside the engine.

The same serializers back the CLI ``--json`` flags, so scripted
callers see one schema whether they go over HTTP or the command line.
"""

from __future__ import annotations

from dataclasses import MISSING, asdict, dataclass, fields
from fractions import Fraction
from typing import Any, Mapping

from ..symbolic.intervals import Interval

__all__ = [
    "ProtocolError",
    "PredictRequest", "PredictResponse",
    "CompareRequest", "CompareResponse",
    "RestructureRequest", "RestructureResponse",
    "RestructureJobRequest", "JobStatusResponse",
    "KernelsRequest", "KernelRow", "KernelsResponse",
    "SweepRequest", "SweepPointRow", "SweepResponse",
    "ErrorResponse",
    "request_from_dict", "response_to_dict", "error_envelope",
    "parse_bindings", "parse_domain",
    "REQUEST_TYPES",
]


class ProtocolError(ValueError):
    """A request that violates the wire schema."""


# ----------------------------------------------------------------------
# strict construction helpers

_JSON_SCALARS = (str, int, float, bool)


def _strict_build(cls, data: Mapping[str, Any]):
    """Build a request dataclass from a dict, rejecting schema drift."""
    if not isinstance(data, Mapping):
        raise ProtocolError(f"{cls.__name__}: body must be a JSON object")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ProtocolError(
            f"{cls.__name__}: unknown field(s) {sorted(unknown)}"
        )
    kwargs: dict[str, Any] = {}
    for f in fields(cls):
        if f.name in data:
            kwargs[f.name] = data[f.name]
        elif f.default is MISSING and f.default_factory is MISSING:  # type: ignore[misc]
            raise ProtocolError(f"{cls.__name__}: missing field {f.name!r}")
    obj = cls(**kwargs)
    obj.validate()
    return obj


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ProtocolError(message)


def _check_str(name: str, value: Any, *, allow_none: bool = False) -> None:
    if allow_none and value is None:
        return
    _require(isinstance(value, str) and value != "",
             f"{name} must be a non-empty string")


def _check_mapping(name: str, value: Any, *, allow_none: bool = True) -> None:
    if allow_none and value is None:
        return
    _require(isinstance(value, Mapping), f"{name} must be a JSON object")
    for key in value:
        _require(isinstance(key, str), f"{name} keys must be strings")


def parse_bindings(raw: Mapping[str, Any] | None) -> dict[str, Fraction]:
    """``{"n": 100, "m": "1/2"}`` -> exact Fraction bindings."""
    out: dict[str, Fraction] = {}
    for name, value in (raw or {}).items():
        try:
            out[name] = Fraction(str(value))
        except (ValueError, ZeroDivisionError) as error:
            raise ProtocolError(f"bad binding {name}={value!r}: {error}")
    return out


def parse_domain(raw: Mapping[str, Any] | None) -> dict[str, Interval]:
    """``{"n": [1, 1000]}`` -> per-variable interval bounds."""
    out: dict[str, Interval] = {}
    for name, span in (raw or {}).items():
        if not (isinstance(span, (list, tuple)) and len(span) == 2):
            raise ProtocolError(
                f"domain for {name!r} must be a [lo, hi] pair"
            )
        try:
            out[name] = Interval(Fraction(str(span[0])), Fraction(str(span[1])))
        except (ValueError, ZeroDivisionError) as error:
            raise ProtocolError(f"bad domain for {name!r}: {error}")
    return out


# ----------------------------------------------------------------------
# requests


@dataclass(frozen=True)
class PredictRequest:
    """Symbolic cost of one mini-Fortran program."""

    source: str
    machine: str = "power"
    backend: str = "aggressive"
    include_memory: bool = False
    bindings: Mapping[str, Any] | None = None
    trace: bool = False
    fidelity: str = "exact"        # exact | fast | auto
    tolerance: float | None = None  # auto tier's relative-width ceiling

    def validate(self) -> None:
        _check_str("source", self.source)
        _check_str("machine", self.machine)
        _require(self.backend in ("aggressive", "naive"),
                 "backend must be 'aggressive' or 'naive'")
        _require(isinstance(self.include_memory, bool),
                 "include_memory must be a boolean")
        _check_mapping("bindings", self.bindings)
        parse_bindings(self.bindings)
        _require(isinstance(self.trace, bool), "trace must be a boolean")
        _require(self.fidelity in ("exact", "fast", "auto"),
                 "fidelity must be 'exact', 'fast', or 'auto'")
        if self.tolerance is not None:
            _require(isinstance(self.tolerance, (int, float))
                     and not isinstance(self.tolerance, bool)
                     and self.tolerance > 0,
                     "tolerance must be a positive number")


@dataclass(frozen=True)
class CompareRequest:
    """Symbolic comparison of two programs on one machine."""

    first: str
    second: str
    machine: str = "power"
    domain: Mapping[str, Any] | None = None
    trace: bool = False

    def validate(self) -> None:
        _check_str("first", self.first)
        _check_str("second", self.second)
        _check_str("machine", self.machine)
        _check_mapping("domain", self.domain)
        parse_domain(self.domain)
        _require(isinstance(self.trace, bool), "trace must be a boolean")


@dataclass(frozen=True)
class RestructureRequest:
    """Performance-guided A* restructuring of one program."""

    source: str
    machine: str = "power"
    workload: Mapping[str, Any] | None = None
    domain: Mapping[str, Any] | None = None
    depth: int = 2
    max_nodes: int = 200
    beam_width: int = 1
    trace: bool = False

    def validate(self) -> None:
        _check_str("source", self.source)
        _check_str("machine", self.machine)
        _check_mapping("workload", self.workload)
        _check_mapping("domain", self.domain)
        parse_bindings(self.workload)
        parse_domain(self.domain)
        _require(isinstance(self.depth, int) and 1 <= self.depth <= 8,
                 "depth must be an integer in 1..8")
        _require(isinstance(self.max_nodes, int) and 1 <= self.max_nodes <= 10000,
                 "max_nodes must be an integer in 1..10000")
        _require(isinstance(self.beam_width, int) and 1 <= self.beam_width <= 64,
                 "beam_width must be an integer in 1..64")
        _require(isinstance(self.trace, bool), "trace must be a boolean")


@dataclass(frozen=True)
class RestructureJobRequest:
    """Async restructure submission (``POST /restructure/jobs``).

    Same search parameters as :class:`RestructureRequest`, plus a
    scheduling ``priority`` (higher runs first).  There is no ``trace``
    field: a job's observable progress is its event stream, not a span
    tree snapshot of one HTTP exchange.
    """

    source: str
    machine: str = "power"
    workload: Mapping[str, Any] | None = None
    domain: Mapping[str, Any] | None = None
    depth: int = 2
    max_nodes: int = 200
    beam_width: int = 1
    priority: int = 0

    def validate(self) -> None:
        _check_str("source", self.source)
        _check_str("machine", self.machine)
        _check_mapping("workload", self.workload)
        _check_mapping("domain", self.domain)
        parse_bindings(self.workload)
        parse_domain(self.domain)
        _require(isinstance(self.depth, int) and 1 <= self.depth <= 8,
                 "depth must be an integer in 1..8")
        _require(isinstance(self.max_nodes, int) and 1 <= self.max_nodes <= 10000,
                 "max_nodes must be an integer in 1..10000")
        _require(isinstance(self.beam_width, int) and 1 <= self.beam_width <= 64,
                 "beam_width must be an integer in 1..64")
        _require(isinstance(self.priority, int) and -10 <= self.priority <= 10,
                 "priority must be an integer in -10..10")

    def to_restructure(self) -> RestructureRequest:
        """The equivalent synchronous request (the search is identical)."""
        return RestructureRequest(
            source=self.source, machine=self.machine,
            workload=self.workload, domain=self.domain,
            depth=self.depth, max_nodes=self.max_nodes,
            beam_width=self.beam_width,
        )


@dataclass(frozen=True)
class SweepRequest:
    """One program across a width ladder of a machine family."""

    source: str
    machine: str = "power"
    widths: Any = None             # list of ints, default family ladder
    bindings: Mapping[str, Any] | None = None
    branch_miss_rate: float = 0.0
    cache_miss_rate: float = 0.0
    trace: bool = False

    def validate(self) -> None:
        _check_str("source", self.source)
        _check_str("machine", self.machine)
        if self.widths is not None:
            _require(isinstance(self.widths, (list, tuple)) and self.widths,
                     "widths must be a non-empty list of integers")
            for width in self.widths:
                _require(isinstance(width, int)
                         and not isinstance(width, bool)
                         and 1 <= width <= 64,
                         "widths must be integers in 1..64")
        _check_mapping("bindings", self.bindings)
        parse_bindings(self.bindings)
        for field in ("branch_miss_rate", "cache_miss_rate"):
            value = getattr(self, field)
            _require(isinstance(value, (int, float))
                     and not isinstance(value, bool)
                     and 0.0 <= value <= 1.0,
                     f"{field} must be a number in [0, 1]")
        _require(isinstance(self.trace, bool), "trace must be a boolean")


@dataclass(frozen=True)
class KernelsRequest:
    """The Figure 7 table (predicted vs reference) for one machine."""

    machine: str = "power"
    trace: bool = False

    def validate(self) -> None:
        _check_str("machine", self.machine)
        _require(isinstance(self.trace, bool), "trace must be a boolean")


REQUEST_TYPES: dict[str, type] = {
    "predict": PredictRequest,
    "compare": CompareRequest,
    "restructure": RestructureRequest,
    "restructure_job": RestructureJobRequest,
    "kernels": KernelsRequest,
    "sweep": SweepRequest,
}


def request_from_dict(kind: str, data: Mapping[str, Any]):
    """Strictly deserialize a request body for endpoint ``kind``."""
    try:
        cls = REQUEST_TYPES[kind]
    except KeyError:
        raise ProtocolError(f"unknown request kind {kind!r}") from None
    return _strict_build(cls, data)


# ----------------------------------------------------------------------
# responses


@dataclass(frozen=True)
class PredictResponse:
    cost: str                      # symbolic cycles, e.g. "3*n + 8"
    digest: str                    # canonical content hash of the program
    machine: str
    backend: str
    variables: tuple[str, ...] = ()
    cycles: str | None = None      # exact value when bindings were given
    cached: bool = False
    trace: Any = None              # span dicts when the request opted in
    fidelity: str = "exact"        # "fast" when the surrogate answered
    interval: Any = None           # [lo, hi] conformal bound (fast tier)
    model_version: int | None = None  # surrogate model version (fast tier)


@dataclass(frozen=True)
class CompareResponse:
    cost_first: str
    cost_second: str
    verdict: str
    report: str
    digest_first: str
    digest_second: str
    machine: str
    cached: bool = False
    trace: Any = None


@dataclass(frozen=True)
class RestructureResponse:
    sequence: str
    cost: str
    program: str
    digest: str                    # digest of the *input* program
    machine: str
    nodes_expanded: int = 0
    cached: bool = False
    trace: Any = None


@dataclass(frozen=True)
class KernelRow:
    kernel: str
    predicted: int
    reference: int
    error_pct: float


@dataclass(frozen=True)
class KernelsResponse:
    machine: str
    rows: tuple[KernelRow, ...] = ()
    cached: bool = False
    trace: Any = None


@dataclass(frozen=True)
class SweepPointRow:
    width: int
    cycles: float
    ipc: float
    fingerprint: str
    placement_cycles: float
    penalty_cycles: float


@dataclass(frozen=True)
class SweepResponse:
    machine: str
    digest: str                    # canonical content hash of the program
    widths: tuple[int, ...] = ()
    points: tuple[SweepPointRow, ...] = ()
    saturation_width: int = 1
    instructions: float = 0.0
    cached: bool = False
    trace: Any = None


@dataclass(frozen=True)
class JobStatusResponse:
    """Public view of one async restructure job.

    Returned by submit (``status="queued"``), status polls, and cancel.
    ``result`` carries the full :class:`RestructureResponse` dict once
    ``status="done"``; ``error`` carries the error envelope when
    ``status="error"``.  ``owner`` identifies the shard process running
    the job (``pid:<pid>.<nonce>``) and ``adopted`` counts ownership
    handoffs after shard deaths.
    """

    job_id: str
    status: str                    # queued | running | done | error | cancelled
    digest: str
    machine: str
    rounds: int = 0
    priority: int = 0
    adopted: int = 0
    owner: str | None = None
    best_sequence: str | None = None
    best_cost: str | None = None
    result: Any = None
    error: Any = None


@dataclass(frozen=True)
class ErrorResponse:
    error: str                     # exception class name
    message: str
    status: int = 400


RESPONSE_TYPES: dict[str, type] = {
    "predict": PredictResponse,
    "compare": CompareResponse,
    "restructure": RestructureResponse,
    "job_status": JobStatusResponse,
    "kernels": KernelsResponse,
    "sweep": SweepResponse,
}


def response_to_dict(response) -> dict[str, Any]:
    """Dataclass response -> plain JSON-ready dict.

    The ``trace`` block is omitted unless spans were attached, so the
    wire format of untraced responses is unchanged.
    """
    out = asdict(response)
    if isinstance(response, KernelsResponse):
        out["rows"] = [asdict(r) for r in response.rows]
    if isinstance(response, SweepResponse):
        out["widths"] = list(response.widths)
        out["points"] = [asdict(p) for p in response.points]
    if out.get("trace") is None:
        out.pop("trace", None)
    # Fast-tier fields ride only on fast-tier answers: exact responses
    # keep their pre-surrogate wire bytes, bit for bit.
    if out.get("fidelity") == "exact":
        out.pop("fidelity", None)
    if isinstance(response, PredictResponse):
        if out.get("interval") is None:
            out.pop("interval", None)
        if out.get("model_version") is None:
            out.pop("model_version", None)
    return out


def response_from_dict(kind: str, data: Mapping[str, Any]):
    """Rebuild a response dataclass from its dict form (cache replay)."""
    cls = RESPONSE_TYPES[kind]
    payload = dict(data)
    if cls is KernelsResponse:
        payload["rows"] = tuple(KernelRow(**r) for r in payload.get("rows", ()))
    if cls is SweepResponse:
        payload["widths"] = tuple(payload.get("widths", ()))
        payload["points"] = tuple(
            SweepPointRow(**p) for p in payload.get("points", ()))
    if "variables" in payload and payload["variables"] is not None:
        payload["variables"] = tuple(payload["variables"])
    return cls(**payload)


def error_envelope(error: BaseException, status: int = 400) -> dict[str, Any]:
    """The uniform error shape every endpoint returns on failure."""
    return response_to_dict(
        ErrorResponse(type(error).__name__, str(error), status)
    )
