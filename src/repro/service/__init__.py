"""Serving subsystem: batched engine, content-addressed cache, HTTP server.

Turns the one-shot prediction library into long-lived infrastructure:

* :class:`PredictionEngine` -- validates, caches, and executes
  predict / compare / restructure / kernels requests, singly or in
  batches, over a process (or thread) worker pool;
* :class:`ResultCache` -- content-addressed LRU keyed by canonical
  program digest, with JSON-lines persistence for instant warm starts;
* :mod:`~repro.service.protocol` -- strict wire dataclasses shared by
  the HTTP server and the CLI ``--json`` flags;
* :class:`PredictionServer` -- a dependency-free ``http.server``
  JSON front end with ``/healthz`` and Prometheus ``/metrics``;
* :class:`ShardRouter` + :class:`~repro.service.shard.HashRing` --
  a consistent-hash front door that partitions the digest keyspace
  over N backend servers with health probes, failover, and local
  degraded mode;
* :class:`ReproClient` / :class:`AsyncReproClient` -- pooled typed
  clients for either a single server or the router;
* :class:`JobManager` + :class:`JobStore` -- async restructure jobs
  with streaming progress events, resumable checkpoints, cooperative
  cancellation, and cross-shard adoption after a shard death.

Quick start::

    from repro.service import PredictionEngine, PredictRequest

    engine = PredictionEngine(workers=4, cache_size=4096)
    response = engine.predict(PredictRequest(source=saxpy_text))
    print(response.cost)          # "3*n + 8"

Over the wire::

    from repro.service import ReproClient

    with ReproClient("http://127.0.0.1:8080") as client:
        print(client.predict(saxpy_text, bindings={"n": 100}).cycles)
"""

from .cache import CacheStats, Eviction, ResultCache, endpoint_of
from .client import (
    AsyncReproClient,
    BadRequestError,
    RemoteError,
    ReproClient,
    ReproClientError,
    ServerError,
    TransportError,
)
from .engine import PredictionEngine, ServiceError, execute_request
from .jobs import (
    JOBS_PREFIX,
    JobManager,
    TERMINAL_STATUSES,
    job_affinity_key,
    parse_job_path,
)
from .jobstore import CHECKPOINT_VERSION, JobStore, valid_job_id
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .protocol import (
    CompareRequest,
    CompareResponse,
    ErrorResponse,
    JobStatusResponse,
    KernelRow,
    KernelsRequest,
    KernelsResponse,
    PredictRequest,
    PredictResponse,
    ProtocolError,
    RestructureJobRequest,
    RestructureRequest,
    RestructureResponse,
    SweepPointRow,
    SweepRequest,
    SweepResponse,
    error_envelope,
    request_from_dict,
    response_from_dict,
    response_to_dict,
)
from .router import ShardRouter, make_router, run_router
from .server import PredictionServer, make_server, run_server
from .shard import HashRing

__all__ = [
    "AsyncReproClient", "BadRequestError", "CacheStats",
    "CHECKPOINT_VERSION", "CompareRequest",
    "CompareResponse", "Counter", "ErrorResponse", "Eviction", "Gauge",
    "HashRing", "Histogram", "JOBS_PREFIX", "JobManager", "JobStore",
    "JobStatusResponse", "KernelRow", "KernelsRequest",
    "KernelsResponse", "MetricsRegistry", "PredictRequest",
    "PredictResponse", "PredictionEngine", "PredictionServer",
    "ProtocolError", "RemoteError", "ReproClient", "ReproClientError",
    "RestructureJobRequest", "RestructureRequest", "RestructureResponse",
    "ResultCache", "ServerError", "ServiceError", "ShardRouter",
    "SweepPointRow", "SweepRequest", "SweepResponse",
    "TERMINAL_STATUSES", "TransportError",
    "endpoint_of", "error_envelope", "execute_request",
    "job_affinity_key", "make_router",
    "make_server", "parse_job_path", "request_from_dict",
    "response_from_dict", "response_to_dict", "run_router", "run_server",
    "valid_job_id",
]
