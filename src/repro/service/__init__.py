"""Serving subsystem: batched engine, content-addressed cache, HTTP server.

Turns the one-shot prediction library into long-lived infrastructure:

* :class:`PredictionEngine` -- validates, caches, and executes
  predict / compare / restructure / kernels requests, singly or in
  batches, over a process (or thread) worker pool;
* :class:`ResultCache` -- content-addressed LRU keyed by canonical
  program digest, with JSON-lines persistence for instant warm starts;
* :mod:`~repro.service.protocol` -- strict wire dataclasses shared by
  the HTTP server and the CLI ``--json`` flags;
* :class:`PredictionServer` -- a dependency-free ``http.server``
  JSON front end with ``/healthz`` and Prometheus ``/metrics``.

Quick start::

    from repro.service import PredictionEngine, PredictRequest

    engine = PredictionEngine(workers=4, cache_size=4096)
    response = engine.predict(PredictRequest(source=saxpy_text))
    print(response.cost)          # "3*n + 8"
"""

from .cache import CacheStats, Eviction, ResultCache, endpoint_of
from .engine import PredictionEngine, ServiceError, execute_request
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .protocol import (
    CompareRequest,
    CompareResponse,
    ErrorResponse,
    KernelRow,
    KernelsRequest,
    KernelsResponse,
    PredictRequest,
    PredictResponse,
    ProtocolError,
    RestructureRequest,
    RestructureResponse,
    error_envelope,
    request_from_dict,
    response_from_dict,
    response_to_dict,
)
from .server import PredictionServer, make_server, run_server

__all__ = [
    "CacheStats", "CompareRequest", "CompareResponse", "Counter",
    "ErrorResponse", "Eviction", "Gauge", "Histogram", "KernelRow",
    "KernelsRequest", "KernelsResponse", "MetricsRegistry",
    "PredictRequest", "PredictResponse", "PredictionEngine",
    "PredictionServer", "ProtocolError", "RestructureRequest",
    "RestructureResponse", "ResultCache", "ServiceError", "endpoint_of",
    "error_envelope", "execute_request", "make_server",
    "request_from_dict", "response_from_dict", "response_to_dict",
    "run_server",
]
