"""Dependency-free HTTP/JSON front end for the prediction engine.

Built on :mod:`http.server` with ``ThreadingMixIn`` so each connection
gets a thread while the engine's own pool handles CPU-bound work.

Routes
------
``POST /predict``      one :class:`PredictRequest` object, or a JSON
                       array of them (a batch -> array of responses)
``POST /compare``      symbolic comparison of two programs
``POST /restructure``  A*-guided restructuring
``GET  /kernels``      the Figure 7 table (``?machine=power``)
``GET  /healthz``      liveness probe
``GET  /metrics``      Prometheus text format

Async jobs (when the engine has a job manager attached):

``POST   /restructure/jobs``              submit; returns the job id
                                          immediately
``GET    /restructure/jobs/<id>``         status / progress / result
``GET    /restructure/jobs/<id>/events``  stream best-so-far candidates
                                          per beam round as Server-Sent
                                          Events (``?format=ndjson`` for
                                          a chunked JSON-lines fallback,
                                          ``?from_round=K`` to resume a
                                          dropped stream without
                                          replaying rounds <= K)
``DELETE /restructure/jobs/<id>``         cancel cooperatively at the
                                          next round boundary

Error responses -- including 405s for wrong methods and every error the
stdlib handler machinery itself raises -- use the protocol's uniform
JSON envelope ``{"error": "...", "message": "...", "status": 400}``,
never the stdlib HTML error page.
"""

from __future__ import annotations

import contextlib
import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer
from socketserver import ThreadingMixIn
from typing import Any
from urllib.parse import parse_qs, urlparse

from ..obs import (
    TRACEPARENT_HEADER,
    Tracer,
    chrome_trace,
    configure_json_logging,
    new_request_id,
    parse_traceparent,
    render_tree,
    set_request_id,
    trace_span,
)
from .engine import PredictionEngine
from .jobs import JOBS_PREFIX as _JOBS_PREFIX
from .jobs import parse_job_path
from .protocol import error_envelope

__all__ = ["PredictionServer", "make_server", "run_server"]

log = logging.getLogger("repro.service")

_MAX_BODY_BYTES = 4 * 1024 * 1024
_MAX_BATCH = 256

_POST_ROUTES = {"/predict": "predict", "/compare": "compare",
                "/restructure": "restructure", "/sweep": "sweep"}
_GET_PATHS = ("/healthz", "/metrics", "/kernels")

#: Route prefix for recent-trace retrieval (shared with the router).
_DEBUG_TRACE_PREFIX = "/debug/trace/"

#: How often the events stream re-reads the store while a job runs.
_EVENT_POLL_SECONDS = 0.05
#: How long a terminal job may go without its final event line before
#: the stream synthesizes one (covers the status-write/event-append gap).
_FINAL_EVENT_GRACE = 2.0


class _Handler(BaseHTTPRequestHandler):
    server: "PredictionServer"
    protocol_version = "HTTP/1.1"
    # Close keep-alive connections idle this long: each open connection
    # pins a handler thread, and a client that vanished without FIN
    # (killed test, dropped router) would otherwise pin it forever.
    timeout = 30

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        log.debug("%s -- %s", self.address_string(), format % args)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_bytes(body, status, "application/json")

    def _send_bytes(self, body: bytes, status: int, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "_request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    @contextlib.contextmanager
    def _request_scope(self, endpoint: str):
        """Per-request observability: id binding, tracing, slow-log.

        Binds the request id (honoring a client-sent ``X-Request-Id``)
        for every log line emitted while handling, runs the handler
        under a request-local tracer whose spans feed the phase
        histograms, and dumps the span tree to the log when the request
        exceeds the server's slow threshold.

        An incoming ``traceparent`` header (the router sends one on
        every forwarded hop) seeds the tracer, so this process's spans
        join the caller's trace instead of starting a fresh one.
        Finished spans are deposited in the engine's trace buffer under
        the request id, backing ``GET /debug/trace/<request_id>``.
        """
        server = self.server
        request_id = ((self.headers.get("X-Request-Id") or "").strip()
                      or new_request_id())
        self._request_id = request_id
        token = set_request_id(request_id)
        started = time.perf_counter()
        tracer = None
        if server.tracing:
            remote = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
            tracer = Tracer(
                metrics=server.engine.metrics,
                trace_id=remote.trace_id if remote else None,
                remote_parent_id=remote.span_id if remote else None)
        try:
            if tracer is not None:
                with tracer.activate(), trace_span(
                        "server.handle", endpoint=endpoint,
                        request_id=request_id):
                    yield
            else:
                yield
        finally:
            elapsed = time.perf_counter() - started
            if tracer is not None:
                server.engine.traces.put(request_id, tracer.export())
            if elapsed >= server.slow_request_seconds:
                fields: dict[str, Any] = {
                    "endpoint": endpoint,
                    "seconds": round(elapsed, 6),
                }
                if tracer is not None:
                    fields["span_tree"] = render_tree(tracer.export())
                log.warning("slow request", extra={"fields": fields})
            token.var.reset(token)

    def _observe(self, endpoint: str, status: int, started: float) -> None:
        elapsed = time.perf_counter() - started
        metrics = self.server.engine.metrics
        metrics.counter(
            "repro_http_requests_total",
            "HTTP requests by endpoint and status.",
        ).inc(endpoint=endpoint, status=str(status))
        metrics.histogram(
            "repro_http_request_seconds",
            "HTTP request latency by endpoint.",
        ).observe(elapsed, endpoint=endpoint)
        if self.server.slo is not None:
            self.server.slo.observe(endpoint, elapsed, error=status >= 500)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("empty request body")
        if length > _MAX_BODY_BYTES:
            raise ValueError(f"request body over {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        return json.loads(raw.decode("utf-8"))

    def send_error(self, code: int, message: str | None = None,  # noqa: A002
                   explain: str | None = None) -> None:
        """JSON envelope for errors raised by the handler machinery.

        The stdlib implementation emits an HTML page; every error this
        server produces -- including 501s for unsupported methods and
        400s for malformed request lines -- must be the same JSON
        envelope the routes use.
        """
        try:
            short, long_desc = self.responses[code]
        except (KeyError, ValueError):
            short, long_desc = "Error", ""
        body = json.dumps({
            "error": short.replace(" ", ""),
            "message": message or explain or long_desc or short,
            "status": code,
        }, sort_keys=True).encode("utf-8")
        self.send_response(code, short)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        if self.command != "HEAD" and code >= 200 and code not in (204, 304):
            with contextlib.suppress(OSError):
                self.wfile.write(body)

    def _method_not_allowed(self, allow: str, started: float) -> None:
        path = urlparse(self.path).path
        body = json.dumps({
            "error": "MethodNotAllowed",
            "message": f"{self.command} not allowed on {path}; "
                       f"allowed: {allow}",
            "status": 405,
        }, sort_keys=True).encode("utf-8")
        self.send_response(405)
        self.send_header("Content-Type", "application/json")
        self.send_header("Allow", allow)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._observe("method_not_allowed", 405, started)

    # Shared with the router, which must parse the same job URLs.
    _job_route = staticmethod(parse_job_path)

    def _jobs_or_none(self):
        return self.server.engine.jobs

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 -- http.server API
        with self._request_scope(urlparse(self.path).path):
            self._handle_get()

    def do_POST(self) -> None:  # noqa: N802 -- http.server API
        with self._request_scope(urlparse(self.path).path):
            self._handle_post()

    def do_DELETE(self) -> None:  # noqa: N802 -- http.server API
        with self._request_scope(urlparse(self.path).path):
            self._handle_delete()

    def do_PUT(self) -> None:  # noqa: N802 -- http.server API
        with self._request_scope(urlparse(self.path).path):
            self._reject_method()

    def do_PATCH(self) -> None:  # noqa: N802 -- http.server API
        with self._request_scope(urlparse(self.path).path):
            self._reject_method()

    def do_HEAD(self) -> None:  # noqa: N802 -- http.server API
        with self._request_scope(urlparse(self.path).path):
            self._reject_method()

    def _reject_method(self) -> None:
        """Known path, wrong verb -> 405 + Allow; unknown path -> 404."""
        started = time.perf_counter()
        path = urlparse(self.path).path
        allow = self._allowed_methods(path)
        if allow:
            self._method_not_allowed(allow, started)
            return
        self._send_json(
            {"error": "NotFound", "message": f"no route {path}",
             "status": 404}, 404)
        self._observe("unknown", 404, started)

    @staticmethod
    def _allowed_methods(path: str) -> str | None:
        if path in _POST_ROUTES or path == _JOBS_PREFIX:
            return "POST"
        if path in _GET_PATHS or path.startswith(_DEBUG_TRACE_PREFIX):
            return "GET"
        route = _Handler._job_route(path)
        if route is not None:
            return "GET" if route[1] else "GET, DELETE"
        return None

    def _handle_get(self) -> None:
        started = time.perf_counter()
        url = urlparse(self.path)
        if url.path == "/healthz":
            health: dict[str, Any] = {"status": "ok"}
            if self.server.shard_of:
                health["shard"] = self.server.shard_of
            if self.server.engine.surrogate is not None:
                health["surrogate"] = self.server.engine.surrogate.stats()
            self._send_json(health)
            self._observe("healthz", 200, started)
            return
        if url.path == "/metrics":
            engine = self.server.engine
            engine.export_cache_metrics()
            if engine.jobs is not None:
                engine.jobs.export_metrics()
            if self.server.slo is not None:
                self.server.slo.export(engine.metrics)
            text = engine.metrics.render()
            self._send_bytes(text.encode("utf-8"), 200,
                             "text/plain; version=0.0.4")
            self._observe("metrics", 200, started)
            return
        if url.path.startswith(_DEBUG_TRACE_PREFIX):
            self._handle_debug_trace(url, started)
            return
        if url.path == "/kernels":
            params = parse_qs(url.query)
            machine = params.get("machine", ["power"])[0]
            result = self.server.engine.handle("kernels", {"machine": machine})
            status = result.get("status", 200) if "error" in result else 200
            self._send_json(result, status)
            self._observe("kernels", status, started)
            return
        route = self._job_route(url.path)
        if route is not None:
            job_id, is_events = route
            if is_events:
                self._handle_job_events(job_id, url.query, started)
            else:
                self._handle_job_status(job_id, started)
            return
        self._reject_method()

    def _handle_debug_trace(self, url, started: float) -> None:
        """Serve a recently deposited trace by request id.

        ``?format=chrome`` (default) returns a Chrome ``trace_event``
        document ready for ``chrome://tracing`` / Perfetto;
        ``?format=spans`` returns the raw span dicts -- the shape the
        router stitches into its own cluster-wide view.
        """
        request_id = url.path[len(_DEBUG_TRACE_PREFIX):].strip("/")
        spans = self.server.engine.traces.get(request_id)
        if not request_id or not spans:
            self._send_json(
                {"error": "NotFound",
                 "message": f"no retained trace for request "
                            f"{request_id or '<empty>'}",
                 "status": 404}, 404)
            self._observe("debug_trace", 404, started)
            return
        fmt = parse_qs(url.query).get("format", ["chrome"])[0]
        if fmt == "spans":
            self._send_json({"request_id": request_id, "spans": spans}, 200)
        else:
            self._send_json(chrome_trace(spans, process_name="repro"), 200)
        self._observe("debug_trace", 200, started)

    # -- job routes -----------------------------------------------------
    def _jobs_unavailable(self, endpoint: str, started: float) -> None:
        self._send_json(
            {"error": "JobsUnavailable",
             "message": "job subsystem not enabled; start the server "
                        "with --job-store",
             "status": 503}, 503)
        self._observe(endpoint, 503, started)

    def _handle_job_submit(self, started: float) -> None:
        from .jobs import public_view

        jobs = self._jobs_or_none()
        if jobs is None:
            self._jobs_unavailable("job_submit", started)
            return
        try:
            body = self._read_body()
            record = jobs.submit(body)
        except Exception as error:  # noqa: BLE001 -- boundary envelope
            envelope = error_envelope(error, status=400)
            self._send_json(envelope, 400)
            self._observe("job_submit", 400, started)
            return
        self._send_json(public_view(record), 202)
        self._observe("job_submit", 202, started)

    def _handle_job_status(self, job_id: str, started: float) -> None:
        from .jobs import public_view

        jobs = self._jobs_or_none()
        if jobs is None:
            self._jobs_unavailable("job_status", started)
            return
        record = jobs.status(job_id)
        if record is None:
            self._send_json(
                {"error": "NotFound", "message": f"no job {job_id}",
                 "status": 404}, 404)
            self._observe("job_status", 404, started)
            return
        self._send_json(public_view(record), 200)
        self._observe("job_status", 200, started)

    def _handle_delete(self) -> None:
        from .jobs import public_view

        started = time.perf_counter()
        url = urlparse(self.path)
        route = self._job_route(url.path)
        if route is None or route[1]:
            self._reject_method()
            return
        job_id = route[0]
        jobs = self._jobs_or_none()
        if jobs is None:
            self._jobs_unavailable("job_cancel", started)
            return
        record = jobs.cancel(job_id)
        if record is None:
            self._send_json(
                {"error": "NotFound", "message": f"no job {job_id}",
                 "status": 404}, 404)
            self._observe("job_cancel", 404, started)
            return
        self._send_json(public_view(record), 200)
        self._observe("job_cancel", 200, started)

    def _handle_job_events(self, job_id: str, query: str,
                           started: float) -> None:
        from .jobs import TERMINAL_STATUSES

        jobs = self._jobs_or_none()
        if jobs is None:
            self._jobs_unavailable("job_events", started)
            return
        params = parse_qs(query)
        try:
            from_round = int(params.get("from_round", ["0"])[0])
        except ValueError:
            self._send_json(error_envelope(
                ValueError("from_round must be an integer"), 400), 400)
            self._observe("job_events", 400, started)
            return
        sse = params.get("format", ["sse"])[0] != "ndjson"
        record = jobs.status(job_id)   # adoption hook: may resume the job
        if record is None:
            self._send_json(
                {"error": "NotFound", "message": f"no job {job_id}",
                 "status": 404}, 404)
            self._observe("job_events", 404, started)
            return

        # The stream has no Content-Length; it ends when the final
        # event is written and the connection closes (ndjson mode uses
        # chunked framing instead, for keep-alive-minded consumers).
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/event-stream" if sse
                         else "application/x-ndjson")
        self.send_header("Cache-Control", "no-cache")
        if sse:
            self.send_header("Connection", "close")
        else:
            self.send_header("Transfer-Encoding", "chunked")
            self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True

        last = from_round
        final_deadline: float | None = None
        try:
            while True:
                done = False
                for event in jobs.events(job_id, from_round=last):
                    if event.get("final"):
                        self._write_frame(event, sse)
                        done = True
                        break
                    last = max(last, int(event.get("round", 0)))
                    self._write_frame(event, sse)
                if done:
                    break
                record = jobs.store.get(job_id)
                if record is None:
                    break   # deleted underneath us; EOF ends the stream
                if record.get("status") in TERMINAL_STATUSES:
                    # Terminal record but no final event line yet: give
                    # the writer a moment, then synthesize one.
                    now = time.monotonic()
                    if final_deadline is None:
                        final_deadline = now + _FINAL_EVENT_GRACE
                    elif now > final_deadline:
                        self._write_frame(
                            {"job_id": job_id, "final": True,
                             "status": record.get("status"),
                             "round": record.get("rounds", 0)}, sse)
                        break
                time.sleep(_EVENT_POLL_SECONDS)
            if not sse:
                self.wfile.write(b"0\r\n\r\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass   # client went away mid-stream; nothing to answer
        self._observe("job_events", 200, started)

    def _write_frame(self, event: dict[str, Any], sse: bool) -> None:
        data = json.dumps(event, sort_keys=True)
        if sse:
            name = "done" if event.get("final") else "round"
            frame = (f"id: {event.get('round', 0)}\n"
                     f"event: {name}\ndata: {data}\n\n").encode("utf-8")
            self.wfile.write(frame)
        else:
            line = (data + "\n").encode("utf-8")
            self.wfile.write(f"{len(line):x}\r\n".encode("ascii")
                             + line + b"\r\n")
        self.wfile.flush()

    def _handle_post(self) -> None:
        started = time.perf_counter()
        url = urlparse(self.path)
        if url.path == _JOBS_PREFIX:
            self._handle_job_submit(started)
            return
        if self._job_route(url.path) is not None:
            self._reject_method()
            return
        kind = _POST_ROUTES.get(url.path)
        if kind is None:
            self._reject_method()
            return
        try:
            body = self._read_body()
        except (ValueError, json.JSONDecodeError) as error:
            self._send_json(error_envelope(error, status=400), 400)
            self._observe(kind, 400, started)
            return

        engine = self.server.engine
        if isinstance(body, list):
            if len(body) > _MAX_BATCH:
                envelope = error_envelope(
                    ValueError(f"batch over {_MAX_BATCH} requests"), 400)
                self._send_json(envelope, 400)
                self._observe(kind, 400, started)
                return
            results = engine.handle_batch([(kind, item) for item in body])
            self._send_json(results, 200)
            self._observe(kind, 200, started)
            return

        result = engine.handle(kind, body)
        status = result.get("status", 200) if "error" in result else 200
        self._send_json(result, status)
        self._observe(kind, status, started)


class PredictionServer(ThreadingMixIn, HTTPServer):
    """A threaded HTTP server bound to one :class:`PredictionEngine`.

    ``shard_of`` is an optional ``"index/count"`` identity label for
    sharded deployments; it shows up in ``/healthz`` and on a metrics
    gauge so the router (and operators) can tell shards apart.
    """

    daemon_threads = True
    # SO_REUSEADDR: a restarted (or re-run test) server must be able to
    # rebind a port whose previous owner's sockets are in TIME_WAIT.
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: PredictionEngine,
        *,
        tracing: bool = True,
        slow_request_seconds: float = 1.0,
        shard_of: str | None = None,
        slo: Any = None,
    ):
        super().__init__(address, _Handler)
        self.engine = engine
        self.tracing = tracing
        self.slow_request_seconds = slow_request_seconds
        self.shard_of = shard_of
        #: Optional repro.obs.slo.SloTracker fed by every request.
        self.slo = slo
        if shard_of:
            index, _, count = shard_of.partition("/")
            gauge = engine.metrics.gauge(
                "repro_shard_identity",
                "This backend's shard index (label carries index/count).")
            gauge.set(float(index) if index.isdigit() else 0.0,
                      shard=shard_of)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> "PredictionServer":
        """Serve on a daemon thread (used by tests and the smoke job)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-service", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.engine.close()


def make_server(
    engine: PredictionEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    tracing: bool = True,
    slow_request_seconds: float = 1.0,
    shard_of: str | None = None,
    slo: Any = None,
) -> PredictionServer:
    """Bind (``port=0`` picks an ephemeral port) without serving yet."""
    return PredictionServer(
        (host, port), engine,
        tracing=tracing, slow_request_seconds=slow_request_seconds,
        shard_of=shard_of, slo=slo,
    )


def run_server(
    engine: PredictionEngine,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    tracing: bool = True,
    slow_request_seconds: float = 1.0,
    shard_of: str | None = None,
    slo: Any = None,
) -> None:
    """Blocking serve loop with clean Ctrl-C/SIGTERM shutdown (the CLI path)."""
    configure_json_logging()
    # Fork workers before binding so they never inherit the listening
    # socket; otherwise an unclean parent death leaves orphans holding
    # the port open and silently swallowing connections.
    engine.start_workers()
    server = make_server(engine, host, port,
                         tracing=tracing,
                         slow_request_seconds=slow_request_seconds,
                         shard_of=shard_of, slo=slo)

    def _terminate(signum, frame):
        raise SystemExit(128 + signum)

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass  # not the main thread; Ctrl-C handling still applies
    log.info("serving on %s:%d", host, server.port)
    # flush: ephemeral-port deployments (port=0) read this line through a
    # pipe to learn the bound port; block-buffered stdout would deadlock.
    print(f"repro service listening on http://{host}:{server.port}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        engine.close()
