"""Async restructure jobs: priority queue, runners, checkpoints, adoption.

A :class:`JobManager` turns the engine's long-running restructure
search into background work:

* ``submit`` validates a :class:`RestructureJobRequest`, writes a
  ``queued`` record to the :class:`~repro.service.jobstore.JobStore`,
  and returns immediately with a job id;
* a fixed set of runner threads -- ``max(1, engine.workers - 1)`` by
  default, mirroring the engine's heavy-request slot cap so job
  searches can never starve light traffic of pool workers -- drains a
  priority heap and drives each search through
  :meth:`PredictionEngine.run_restructure_job`;
* every beam round boundary appends a best-so-far event, persists a
  versioned checkpoint, refreshes the heartbeat, and re-reads the
  record -- which is simultaneously the cooperative *cancellation*
  point (``cancel_requested``) and the ownership *fence* (a runner
  that lost its job to an adopter stops instead of racing it);
* any shard pointed at the same store directory **adopts** a job whose
  owner's heartbeat has gone stale -- the router's affinity walk sends
  status/events requests for a dead shard's jobs to its ring
  successor, whose manager re-queues the job and resumes it from the
  last checkpoint.  Checkpoint resume is bit-identical to an
  uninterrupted search (``transform/search.py``), so a SIGKILL costs
  at most one round of work and never changes the answer.

Job ids embed the program digest (``<digest>.<nonce>``) so the router
can extract the ring key from the id alone and route job reads to the
same shard that owns the program's cache slice.
"""

from __future__ import annotations

import heapq
import logging
import os
import threading
import time
import uuid
from typing import Any, Mapping

from ..ir.digest import program_digest
from ..ir.parser import parse_program
from ..obs import Tracer, current_context, get_request_id, trace_span
from .engine import (
    PredictionEngine,
    _cache_key,
    _canonical_mapping,
    _CLIENT_ERRORS,
    _machine_fingerprint,
)
from .jobstore import JobStore, valid_job_id
from .metrics import MetricsRegistry
from .protocol import error_envelope, request_from_dict

__all__ = [
    "JOBS_PREFIX", "JobManager", "TERMINAL_STATUSES", "job_affinity_key",
    "parse_job_path", "public_view",
]

log = logging.getLogger("repro.service.jobs")

TERMINAL_STATUSES = frozenset({"done", "error", "cancelled"})

#: URL prefix shared by the server's job routes and the router's
#: affinity forwarding.
JOBS_PREFIX = "/restructure/jobs"

#: Record fields exposed on the wire (everything else -- request
#: payload, timestamps, cancel flag -- is subsystem-internal).
_PUBLIC_FIELDS = (
    "job_id", "status", "digest", "machine", "rounds", "priority",
    "adopted", "owner", "best_sequence", "best_cost", "result", "error",
)


def job_affinity_key(job_id: str) -> str:
    """The ring key embedded in a job id (its program-digest prefix)."""
    return job_id.partition(".")[0]


def parse_job_path(path: str) -> tuple[str, bool] | None:
    """``/restructure/jobs/<id>[/events]`` -> ``(id, is_events)``."""
    if not path.startswith(JOBS_PREFIX + "/"):
        return None
    rest = path[len(JOBS_PREFIX) + 1:]
    if rest.endswith("/events"):
        return rest[: -len("/events")], True
    return rest, False


def public_view(record: Mapping[str, Any]) -> dict[str, Any]:
    """Project a store record onto the :class:`JobStatusResponse` schema."""
    return {name: record.get(name) for name in _PUBLIC_FIELDS}


def _params_key(request) -> str:
    """Everything besides the program that shapes the search trajectory.

    A checkpoint taken under one parameter set must never seed a search
    under another -- resuming a ``beam_width=4`` frontier into a
    ``beam_width=1`` search would be neither run's answer.
    """
    return "|".join((
        request.machine,
        f"wl={_canonical_mapping(request.workload)}",
        f"dom={_canonical_mapping(request.domain)}",
        f"depth={request.depth}", f"nodes={request.max_nodes}",
        f"beam={request.beam_width}",
    ))


class JobManager:
    """Own the job queue and runner threads for one engine process."""

    def __init__(
        self,
        engine: PredictionEngine,
        store: JobStore,
        *,
        slots: int | None = None,
        stale_after: float = 5.0,
        owner: str | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.engine = engine
        self.store = store
        self.slots = (slots if slots and slots > 0
                      else max(1, engine.workers - 1))
        self.stale_after = stale_after
        self.owner = owner or f"pid:{os.getpid()}.{uuid.uuid4().hex[:6]}"
        self.metrics = metrics if metrics is not None else engine.metrics
        self._queue: list[tuple[int, int, str]] = []
        self._seq = 0
        self._cond = threading.Condition()
        self._local: set[str] = set()    # queued or running in this process
        self._running: set[str] = set()
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._events = self.metrics.counter(
            "repro_jobs_total", "Job lifecycle events by type.")
        self._rounds_counter = self.metrics.counter(
            "repro_job_rounds_total", "Search rounds executed by job runners.")
        self._round_seconds = self.metrics.histogram(
            "repro_job_round_seconds", "Wall time per job search round.")

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "JobManager":
        if self._threads:
            return self
        for index in range(self.slots):
            thread = threading.Thread(
                target=self._runner, name=f"repro-job-runner-{index}",
                daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def close(self) -> None:
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads = []

    # -- submission -----------------------------------------------------
    def submit(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Validate, persist, and enqueue; returns the full store record.

        Raises the usual client-error types on an invalid payload (the
        server maps them to a 400 envelope at the boundary).
        """
        request = request_from_dict("restructure_job", payload)
        digest = program_digest(parse_program(request.source))
        _machine_fingerprint(request.machine)   # unknown machine -> KeyError
        job_id = f"{digest}.{uuid.uuid4().hex[:8]}"
        # Capture the submitting request's trace context; the runner
        # thread (possibly on another shard, after adoption) seeds its
        # tracer from it so the whole job joins the submit trace.
        ctx = current_context()
        trace_block = None
        if ctx is not None:
            trace_block = {"trace_id": ctx.trace_id,
                           "parent_id": ctx.span_id,
                           "request_id": get_request_id()}
        now = time.time()
        with trace_span("job.submit", job_id=job_id, digest=digest,
                        priority=request.priority):
            record = self.store.create(job_id, {
                "status": "queued", "digest": digest,
                "machine": request.machine, "priority": request.priority,
                "request": dict(payload),
                "trace": trace_block,
                "owner": self.owner, "heartbeat": now, "created": now,
                "rounds": 0, "adopted": 0, "cancel_requested": False,
                "best_sequence": None, "best_cost": None,
                "result": None, "error": None,
            })
            self._enqueue(job_id, request.priority)
        self._events.inc(event="submitted")
        return record

    def _enqueue(self, job_id: str, priority: int) -> None:
        with self._cond:
            if job_id in self._local:
                return
            self._local.add(job_id)
            heapq.heappush(self._queue, (-priority, self._seq, job_id))
            self._seq += 1
            self._cond.notify()

    # -- reads (with adoption) ------------------------------------------
    def status(self, job_id: str) -> dict[str, Any] | None:
        """The job's record, adopting it first if its owner went quiet."""
        if not valid_job_id(job_id):
            return None
        record = self.store.get(job_id)
        if record is None:
            return None
        return self._maybe_adopt(record)

    def events(self, job_id: str, from_round: int = 0) -> list[dict[str, Any]]:
        if not valid_job_id(job_id):
            return []
        return self.store.events(job_id, from_round=from_round)

    def _maybe_adopt(self, record: dict[str, Any]) -> dict[str, Any]:
        """Re-queue a job whose owning shard stopped heartbeating.

        The router walks the ring on failover, so a status or events
        request for a dead shard's job lands here -- on the successor.
        Jobs queued or running in *this* process are never adopted
        (their heartbeat only moves at round boundaries); a briefly
        double-owned job is resolved by the per-round owner fence.
        """
        job_id = record["job_id"]
        if record.get("status") in TERMINAL_STATUSES:
            return record
        with self._cond:
            if job_id in self._local:
                return record
        if time.time() - float(record.get("heartbeat") or 0) < self.stale_after:
            return record
        adopted = self.store.update(
            job_id, owner=self.owner, status="queued",
            heartbeat=time.time(), adopted=int(record.get("adopted", 0)) + 1)
        if adopted is None:
            return record
        self._enqueue(job_id, int(adopted.get("priority") or 0))
        self._events.inc(event="adopted")
        log.info("adopted stale job", extra={"fields": {
            "job_id": job_id, "owner": self.owner,
            "rounds": adopted.get("rounds", 0)}})
        return adopted

    # -- cancellation ---------------------------------------------------
    def cancel(self, job_id: str) -> dict[str, Any] | None:
        """Request cooperative cancellation; returns the updated record.

        A queued job is finalized immediately; a running one stops at
        its next round boundary (the runner reads ``cancel_requested``
        when it refreshes the heartbeat).  Cancelling a terminal job is
        a no-op that returns the record as-is.
        """
        if not valid_job_id(job_id):
            return None
        record = self.store.get(job_id)
        if record is None:
            return None
        if record.get("status") in TERMINAL_STATUSES:
            return record
        record = self.store.update(job_id, cancel_requested=True)
        if record is None:
            return None
        with self._cond:
            queued_here = (job_id in self._local
                           and job_id not in self._running)
        if queued_here or record.get("status") == "queued":
            return self._finish_cancelled(job_id)
        return record

    # -- runner ---------------------------------------------------------
    def _runner(self) -> None:
        while not self._stop.is_set():
            with self._cond:
                while not self._queue and not self._stop.is_set():
                    self._cond.wait(timeout=0.5)
                if self._stop.is_set():
                    return
                _, _, job_id = heapq.heappop(self._queue)
                self._running.add(job_id)
            try:
                self._run_job(job_id)
            except Exception:  # noqa: BLE001 -- a runner must never die
                log.exception("job runner crashed",
                              extra={"fields": {"job_id": job_id}})
                self._finish_error(job_id, error_envelope(
                    RuntimeError("job runner crashed"), status=500))
            finally:
                with self._cond:
                    self._running.discard(job_id)
                    self._local.discard(job_id)

    def _run_job(self, job_id: str) -> None:
        record = self.store.get(job_id)
        if record is None or record.get("status") in TERMINAL_STATUSES:
            return
        if record.get("owner") != self.owner:
            return   # adopted away while queued here; let the adopter run it
        trace_info = record.get("trace") or {}
        if not trace_info.get("trace_id"):
            # Untraced submit: run with zero tracing machinery -- no
            # tracer, and every trace_span below is the shared no-op.
            self._execute_job(job_id, record, trace_info)
            return
        tracer = Tracer(metrics=self.metrics,
                        trace_id=trace_info["trace_id"],
                        remote_parent_id=trace_info.get("parent_id"))
        try:
            with tracer.activate():
                with trace_span("job.run", job_id=job_id,
                                owner=self.owner,
                                resumed_rounds=int(record.get("rounds") or 0)):
                    self._execute_job(job_id, record, trace_info)
        finally:
            # Deposit under the submitting request id (what
            # /debug/trace stitches on) and the job id (handy when
            # only the job id is known).
            spans = tracer.export()
            request_id = trace_info.get("request_id")
            if request_id:
                self.engine.traces.put(request_id, spans)
            if request_id != job_id:
                self.engine.traces.put(job_id, spans)

    @staticmethod
    def _stamp(event: dict[str, Any],
               trace_info: Mapping[str, Any]) -> dict[str, Any]:
        """Stamp SSE/ndjson job events with their trace identity."""
        if trace_info.get("request_id"):
            event["request_id"] = trace_info["request_id"]
        if trace_info.get("trace_id"):
            event["trace_id"] = trace_info["trace_id"]
        return event

    def _execute_job(self, job_id: str, record: dict[str, Any],
                     trace_info: Mapping[str, Any]) -> None:
        if record.get("cancel_requested"):
            self._finish_cancelled(job_id)
            return
        try:
            request = request_from_dict(
                "restructure_job", record.get("request") or {})
            restructure = request.to_restructure()
            digest = record["digest"]
            fingerprint = _machine_fingerprint(request.machine)
        except _CLIENT_ERRORS as error:
            self._finish_error(job_id, error_envelope(error, status=400))
            return
        params = _params_key(restructure)
        resume_from = None
        loaded = self.store.load_checkpoint(
            job_id, digest=digest, fingerprint=fingerprint, params_key=params)
        if loaded is not None:
            resumed_rounds, resume_from = loaded
            self._events.inc(event="resumed")
            log.info("resuming job from checkpoint", extra={"fields": {
                "job_id": job_id, "rounds": resumed_rounds}})
        self.store.update(job_id, status="running", heartbeat=time.time())

        stop_reason: list[str | None] = [None]
        round_started = [time.perf_counter()]

        def on_round(progress) -> bool:
            now = time.perf_counter()
            self._rounds_counter.inc()
            round_seconds = now - round_started[0]
            self._round_seconds.observe(round_seconds)
            round_started[0] = now
            with trace_span("job.round", job_id=job_id,
                            round=progress.round,
                            expanded=progress.expanded,
                            round_seconds=round(round_seconds, 6)):
                self.store.append_event(job_id, self._stamp({
                    "job_id": job_id, "round": progress.round,
                    "best_sequence": progress.best_sequence,
                    "best_cost": str(progress.best_cost),
                    "expanded": progress.expanded,
                    "frontier_size": progress.frontier_size,
                }, trace_info))
                with trace_span("job.checkpoint", job_id=job_id,
                                round=progress.round):
                    self.store.save_checkpoint(
                        job_id, digest=digest, fingerprint=fingerprint,
                        params_key=params, rounds=progress.round,
                        state=progress.checkpoint)
                current = self.store.update(
                    job_id, rounds=progress.round, heartbeat=time.time(),
                    best_sequence=progress.best_sequence,
                    best_cost=str(progress.best_cost))
            # The freshly-read record is authoritative: another shard
            # may have adopted the job (owner fence), or a cancel may
            # have arrived (possibly via a different shard).
            if current is None or current.get("owner") != self.owner:
                stop_reason[0] = "fenced"
                return False
            if current.get("cancel_requested"):
                stop_reason[0] = "cancelled"
                return False
            return True

        result = self.engine.run_restructure_job(
            restructure, on_round=on_round, resume_from=resume_from)

        if stop_reason[0] == "fenced":
            self._events.inc(event="fenced")
            log.info("job fenced off (adopted elsewhere)",
                     extra={"fields": {"job_id": job_id}})
            return
        if stop_reason[0] == "cancelled":
            self._finish_cancelled(job_id)
            return
        if "error" in result:
            self._finish_error(job_id, result)
            return
        # Success: the job's answer is exactly what the synchronous
        # endpoint would have computed, so warm the result cache with it.
        try:
            self.engine.cache.put(_cache_key("restructure", restructure),
                                  result)
        except Exception:  # noqa: BLE001 -- cache warming is best-effort
            pass
        with trace_span("job.finish", job_id=job_id, status="done"):
            record = self.store.update(
                job_id, status="done", result=result,
                best_sequence=result.get("sequence"),
                best_cost=result.get("cost"),
                heartbeat=time.time(), finished=time.time())
            self.store.append_event(job_id, self._stamp({
                "job_id": job_id, "final": True, "status": "done",
                "round": (record or {}).get("rounds", 0),
                "best_sequence": result.get("sequence"),
                "best_cost": result.get("cost"),
            }, trace_info))
            self.store.drop_checkpoint(job_id)
        self._events.inc(event="completed")

    # -- terminal transitions -------------------------------------------
    def _finish_cancelled(self, job_id: str) -> dict[str, Any] | None:
        with trace_span("job.finish", job_id=job_id, status="cancelled"):
            record = self.store.update(
                job_id, status="cancelled", heartbeat=time.time(),
                finished=time.time())
            self.store.append_event(job_id, self._stamp({
                "job_id": job_id, "final": True, "status": "cancelled",
                "round": (record or {}).get("rounds", 0),
            }, (record or {}).get("trace") or {}))
            self.store.drop_checkpoint(job_id)
        self._events.inc(event="cancelled")
        return record

    def _finish_error(self, job_id: str, envelope: dict[str, Any]) -> None:
        with trace_span("job.finish", job_id=job_id, status="error"):
            record = self.store.update(
                job_id, status="error", error=envelope,
                heartbeat=time.time(), finished=time.time())
            self.store.append_event(job_id, self._stamp({
                "job_id": job_id, "final": True, "status": "error",
                "round": (record or {}).get("rounds", 0),
                "error": envelope.get("error"),
                "message": envelope.get("message"),
            }, (record or {}).get("trace") or {}))
            self.store.drop_checkpoint(job_id)
        self._events.inc(event="failed")

    # -- observability --------------------------------------------------
    def export_metrics(self) -> None:
        """Refresh the job gauges (called at /metrics scrape time)."""
        with self._cond:
            queued = len(self._queue)
            running = len(self._running)
        self.metrics.gauge(
            "repro_jobs_queued",
            "Jobs waiting for a runner slot (this process).").set(queued)
        self.metrics.gauge(
            "repro_jobs_running",
            "Jobs currently executing (this process).").set(running)
        self.metrics.gauge(
            "repro_job_slots", "Configured job runner slots.").set(self.slots)
