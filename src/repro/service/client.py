"""Client library for the prediction service and shard router.

Callers were hand-rolling ``urllib`` against the JSON wire format;
this module gives them two first-class clients speaking the exact
:mod:`repro.service.protocol` schema:

* :class:`ReproClient` -- synchronous, with a bounded pool of
  keep-alive ``http.client`` connections shared across threads;
* :class:`AsyncReproClient` -- the same surface on ``asyncio``,
  built on ``asyncio.open_connection`` (no third-party HTTP stack),
  with its own keep-alive connection pool.

Both return the typed response dataclasses (:class:`PredictResponse`
et al.) and raise typed errors instead of bare ``HTTPError``:

* :class:`TransportError` -- could not reach the service (connection
  refused, reset, timed out) after the retry budget;
* :class:`BadRequestError` -- the service rejected the request (4xx
  envelope: schema violation, parse error, unknown machine);
* :class:`ServerError` -- the service failed internally (5xx envelope).

Every request carries an ``X-Request-Id`` (caller-supplied or
generated), the server echoes it, and both the errors and the client's
``last_request_id`` expose it, so a failing call can be matched to the
server's JSON logs and traces without guesswork.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import queue
import socket
import threading
import time
from typing import Any, Iterator, Mapping, Sequence
from urllib.parse import urlsplit

from ..obs import new_request_id
from .protocol import (
    CompareResponse,
    JobStatusResponse,
    KernelsResponse,
    PredictResponse,
    RestructureResponse,
    SweepResponse,
    response_from_dict,
)

__all__ = [
    "ReproClientError", "TransportError", "RemoteError",
    "BadRequestError", "ServerError",
    "ReproClient", "AsyncReproClient", "HTTPConnectionPool",
]


# ----------------------------------------------------------------------
# typed errors


class ReproClientError(Exception):
    """Base class for every error a repro client can raise."""


class TransportError(ReproClientError):
    """The service could not be reached (or the connection died mid-call)."""

    def __init__(self, message: str, *, request_id: str | None = None):
        super().__init__(message)
        self.request_id = request_id


class RemoteError(ReproClientError):
    """A non-2xx response; carries the service's error envelope."""

    def __init__(self, envelope: Mapping[str, Any], *,
                 request_id: str | None = None):
        self.error = str(envelope.get("error", "Error"))
        self.message = str(envelope.get("message", ""))
        self.status = int(envelope.get("status", 500))
        self.envelope = dict(envelope)
        self.request_id = request_id
        super().__init__(f"{self.error} ({self.status}): {self.message}")


class BadRequestError(RemoteError):
    """4xx: the request itself is invalid; retrying cannot help."""


class ServerError(RemoteError):
    """5xx: the service failed; a retry (or another shard) may succeed."""


def remote_error(envelope: Mapping[str, Any], *,
                 request_id: str | None = None) -> RemoteError:
    """Envelope dict -> the right typed error class."""
    status = int(envelope.get("status", 500))
    cls = BadRequestError if 400 <= status < 500 else ServerError
    return cls(envelope, request_id=request_id)


# ----------------------------------------------------------------------
# request payload builders (shared by both clients)


def _predict_payload(source: str, machine: str, backend: str,
                     include_memory: bool,
                     bindings: Mapping[str, Any] | None,
                     trace: bool, fidelity: str = "exact",
                     tolerance: float | None = None) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "source": source, "machine": machine, "backend": backend,
        "include_memory": include_memory,
    }
    if bindings:
        payload["bindings"] = {k: str(v) for k, v in bindings.items()}
    if trace:
        payload["trace"] = True
    # Sent only when non-default, so requests from older client builds
    # and these are byte-identical on the exact tier.
    if fidelity != "exact":
        payload["fidelity"] = fidelity
    if tolerance is not None:
        payload["tolerance"] = tolerance
    return payload


def _compare_payload(first: str, second: str, machine: str,
                     domain: Mapping[str, Any] | None,
                     trace: bool) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "first": first, "second": second, "machine": machine,
    }
    if domain:
        payload["domain"] = {k: list(v) for k, v in domain.items()}
    if trace:
        payload["trace"] = True
    return payload


def _restructure_payload(source: str, machine: str,
                         workload: Mapping[str, Any] | None,
                         domain: Mapping[str, Any] | None,
                         depth: int, max_nodes: int, beam_width: int,
                         trace: bool) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "source": source, "machine": machine, "depth": depth,
        "max_nodes": max_nodes, "beam_width": beam_width,
    }
    if workload:
        payload["workload"] = {k: str(v) for k, v in workload.items()}
    if domain:
        payload["domain"] = {k: list(v) for k, v in domain.items()}
    if trace:
        payload["trace"] = True
    return payload


def _sweep_payload(source: str, machine: str,
                   widths: Sequence[int] | None,
                   bindings: Mapping[str, Any] | None,
                   branch_miss_rate: float, cache_miss_rate: float,
                   trace: bool) -> dict[str, Any]:
    payload: dict[str, Any] = {"source": source, "machine": machine}
    if widths:
        payload["widths"] = [int(w) for w in widths]
    if bindings:
        payload["bindings"] = {k: str(v) for k, v in bindings.items()}
    if branch_miss_rate:
        payload["branch_miss_rate"] = branch_miss_rate
    if cache_miss_rate:
        payload["cache_miss_rate"] = cache_miss_rate
    if trace:
        payload["trace"] = True
    return payload


def _decode_single(kind: str, status: int, body: bytes,
                   request_id: str | None):
    data = json.loads(body.decode("utf-8"))
    if isinstance(data, Mapping) and "error" in data:
        raise remote_error(data, request_id=request_id)
    if status >= 400:
        raise remote_error(
            {"error": "HTTPError", "message": f"status {status}",
             "status": status},
            request_id=request_id)
    return response_from_dict(kind, data)


def _decode_batch(kinds: Sequence[str], status: int, body: bytes,
                  request_id: str | None) -> list[Any]:
    data = json.loads(body.decode("utf-8"))
    if isinstance(data, Mapping) and "error" in data:
        raise remote_error(data, request_id=request_id)
    if not isinstance(data, list) or len(data) != len(kinds):
        raise TransportError(
            f"batch response shape mismatch: {len(kinds)} requests, "
            f"{len(data) if isinstance(data, list) else type(data).__name__} "
            "responses", request_id=request_id)
    out: list[Any] = []
    for kind, item in zip(kinds, data):
        if isinstance(item, Mapping) and "error" in item:
            out.append(remote_error(item, request_id=request_id))
        else:
            out.append(response_from_dict(kind, item))
    return out


def _decode_job(status: int, body: bytes,
                request_id: str | None) -> "JobStatusResponse":
    """Decode a job record, keyed on the HTTP status alone.

    Job records legitimately carry an ``error`` field (a failed job's
    message, or null), so the ``"error" in data`` envelope sniffing in
    :func:`_decode_single` would misfire here.
    """
    data = json.loads(body.decode("utf-8"))
    if status >= 400:
        raise remote_error(data, request_id=request_id)
    return response_from_dict("job_status", data)


#: Wire path of the async-job endpoints (mirrors
#: :data:`repro.service.jobs.JOBS_PREFIX`; duplicated here so the
#: client library never imports the server-side job machinery).
_JOBS_PATH = "/restructure/jobs"

#: Job statuses after which no further events will ever arrive.
_TERMINAL = ("done", "error", "cancelled")


def _job_payload(source: str, machine: str,
                 workload: Mapping[str, Any] | None,
                 domain: Mapping[str, Any] | None,
                 depth: int, max_nodes: int, beam_width: int,
                 priority: int) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "source": source, "machine": machine, "depth": depth,
        "max_nodes": max_nodes, "beam_width": beam_width,
    }
    if workload:
        payload["workload"] = {k: str(v) for k, v in workload.items()}
    if domain:
        payload["domain"] = {k: list(v) for k, v in domain.items()}
    if priority:
        payload["priority"] = priority
    return payload


def _split_base_url(base_url: str) -> tuple[str, int]:
    parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
    if parts.scheme not in ("", "http"):
        raise ValueError(f"only http:// URLs are supported, got {base_url!r}")
    host = parts.hostname or "127.0.0.1"
    port = parts.port if parts.port is not None else 80
    return host, port


# ----------------------------------------------------------------------
# sync client


#: Connection-level failures that justify one retry on a *fresh*
#: connection: a pooled keep-alive socket may have been closed by the
#: server (idle timeout, restart) between our requests.
_STALE_CONNECTION_ERRORS = (
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
)


class HTTPConnectionPool:
    """A bounded pool of keep-alive HTTP connections to one host.

    ``acquire`` hands out an idle connection or opens a fresh one;
    ``release`` returns it for reuse (up to ``size`` idle connections
    are kept; extras are closed).  ``discard`` closes a connection that
    failed mid-request so it is never reused.  Thread-safe; used by
    both :class:`ReproClient` and the shard router's forwarder.
    """

    def __init__(self, host: str, port: int, *, size: int = 4,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.size = size
        self.timeout = timeout
        self._idle: queue.LifoQueue = queue.LifoQueue(maxsize=size)
        self._closed = False

    def acquire(self) -> http.client.HTTPConnection:
        try:
            return self._idle.get_nowait()
        except queue.Empty:
            return http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)

    def release(self, connection: http.client.HTTPConnection) -> None:
        if self._closed:
            connection.close()
            return
        try:
            self._idle.put_nowait(connection)
        except queue.Full:
            connection.close()

    def discard(self, connection: http.client.HTTPConnection) -> None:
        connection.close()

    def close(self) -> None:
        self._closed = True
        while True:
            try:
                self._idle.get_nowait().close()
            except queue.Empty:
                return

    def request(self, method: str, path: str, body: bytes | None,
                headers: Mapping[str, str]) -> tuple[int, dict[str, str], bytes]:
        """One pooled request; returns ``(status, headers, body)``.

        Retries exactly once on a stale-connection failure, and only
        when the failure happened on a *reused* connection -- a fresh
        connection failing the same way is a real transport error.
        """
        for attempt in (0, 1):
            connection = self.acquire()
            fresh = connection.sock is None
            try:
                connection.request(method, path, body=body,
                                   headers=dict(headers))
                response = connection.getresponse()
                payload = response.read()
                response_headers = {k.lower(): v
                                    for k, v in response.getheaders()}
                if response_headers.get("connection", "").lower() == "close":
                    self.discard(connection)
                else:
                    self.release(connection)
                return response.status, response_headers, payload
            except _STALE_CONNECTION_ERRORS:
                self.discard(connection)
                if fresh or attempt == 1:
                    raise
            except Exception:
                self.discard(connection)
                raise
        raise AssertionError("unreachable")


class ReproClient:
    """Synchronous client with pooled keep-alive connections.

    ::

        with ReproClient("http://127.0.0.1:8080") as client:
            response = client.predict(saxpy_source, bindings={"n": 100})
            print(response.cost, response.cycles)   # "3*n + 8" "308"

    Point it at a single server or at a shard router -- the wire
    format is identical.  Safe to share across threads.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 pool_size: int = 4, retries: int = 1):
        self.base_url = base_url
        host, port = _split_base_url(base_url)
        self._pool = HTTPConnectionPool(host, port, size=pool_size,
                                        timeout=timeout)
        self.retries = max(0, retries)
        self.last_request_id: str | None = None

    # -- plumbing -------------------------------------------------------
    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _call(self, method: str, path: str, payload: Any,
              request_id: str | None) -> tuple[int, bytes, str]:
        request_id = request_id or new_request_id()
        self.last_request_id = request_id
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        headers = {"X-Request-Id": request_id}
        if body is not None:
            headers["Content-Type"] = "application/json"
        last: Exception | None = None
        for _ in range(self.retries + 1):
            try:
                status, _, response_body = self._pool.request(
                    method, path, body, headers)
                return status, response_body, request_id
            except (ConnectionError, socket.timeout, TimeoutError,
                    OSError, http.client.HTTPException) as error:
                last = error
        raise TransportError(
            f"{method} {self.base_url}{path} failed: {last}",
            request_id=request_id) from last

    # -- endpoints ------------------------------------------------------
    def predict(self, source: str, *, machine: str = "power",
                backend: str = "aggressive", include_memory: bool = False,
                bindings: Mapping[str, Any] | None = None,
                trace: bool = False, fidelity: str = "exact",
                tolerance: float | None = None,
                request_id: str | None = None) -> PredictResponse:
        payload = _predict_payload(source, machine, backend,
                                   include_memory, bindings, trace,
                                   fidelity, tolerance)
        status, body, rid = self._call("POST", "/predict", payload, request_id)
        return _decode_single("predict", status, body, rid)

    def compare(self, first: str, second: str, *, machine: str = "power",
                domain: Mapping[str, Any] | None = None, trace: bool = False,
                request_id: str | None = None) -> CompareResponse:
        payload = _compare_payload(first, second, machine, domain, trace)
        status, body, rid = self._call("POST", "/compare", payload, request_id)
        return _decode_single("compare", status, body, rid)

    def restructure(self, source: str, *, machine: str = "power",
                    workload: Mapping[str, Any] | None = None,
                    domain: Mapping[str, Any] | None = None,
                    depth: int = 2, max_nodes: int = 200,
                    beam_width: int = 1, trace: bool = False,
                    request_id: str | None = None) -> RestructureResponse:
        payload = _restructure_payload(source, machine, workload, domain,
                                       depth, max_nodes, beam_width, trace)
        status, body, rid = self._call("POST", "/restructure", payload,
                                       request_id)
        return _decode_single("restructure", status, body, rid)

    def sweep(self, source: str, *, machine: str = "power",
              widths: Sequence[int] | None = None,
              bindings: Mapping[str, Any] | None = None,
              branch_miss_rate: float = 0.0,
              cache_miss_rate: float = 0.0,
              trace: bool = False,
              request_id: str | None = None) -> SweepResponse:
        payload = _sweep_payload(source, machine, widths, bindings,
                                 branch_miss_rate, cache_miss_rate, trace)
        status, body, rid = self._call("POST", "/sweep", payload, request_id)
        return _decode_single("sweep", status, body, rid)

    def kernels(self, machine: str = "power", *,
                request_id: str | None = None) -> KernelsResponse:
        status, body, rid = self._call(
            "GET", f"/kernels?machine={machine}", None, request_id)
        return _decode_single("kernels", status, body, rid)

    def predict_batch(self, payloads: Sequence[Mapping[str, Any]], *,
                      request_id: str | None = None) -> list[Any]:
        """POST a JSON-array batch to ``/predict``.

        Returns one entry per request *in order*: a
        :class:`PredictResponse` on success, a :class:`RemoteError`
        instance (not raised) for entries the service rejected, so one
        bad request cannot void the batch.
        """
        status, body, rid = self._call("POST", "/predict", list(payloads),
                                       request_id)
        return _decode_batch(["predict"] * len(payloads), status, body, rid)

    def healthz(self) -> dict[str, Any]:
        status, body, rid = self._call("GET", "/healthz", None, None)
        if status != 200:
            raise remote_error(
                json.loads(body.decode("utf-8")), request_id=rid)
        return json.loads(body.decode("utf-8"))

    def metrics(self) -> str:
        status, body, rid = self._call("GET", "/metrics", None, None)
        if status != 200:
            raise TransportError(f"/metrics returned {status}",
                                 request_id=rid)
        return body.decode("utf-8")

    def cluster_metrics(self) -> str:
        """The router's merged cluster exposition (``/metrics/cluster``).

        Only routers serve this path; a plain server answers 404, which
        surfaces as the typed :class:`BadRequestError`.
        """
        status, body, rid = self._call("GET", "/metrics/cluster", None, None)
        if status != 200:
            raise remote_error(
                {"error": "HTTPError",
                 "message": f"/metrics/cluster returned {status}",
                 "status": status}, request_id=rid)
        return body.decode("utf-8")

    def debug_trace(self, request_id: str, *,
                    fmt: str = "chrome") -> dict[str, Any]:
        """Fetch the stitched trace for a recent request id.

        ``fmt="chrome"`` returns a ``chrome://tracing``-loadable object;
        ``fmt="spans"`` the raw span dicts.  404 (trace expired or never
        sampled) raises the typed remote error.
        """
        status, body, rid = self._call(
            "GET", f"/debug/trace/{request_id}?format={fmt}", None, None)
        data = json.loads(body.decode("utf-8"))
        if status != 200:
            raise remote_error(data, request_id=rid)
        return data

    # -- async jobs -----------------------------------------------------
    def submit_restructure(self, source: str, *, machine: str = "power",
                           workload: Mapping[str, Any] | None = None,
                           domain: Mapping[str, Any] | None = None,
                           depth: int = 2, max_nodes: int = 200,
                           beam_width: int = 1, priority: int = 0,
                           request_id: str | None = None) -> JobStatusResponse:
        """Submit an async restructure job; returns the ``queued`` status.

        The job id on the response is the handle for
        :meth:`job_status`, :meth:`iter_events`, :meth:`wait`, and
        :meth:`cancel_job`.
        """
        payload = _job_payload(source, machine, workload, domain,
                               depth, max_nodes, beam_width, priority)
        status, body, rid = self._call("POST", _JOBS_PATH, payload,
                                       request_id)
        return _decode_job(status, body, rid)

    def job_status(self, job_id: str, *,
                   request_id: str | None = None) -> JobStatusResponse:
        status, body, rid = self._call("GET", f"{_JOBS_PATH}/{job_id}",
                                       None, request_id)
        return _decode_job(status, body, rid)

    def cancel_job(self, job_id: str, *,
                   request_id: str | None = None) -> JobStatusResponse:
        status, body, rid = self._call("DELETE", f"{_JOBS_PATH}/{job_id}",
                                       None, request_id)
        return _decode_job(status, body, rid)

    def iter_events(self, job_id: str, *, from_round: int = 0,
                    request_id: str | None = None,
                    ) -> Iterator[dict[str, Any]]:
        """Yield the job's SSE events (rounds then the final event).

        Uses a dedicated connection (a stream pins its socket for the
        job's lifetime, which would starve the pool).  Any transport
        failure -- including the stream ending before the final event,
        the signature of a killed shard or a truncating proxy -- raises
        :class:`TransportError`; resume by calling again with
        ``from_round`` set to the last round seen (or use
        :meth:`follow`, which does exactly that).
        """
        request_id = request_id or new_request_id()
        self.last_request_id = request_id
        path = f"{_JOBS_PATH}/{job_id}/events?from_round={from_round}"
        connection = http.client.HTTPConnection(
            self._pool.host, self._pool.port, timeout=self._pool.timeout)
        try:
            try:
                connection.request("GET", path,
                                   headers={"X-Request-Id": request_id})
                response = connection.getresponse()
            except (ConnectionError, socket.timeout, TimeoutError,
                    OSError, http.client.HTTPException) as error:
                raise TransportError(
                    f"GET {self.base_url}{path} failed: {error}",
                    request_id=request_id) from error
            if response.status != 200:
                body = response.read()
                try:
                    envelope = json.loads(body.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    envelope = {"error": "HTTPError",
                                "message": f"status {response.status}",
                                "status": response.status}
                raise remote_error(envelope, request_id=request_id)
            yield from self._read_sse(response, request_id)
        finally:
            connection.close()

    def _read_sse(self, response: http.client.HTTPResponse,
                  request_id: str) -> Iterator[dict[str, Any]]:
        data_lines: list[str] = []
        while True:
            try:
                raw = response.readline()
            except (ConnectionError, socket.timeout, TimeoutError,
                    OSError, http.client.HTTPException) as error:
                raise TransportError(
                    f"event stream broke mid-read: {error}",
                    request_id=request_id) from error
            if not raw:
                # EOF.  A healthy stream always ends with a final event
                # (yielded below, which returns); reaching EOF here
                # means the server died or a proxy truncated the body.
                raise TransportError(
                    "event stream ended before the final event",
                    request_id=request_id)
            line = raw.decode("utf-8").rstrip("\r\n")
            if line.startswith("data:"):
                data_lines.append(line[len("data:"):].strip())
                continue
            if line == "" and data_lines:
                try:
                    event = json.loads("\n".join(data_lines))
                except json.JSONDecodeError as error:
                    raise TransportError(
                        f"undecodable event frame: {error}",
                        request_id=request_id) from error
                data_lines = []
                yield event
                if event.get("final"):
                    return

    def follow(self, job_id: str, *, from_round: int = 0,
               max_retries: int = 10, poll: float = 0.2,
               request_id: str | None = None,
               ) -> Iterator[dict[str, Any]]:
        """Like :meth:`iter_events`, but survives stream drops.

        On a :class:`TransportError` it re-attaches with ``from_round``
        set past the rounds already yielded -- against a router this
        lands on the ring successor, which adopts the orphaned job and
        resumes it from its checkpoint, so the caller sees every round
        exactly once even across a shard SIGKILL.  One request id is
        minted up front and reused on every re-attach, so the whole
        follow -- across failovers -- is a single thread in the server
        logs and traces.
        """
        request_id = request_id or new_request_id()
        last = from_round
        failures = 0
        while True:
            try:
                for event in self.iter_events(job_id, from_round=last,
                                              request_id=request_id):
                    if not event.get("final"):
                        last = max(last, int(event.get("round", 0)))
                    yield event
                    if event.get("final"):
                        return
                return
            except TransportError:
                failures += 1
                if failures > max_retries:
                    raise
                time.sleep(poll)

    def wait(self, job_id: str, *, timeout: float | None = None,
             poll: float = 0.2) -> JobStatusResponse:
        """Block until the job is terminal; returns its final status.

        Raises the typed remote error if the job *failed*, and
        :class:`TimeoutError` if it is still running at the deadline
        (the job keeps running server-side).
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            response = self.job_status(job_id)
            if response.status in _TERMINAL:
                if response.status == "error":
                    raise remote_error(
                        response.error or
                        {"error": "JobError", "message": "job failed",
                         "status": 500},
                        request_id=self.last_request_id)
                return response
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {response.status} "
                    f"after {timeout}s")
            time.sleep(poll)


# ----------------------------------------------------------------------
# async client


class _AsyncConnection:
    """One keep-alive HTTP/1.1 connection on asyncio streams."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    async def request(self, host: str, method: str, path: str,
                      body: bytes | None,
                      headers: Mapping[str, str]) -> tuple[int, dict[str, str], bytes]:
        lines = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        if body is not None:
            lines.append(f"Content-Length: {len(body)}")
        lines.append("\r\n")
        self.writer.write("\r\n".join(lines).encode("ascii"))
        if body is not None:
            self.writer.write(body)
        await self.writer.drain()

        status_line = await self.reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionResetError(f"bad status line {status_line!r}")
        status = int(parts[1])
        response_headers: dict[str, str] = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", 0))
        payload = await self.reader.readexactly(length) if length else b""
        return status, response_headers, payload

    def close(self) -> None:
        self.writer.close()


class AsyncReproClient:
    """``asyncio`` client with the same surface as :class:`ReproClient`.

    ::

        async with AsyncReproClient("http://127.0.0.1:8080") as client:
            responses = await asyncio.gather(
                *(client.predict(src) for src in sources))

    Connections are pooled per client instance; concurrent calls each
    get their own connection up to ``pool_size``, beyond which extra
    connections are opened and closed per call.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 pool_size: int = 4, retries: int = 1):
        self.base_url = base_url
        self.host, self.port = _split_base_url(base_url)
        self.timeout = timeout
        self.pool_size = pool_size
        self.retries = max(0, retries)
        self.last_request_id: str | None = None
        self._idle: list[_AsyncConnection] = []
        self._lock = threading.Lock()  # pool ops are sync + tiny

    # -- plumbing -------------------------------------------------------
    async def aclose(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()

    async def __aenter__(self) -> "AsyncReproClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def _pop_idle(self) -> _AsyncConnection | None:
        with self._lock:
            return self._idle.pop() if self._idle else None

    def _push_idle(self, connection: _AsyncConnection) -> None:
        with self._lock:
            if len(self._idle) < self.pool_size:
                self._idle.append(connection)
                return
        connection.close()

    async def _connect(self) -> _AsyncConnection:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        return _AsyncConnection(reader, writer)

    async def _call(self, method: str, path: str, payload: Any,
                    request_id: str | None) -> tuple[int, bytes, str]:
        request_id = request_id or new_request_id()
        self.last_request_id = request_id
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        headers = {"X-Request-Id": request_id, "Connection": "keep-alive"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        last: Exception | None = None
        attempts = 0
        while attempts <= self.retries:
            connection = self._pop_idle()
            reused = connection is not None
            try:
                if connection is None:
                    connection = await asyncio.wait_for(
                        self._connect(), self.timeout)
                status, response_headers, response_body = (
                    await asyncio.wait_for(
                        connection.request(self.host, method, path, body,
                                           headers),
                        self.timeout))
                if response_headers.get("connection", "").lower() == "close":
                    connection.close()
                else:
                    self._push_idle(connection)
                return status, response_body, request_id
            except (ConnectionError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError, OSError) as error:
                if connection is not None:
                    connection.close()
                last = error
                # A stale pooled connection earns a free retry (the
                # server may simply have closed an idle socket); a
                # fresh connection failing consumes the retry budget.
                if not reused:
                    attempts += 1
        raise TransportError(
            f"{method} {self.base_url}{path} failed: {last}",
            request_id=request_id) from last

    # -- endpoints ------------------------------------------------------
    async def predict(self, source: str, *, machine: str = "power",
                      backend: str = "aggressive",
                      include_memory: bool = False,
                      bindings: Mapping[str, Any] | None = None,
                      trace: bool = False, fidelity: str = "exact",
                      tolerance: float | None = None,
                      request_id: str | None = None) -> PredictResponse:
        payload = _predict_payload(source, machine, backend,
                                   include_memory, bindings, trace,
                                   fidelity, tolerance)
        status, body, rid = await self._call("POST", "/predict", payload,
                                             request_id)
        return _decode_single("predict", status, body, rid)

    async def compare(self, first: str, second: str, *,
                      machine: str = "power",
                      domain: Mapping[str, Any] | None = None,
                      trace: bool = False,
                      request_id: str | None = None) -> CompareResponse:
        payload = _compare_payload(first, second, machine, domain, trace)
        status, body, rid = await self._call("POST", "/compare", payload,
                                             request_id)
        return _decode_single("compare", status, body, rid)

    async def restructure(self, source: str, *, machine: str = "power",
                          workload: Mapping[str, Any] | None = None,
                          domain: Mapping[str, Any] | None = None,
                          depth: int = 2, max_nodes: int = 200,
                          beam_width: int = 1, trace: bool = False,
                          request_id: str | None = None) -> RestructureResponse:
        payload = _restructure_payload(source, machine, workload, domain,
                                       depth, max_nodes, beam_width, trace)
        status, body, rid = await self._call("POST", "/restructure", payload,
                                             request_id)
        return _decode_single("restructure", status, body, rid)

    async def sweep(self, source: str, *, machine: str = "power",
                    widths: Sequence[int] | None = None,
                    bindings: Mapping[str, Any] | None = None,
                    branch_miss_rate: float = 0.0,
                    cache_miss_rate: float = 0.0,
                    trace: bool = False,
                    request_id: str | None = None) -> SweepResponse:
        payload = _sweep_payload(source, machine, widths, bindings,
                                 branch_miss_rate, cache_miss_rate, trace)
        status, body, rid = await self._call("POST", "/sweep", payload,
                                             request_id)
        return _decode_single("sweep", status, body, rid)

    async def kernels(self, machine: str = "power", *,
                      request_id: str | None = None) -> KernelsResponse:
        status, body, rid = await self._call(
            "GET", f"/kernels?machine={machine}", None, request_id)
        return _decode_single("kernels", status, body, rid)

    async def predict_batch(self, payloads: Sequence[Mapping[str, Any]], *,
                            request_id: str | None = None) -> list[Any]:
        status, body, rid = await self._call("POST", "/predict",
                                             list(payloads), request_id)
        return _decode_batch(["predict"] * len(payloads), status, body, rid)

    async def healthz(self) -> dict[str, Any]:
        status, body, rid = await self._call("GET", "/healthz", None, None)
        if status != 200:
            raise remote_error(
                json.loads(body.decode("utf-8")), request_id=rid)
        return json.loads(body.decode("utf-8"))

    async def metrics(self) -> str:
        status, body, rid = await self._call("GET", "/metrics", None, None)
        if status != 200:
            raise TransportError(f"/metrics returned {status}",
                                 request_id=rid)
        return body.decode("utf-8")

    async def cluster_metrics(self) -> str:
        status, body, rid = await self._call("GET", "/metrics/cluster",
                                             None, None)
        if status != 200:
            raise remote_error(
                {"error": "HTTPError",
                 "message": f"/metrics/cluster returned {status}",
                 "status": status}, request_id=rid)
        return body.decode("utf-8")

    async def debug_trace(self, request_id: str, *,
                          fmt: str = "chrome") -> dict[str, Any]:
        status, body, rid = await self._call(
            "GET", f"/debug/trace/{request_id}?format={fmt}", None, None)
        data = json.loads(body.decode("utf-8"))
        if status != 200:
            raise remote_error(data, request_id=rid)
        return data

    # -- async jobs -----------------------------------------------------
    async def submit_restructure(
            self, source: str, *, machine: str = "power",
            workload: Mapping[str, Any] | None = None,
            domain: Mapping[str, Any] | None = None,
            depth: int = 2, max_nodes: int = 200, beam_width: int = 1,
            priority: int = 0,
            request_id: str | None = None) -> JobStatusResponse:
        payload = _job_payload(source, machine, workload, domain,
                               depth, max_nodes, beam_width, priority)
        status, body, rid = await self._call("POST", _JOBS_PATH, payload,
                                             request_id)
        return _decode_job(status, body, rid)

    async def job_status(self, job_id: str, *,
                         request_id: str | None = None) -> JobStatusResponse:
        status, body, rid = await self._call(
            "GET", f"{_JOBS_PATH}/{job_id}", None, request_id)
        return _decode_job(status, body, rid)

    async def cancel_job(self, job_id: str, *,
                         request_id: str | None = None) -> JobStatusResponse:
        status, body, rid = await self._call(
            "DELETE", f"{_JOBS_PATH}/{job_id}", None, request_id)
        return _decode_job(status, body, rid)

    async def iter_events(self, job_id: str, *, from_round: int = 0,
                          request_id: str | None = None):
        """Async generator over the job's SSE events.

        Same contract as :meth:`ReproClient.iter_events`: a stream that
        ends before the final event raises :class:`TransportError`.
        """
        request_id = request_id or new_request_id()
        self.last_request_id = request_id
        path = f"{_JOBS_PATH}/{job_id}/events?from_round={from_round}"
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout)
        except (ConnectionError, asyncio.TimeoutError, OSError) as error:
            raise TransportError(
                f"GET {self.base_url}{path} failed: {error}",
                request_id=request_id) from error
        try:
            writer.write(
                (f"GET {path} HTTP/1.1\r\nHost: {self.host}\r\n"
                 f"X-Request-Id: {request_id}\r\n"
                 f"Connection: close\r\n\r\n").encode("ascii"))
            await writer.drain()
            status_line = await asyncio.wait_for(reader.readline(),
                                                 self.timeout)
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise TransportError(
                    f"bad status line {status_line!r}",
                    request_id=request_id)
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(reader.readline(),
                                              self.timeout)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            if status != 200:
                length = int(headers.get("content-length", 0))
                body = (await reader.readexactly(length)) if length else b""
                try:
                    envelope = json.loads(body.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    envelope = {"error": "HTTPError",
                                "message": f"status {status}",
                                "status": status}
                raise remote_error(envelope, request_id=request_id)
            data_lines: list[str] = []
            while True:
                try:
                    raw = await asyncio.wait_for(reader.readline(),
                                                 self.timeout)
                except (ConnectionError, asyncio.IncompleteReadError,
                        asyncio.TimeoutError, OSError) as error:
                    raise TransportError(
                        f"event stream broke mid-read: {error}",
                        request_id=request_id) from error
                if not raw:
                    raise TransportError(
                        "event stream ended before the final event",
                        request_id=request_id)
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                    continue
                if line == "" and data_lines:
                    event = json.loads("\n".join(data_lines))
                    data_lines = []
                    yield event
                    if event.get("final"):
                        return
        finally:
            writer.close()

    async def wait(self, job_id: str, *, timeout: float | None = None,
                   poll: float = 0.2) -> JobStatusResponse:
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            response = await self.job_status(job_id)
            if response.status in _TERMINAL:
                if response.status == "error":
                    raise remote_error(
                        response.error or
                        {"error": "JobError", "message": "job failed",
                         "status": 500},
                        request_id=self.last_request_id)
                return response
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {response.status} "
                    f"after {timeout}s")
            await asyncio.sleep(poll)
