"""Process-wide service metrics in Prometheus text exposition format.

Dependency-free counters, gauges, and cumulative histograms, rendered
by ``GET /metrics`` exactly the way a Prometheus scraper expects:

    # HELP repro_requests_total Requests served, by endpoint and status.
    # TYPE repro_requests_total counter
    repro_requests_total{endpoint="predict",status="200"} 42

All mutation is lock-protected; the server handles requests on many
threads and the engine may report from worker callbacks.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Mapping

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
]

#: Latency buckets in seconds -- spans a cache hit (~10us) to a deep
#: restructure search (seconds).
DEFAULT_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and newline are the three characters the
    format requires escaping; anything else passes through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(key: tuple[tuple[str, str], ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def render(self) -> list[str]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing per-labelset count."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in items
        ] or [f"{self.name} 0"]


class Gauge(_Metric):
    """A value that can go up and down (cache size, worker count)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in items
        ] or [f"{self.name} 0"]


class Histogram(_Metric):
    """Cumulative-bucket latency histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help_text)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("need at least one bucket bound")
        empty = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._counts: dict[tuple[tuple[str, str], ...], list[int]] = {}
        self._sums: dict[tuple[tuple[str, str], ...], float] = {}
        self._empty = empty

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.setdefault(key, list(self._empty))
            counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value

    def count(self, **labels: str) -> int:
        with self._lock:
            return sum(self._counts.get(_label_key(labels), self._empty))

    def reset(self) -> None:
        """Drop all observations (for snapshot-style distributions that
        are rebuilt from current state on every scrape)."""
        with self._lock:
            self._counts.clear()
            self._sums.clear()

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(
                (key, list(counts), self._sums.get(key, 0.0))
                for key, counts in self._counts.items()
            )
        lines: list[str] = []
        for key, counts, total in items:
            running = 0
            for bound, count in zip(self.buckets, counts):
                running += count
                labels = _render_labels(key, (("le", _format_value(bound)),))
                lines.append(f"{self.name}_bucket{labels} {running}")
            running += counts[-1]
            labels = _render_labels(key, (("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{labels} {running}")
            lines.append(
                f"{self.name}_sum{_render_labels(key)} {_format_value(total)}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {running}")
        return lines


class MetricsRegistry:
    """Create-or-get metric instruments and render them all at once."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(Counter, name, help_text)  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(Gauge, name, help_text)  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help_text, buckets=buckets)  # type: ignore[return-value]

    def render(self) -> str:
        """The full ``/metrics`` payload."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
