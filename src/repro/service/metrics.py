"""Process-wide service metrics in Prometheus text exposition format.

Dependency-free counters, gauges, and cumulative histograms, rendered
by ``GET /metrics`` exactly the way a Prometheus scraper expects:

    # HELP repro_requests_total Requests served, by endpoint and status.
    # TYPE repro_requests_total counter
    repro_requests_total{endpoint="predict",status="200"} 42

All mutation is lock-protected; the server handles requests on many
threads and the engine may report from worker callbacks.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterable, Mapping, NamedTuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
    "MetricSample", "MetricFamily", "parse_exposition", "render_exposition",
]

#: Latency buckets in seconds -- spans a cache hit (~10us) to a deep
#: restructure search (seconds).
DEFAULT_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value):
        return str(int(value))
    return repr(value)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and newline are the three characters the
    format requires escaping; anything else passes through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(key: tuple[tuple[str, str], ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def render(self) -> list[str]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing per-labelset count."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in items
        ] or [f"{self.name} 0"]


class Gauge(_Metric):
    """A value that can go up and down (cache size, worker count)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in items
        ] or [f"{self.name} 0"]


class Histogram(_Metric):
    """Cumulative-bucket latency histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help_text)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("need at least one bucket bound")
        empty = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._counts: dict[tuple[tuple[str, str], ...], list[int]] = {}
        self._sums: dict[tuple[tuple[str, str], ...], float] = {}
        self._empty = empty

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.setdefault(key, list(self._empty))
            counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value

    def count(self, **labels: str) -> int:
        with self._lock:
            return sum(self._counts.get(_label_key(labels), self._empty))

    def reset(self) -> None:
        """Drop all observations (for snapshot-style distributions that
        are rebuilt from current state on every scrape)."""
        with self._lock:
            self._counts.clear()
            self._sums.clear()

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(
                (key, list(counts), self._sums.get(key, 0.0))
                for key, counts in self._counts.items()
            )
        lines: list[str] = []
        for key, counts, total in items:
            running = 0
            for bound, count in zip(self.buckets, counts):
                running += count
                labels = _render_labels(key, (("le", _format_value(bound)),))
                lines.append(f"{self.name}_bucket{labels} {running}")
            running += counts[-1]
            labels = _render_labels(key, (("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{labels} {running}")
            lines.append(
                f"{self.name}_sum{_render_labels(key)} {_format_value(total)}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {running}")
        return lines


class MetricsRegistry:
    """Create-or-get metric instruments and render them all at once."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(Counter, name, help_text)  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(Gauge, name, help_text)  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help_text, buckets=buckets)  # type: ignore[return-value]

    def render(self) -> str:
        """The full ``/metrics`` payload."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Exposition parsing / re-rendering (mergeable snapshots)
# ---------------------------------------------------------------------------
#
# The cluster router scrapes every shard's ``/metrics`` text and merges
# the snapshots into one exposition (``repro.obs.aggregate``).  That
# requires going the other way: text -> structured samples -> text.
# The parser handles exactly the dialect this module renders plus the
# common Prometheus conventions (escaped label values, ``+Inf`` bucket
# bounds, histogram ``_bucket``/``_sum``/``_count`` series grouped
# under their family).

#: Series-name suffixes that attach a sample to a histogram family.
_FAMILY_SUFFIXES = ("_bucket", "_sum", "_count")


class MetricSample(NamedTuple):
    """One sample line: full series name, sorted labels, value."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float


class MetricFamily:
    """All samples sharing one metric name (and its HELP/TYPE)."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str = "untyped", help_text: str = ""):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: list[MetricSample] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricFamily({self.name!r}, kind={self.kind!r}, "
                f"samples={len(self.samples)})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricFamily):
            return NotImplemented
        # Sample order is a rendering concern, not an identity one.
        return (self.name == other.name and self.kind == other.kind
                and self.help == other.help
                and sorted(self.samples) == sorted(other.samples))

    __hash__ = None  # mutable (samples list); unhashable like other mutables


def _parse_number(text: str) -> float:
    text = text.strip()
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _parse_labels(body: str) -> tuple[tuple[str, str], ...]:
    """Parse the inside of ``{...}`` honoring value escapes."""
    labels: list[tuple[str, str]] = []
    i = 0
    length = len(body)
    while i < length:
        while i < length and body[i] in ", \t":
            i += 1
        if i >= length:
            break
        eq = body.index("=", i)
        name = body[i:eq].strip()
        i = eq + 1
        if i >= length or body[i] != '"':
            raise ValueError(f"unquoted label value in {body!r}")
        i += 1
        chars: list[str] = []
        while i < length and body[i] != '"':
            ch = body[i]
            if ch == "\\" and i + 1 < length:
                nxt = body[i + 1]
                chars.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                i += 2
            else:
                chars.append(ch)
                i += 1
        if i >= length:
            raise ValueError(f"unterminated label value in {body!r}")
        i += 1  # closing quote
        labels.append((name, "".join(chars)))
    return tuple(sorted(labels))


def _split_sample_line(line: str) -> MetricSample:
    brace = line.find("{")
    if brace >= 0:
        name = line[:brace]
        # Find the matching close brace, skipping quoted values.
        i = brace + 1
        in_quotes = False
        while i < len(line):
            ch = line[i]
            if in_quotes:
                if ch == "\\":
                    i += 1
                elif ch == '"':
                    in_quotes = False
            elif ch == '"':
                in_quotes = True
            elif ch == "}":
                break
            i += 1
        if i >= len(line):
            raise ValueError(f"unterminated label set: {line!r}")
        labels = _parse_labels(line[brace + 1:i])
        value = _parse_number(line[i + 1:])
    else:
        name, _, rest = line.partition(" ")
        labels = ()
        # A timestamp column, if present, is dropped.
        value = _parse_number(rest.split()[0])
    return MetricSample(name.strip(), labels, value)


def _family_name(series: str, families: Mapping[str, MetricFamily]) -> str:
    if series in families:
        return series
    for suffix in _FAMILY_SUFFIXES:
        if series.endswith(suffix):
            base = series[: -len(suffix)]
            if base in families:
                return base
    return series


def parse_exposition(text: str) -> dict[str, MetricFamily]:
    """Parse Prometheus text exposition into metric families.

    Unknown series (no preceding ``# TYPE``) become untyped families
    named after the series itself; malformed lines raise ``ValueError``
    -- a shard handing back garbage should fail loudly in the merge,
    not silently drop samples.
    """
    families: dict[str, MetricFamily] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                family = families.get(name)
                if family is None:
                    family = families[name] = MetricFamily(name)
                if parts[1] == "TYPE":
                    family.kind = parts[3].strip() if len(parts) > 3 \
                        else "untyped"
                elif len(parts) > 3:
                    family.help = parts[3]
            continue
        sample = _split_sample_line(line)
        name = _family_name(sample.name, families)
        family = families.get(name)
        if family is None:
            family = families[name] = MetricFamily(name)
        family.samples.append(sample)
    return families


def render_exposition(families: Iterable[MetricFamily]) -> str:
    """Render families back to exposition text (inverse of parse)."""
    lines: list[str] = []
    for family in sorted(families, key=lambda f: f.name):
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in sorted(
                family.samples,
                key=lambda s: (s.name,
                               tuple(l for l in s.labels if l[0] != "le"),
                               _bucket_order(s))):
            rendered = _render_labels(sample.labels)
            lines.append(
                f"{sample.name}{rendered} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


def _bucket_order(sample: MetricSample) -> float:
    """Sort key keeping ``le`` buckets in ascending numeric order."""
    for name, value in sample.labels:
        if name == "le":
            try:
                return _parse_number(value)
            except ValueError:
                return math.inf
    return -math.inf
