"""Feature extraction for the tiered-fidelity surrogate fast path.

The exact pipeline already computes everything a cheap predictor
needs: every straight-line block is lowered to a
:class:`~repro.cost.columnar.CompiledStream` whose
:class:`~repro.cost.columnar.StreamSummary` carries op-id histograms
and dependence statistics, every loop has a symbolic trip count, and
the machine's cost table is compiled to
:class:`~repro.machine.compiled.CompiledOps`.  This module folds those
into one fixed-width vector per (program, machine) request:

* the *static* part walks the IR once per (machine fingerprint,
  program source, backend flags) -- straight-line blocks contribute
  their stream summaries, each scaled at serve time by the product of
  the enclosing loops' trip counts evaluated at the request's
  bindings.  The exact cost is ``sum(trips_b * cycles_b) + fixed``
  per block, so the true function is close to *linear* in this basis
  -- which is what lets a ridge model fit it tightly;
* block summaries come from the compiled-stream memo, which is keyed
  by (machine fingerprint, placement digest) -- the same columns every
  placement kernel consumes -- so feature vectors are identical under
  ``legacy``/``fused``/``arena`` kernels and either arena lowering *by
  construction*;
* op names hash into a fixed number of buckets
  (:data:`OP_BUCKETS`, stable blake2b hash, never the salted builtin
  ``hash``), so the width is machine-independent.

Static extraction costs one parse + translate and is memoized; the
per-request work is evaluating a handful of trip-count polynomials and
one dot product -- microseconds, which is what the ``fast`` fidelity
tier is for.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Mapping

from ..analysis.loops import trip_count
from ..cost.columnar import compile_stream
from ..cost.placement import DEFAULT_FOCUS_SPAN
from ..ir.digest import program_digest
from ..ir.nodes import Assign, CallStmt, Do, If, Stmt
from ..ir.parser import parse_program
from ..ir.symtab import SymbolTable
from ..machine.compiled import compile_ops
from ..machine.registry import cached_machine, machine_fingerprint
from ..symbolic.poly import Poly
from ..translate.backend_opts import AGGRESSIVE_BACKEND, NAIVE_BACKEND
from ..translate.translator import Translator

__all__ = [
    "FEATURE_DIM",
    "FEATURE_VERSION",
    "OP_BUCKETS",
    "StaticFeatures",
    "extract_static",
    "feature_cache_stats",
    "feature_vector",
    "peek_static",
    "reset_feature_cache",
]

#: Bump when the vector layout changes: persisted models only apply to
#: vectors of their own feature version.
FEATURE_VERSION = 1

#: Hashed op-name histogram width (machine-independent).
OP_BUCKETS = 12

#: Weighted slots (scaled by enclosing trip counts, summed over blocks):
#: instrs, latency_sum, noncoverable_sum, dep_edges, dep_dist_sum,
#: loop_iters, then the op buckets.
_WEIGHTED = 6 + OP_BUCKETS
#: Unweighted structural slots: one_time instrs, block count, loop
#: count, max nest depth, max dep distance, focus span.
_STRUCTURAL = 6
#: Machine cost-table summary: op count, mean latency, pipe count,
#: unit-kind count.
_MACHINE = 4

#: Total vector width, bias included.
FEATURE_DIM = 1 + _WEIGHTED + _STRUCTURAL + _MACHINE


def _bucket(name: str) -> int:
    """Stable op-name bucket (builtin ``hash`` is salted per process)."""
    raw = hashlib.blake2b(name.encode(), digest_size=4).digest()
    return int.from_bytes(raw, "big") % OP_BUCKETS


@dataclass(frozen=True)
class StaticFeatures:
    """The binding-independent part of one (program, machine) vector.

    ``blocks`` holds ``(weight polynomial, partial vector)`` pairs:
    the weight is the product of the enclosing loops' symbolic trip
    counts (``Poly.const(1)`` at top level), evaluated per request.
    """

    digest: str                       #: canonical program digest
    fingerprint: str                  #: machine cost-table fingerprint
    backend: str
    include_memory: bool
    blocks: tuple[tuple[Poly, tuple[float, ...]], ...]
    base: tuple[float, ...]           #: structural + machine slots
    variables: frozenset[str]         #: all weight-polynomial variables


# ----------------------------------------------------------------------
# static-extraction memo (bounded; serving hot path must not re-parse)

_MEMO_LIMIT = 1024
_memo: OrderedDict[tuple[str, str, str, bool], StaticFeatures] = OrderedDict()
_memo_lock = threading.Lock()
_memo_hits = 0
_memo_misses = 0


def feature_cache_stats() -> dict[str, int]:
    with _memo_lock:
        return {"hits": _memo_hits, "misses": _memo_misses,
                "entries": len(_memo)}


def reset_feature_cache() -> None:
    global _memo_hits, _memo_misses
    with _memo_lock:
        _memo.clear()
        _memo_hits = _memo_misses = 0


def peek_static(
    source: str,
    machine_name: str,
    backend: str = "aggressive",
    include_memory: bool = False,
) -> StaticFeatures | None:
    """Memo-only lookup: never parses, never translates.

    The serving fast path uses this so a cold program costs the fast
    tier nothing -- it falls through to exact, and the harvested
    sample warms the memo from the trainer thread.
    """
    try:
        fingerprint = machine_fingerprint(machine_name)
    except KeyError:
        return None
    with _memo_lock:
        hit = _memo.get((fingerprint, source, backend, include_memory))
        if hit is not None:
            _memo.move_to_end((fingerprint, source, backend, include_memory))
        return hit


def extract_static(
    source: str,
    machine_name: str,
    backend: str = "aggressive",
    include_memory: bool = False,
) -> StaticFeatures:
    """Extract (and memoize) the static features of one request shape.

    Raises whatever the parser/translator raises on bad input -- the
    serving path treats any failure as "fall through to exact".
    """
    global _memo_hits, _memo_misses
    fingerprint = machine_fingerprint(machine_name)
    key = (fingerprint, source, backend, include_memory)
    with _memo_lock:
        hit = _memo.get(key)
        if hit is not None:
            _memo.move_to_end(key)
            _memo_hits += 1
            return hit
        _memo_misses += 1
    static = _extract(source, machine_name, fingerprint, backend,
                      include_memory)
    with _memo_lock:
        _memo[key] = static
        while len(_memo) > _MEMO_LIMIT:
            _memo.popitem(last=False)
    return static


def _extract(source: str, machine_name: str, fingerprint: str,
             backend: str, include_memory: bool) -> StaticFeatures:
    program = parse_program(source)
    digest = program_digest(program)
    machine = cached_machine(machine_name)
    ops = compile_ops(machine, fingerprint)
    flags = AGGRESSIVE_BACKEND if backend == "aggressive" else NAIVE_BACKEND
    translator = Translator(machine, SymbolTable.from_program(program), flags)
    buckets = [_bucket(name) for name in ops.names]

    blocks: list[tuple[Poly, tuple[float, ...]]] = []
    counters = {"one_time": 0, "blocks": 0, "loops": 0,
                "max_depth": 0, "dist_max": 0}

    def flush(buffer: list[Stmt], enclosing: tuple[str, ...],
              weight: Poly) -> None:
        if not buffer:
            return
        stmts = tuple(buffer)
        buffer.clear()
        info = translator.translate_block(stmts, enclosing)
        instrs = tuple(info.stream)
        counters["blocks"] += 1
        if not instrs:
            return
        summary = compile_stream(machine, instrs,
                                 fingerprint=fingerprint).summary
        vec = [0.0] * _WEIGHTED
        vec[0] = float(summary.length)
        vec[1] = float(summary.latency_sum)
        vec[2] = float(summary.noncoverable_sum)
        vec[3] = float(summary.dep_edges)
        vec[4] = float(summary.dep_dist_sum)
        for oid, count in enumerate(summary.op_counts):
            if count:
                vec[6 + buckets[oid]] += float(count)
        blocks.append((weight, tuple(vec)))
        counters["one_time"] += summary.one_time
        if summary.dep_dist_max > counters["dist_max"]:
            counters["dist_max"] = summary.dep_dist_max

    loop_vec = tuple(1.0 if i == 5 else 0.0 for i in range(_WEIGHTED))

    def walk(stmts: tuple[Stmt, ...], enclosing: tuple[str, ...],
             weight: Poly, depth: int) -> None:
        buffer: list[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, Assign):
                buffer.append(stmt)
                continue
            flush(buffer, enclosing, weight)
            if isinstance(stmt, CallStmt):
                if stmt.name != "return":
                    flush([stmt], enclosing, weight)
                continue
            if isinstance(stmt, Do):
                counters["loops"] += 1
                if depth + 1 > counters["max_depth"]:
                    counters["max_depth"] = depth + 1
                inner = weight * trip_count(stmt).poly
                # Per-iteration loop bookkeeping rides in a dedicated
                # slot, so the model can price the overhead triple.
                blocks.append((inner, loop_vec))
                walk(stmt.body, enclosing + (stmt.var,), inner, depth + 1)
            elif isinstance(stmt, If):
                walk(stmt.then_body, enclosing, weight, depth)
                walk(stmt.else_body, enclosing, weight, depth)
            else:
                raise TypeError(f"cannot featurize statement {stmt!r}")
        flush(buffer, enclosing, weight)

    walk(program.body, (), Poly.const(1), 0)

    latency = ops.latency
    mean_latency = (sum(latency) / len(latency)) if len(latency) else 0.0
    base = (
        float(counters["one_time"]),
        float(counters["blocks"]),
        float(counters["loops"]),
        float(counters["max_depth"]),
        float(counters["dist_max"]),
        float(DEFAULT_FOCUS_SPAN),
        float(len(ops)),
        float(mean_latency),
        float(sum(len(p) for p in ops.pipes)),
        float(len(ops.kinds)),
    )
    variables: set[str] = set()
    for weight, _vec in blocks:
        variables.update(weight.variables())
    return StaticFeatures(
        digest=digest,
        fingerprint=fingerprint,
        backend=backend,
        include_memory=include_memory,
        blocks=tuple(blocks),
        base=base,
        variables=frozenset(variables),
    )


def feature_vector(static: StaticFeatures,
                   bindings: Mapping[str, Any]) -> list[float] | None:
    """The full vector at one evaluation point, or ``None`` if unbound.

    ``bindings`` values must be numeric (the engine converts wire
    bindings via ``parse_bindings`` first).  Trip-count polynomials
    evaluating negative (empty loops) clamp to zero, matching the
    Fortran trip-count floor.
    """
    values = {name: float(value) for name, value in bindings.items()}
    x = [0.0] * FEATURE_DIM
    x[0] = 1.0
    try:
        for weight, vec in static.blocks:
            w = weight.evaluate_float(values)
            if w <= 0.0:
                continue
            for i, v in enumerate(vec):
                if v:
                    x[1 + i] += w * v
    except (KeyError, OverflowError, ZeroDivisionError):
        return None
    offset = 1 + _WEIGHTED
    for i, v in enumerate(static.base):
        x[offset + i] = v
    return x
