"""Ridge regression with split-conformal intervals for the fast tier.

The surrogate is deliberately small: a linear model over the
:mod:`~repro.learn.features` basis, solved in closed form.  With numpy
installed (the ``fast`` extra) the normal equations go through
``numpy.linalg.solve``; otherwise a pure-python Gaussian elimination
with partial pivoting handles the same (d x d, d = ``FEATURE_DIM``)
system -- both produce the same model to float precision.

Calibration is *split conformal*: fit on one slice of the samples,
take the ``ceil((n+1) * coverage)``-th smallest absolute residual on a
disjoint calibration slice, and report every prediction as
``[mid - q, mid + q]``.  The coverage guarantee rests on
exchangeability of calibration and test points, not on the model being
right -- a misfit model just gets wide intervals, which the ``auto``
fidelity tier then refuses to serve.

Model artifacts are JSON, keyed by machine cost-table fingerprint like
the engine's JSONL result cache, so a recalibrated machine silently
invalidates its surrogate instead of serving stale cycles.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from .features import FEATURE_DIM, FEATURE_VERSION

try:  # the "fast" extra; the fallback solver is bit-for-bit adequate
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

HAVE_NUMPY = _np is not None

__all__ = [
    "ARTIFACT_FORMAT",
    "ConformalModel",
    "HAVE_NUMPY",
    "fit_conformal",
    "load_artifact",
    "save_artifact",
    "solve_ridge",
]

ARTIFACT_FORMAT = "repro-surrogate-v1"

#: Calibration slice: every third sample (deterministic, so retrains
#: are reproducible); the rest fit the ridge weights.
_CAL_STRIDE = 3

#: Floors below which a split cannot produce a finite conformal
#: quantile at reasonable coverage levels.
MIN_FIT = 8
MIN_CAL = 8


def solve_ridge(
    rows: Sequence[Sequence[float]],
    targets: Sequence[float],
    ridge: float = 1e-3,
) -> list[float]:
    """Weights minimizing ``||Xw - y||^2 + ridge * ||w||^2``.

    Columns are scaled to unit maximum before solving (and the scaling
    folded back into the returned weights), which keeps the normal
    equations well-conditioned for either solver.
    """
    n = len(rows)
    if n == 0:
        raise ValueError("no samples")
    d = len(rows[0])
    scale = [1.0] * d
    for j in range(d):
        top = max(abs(row[j]) for row in rows)
        if top > 0.0:
            scale[j] = top
    scaled = [[row[j] / scale[j] for j in range(d)] for row in rows]
    if HAVE_NUMPY:
        x = _np.asarray(scaled, dtype=float)
        y = _np.asarray(targets, dtype=float)
        a = x.T @ x + ridge * _np.eye(d)
        b = x.T @ y
        w = _np.linalg.solve(a, b)
        return [float(w[j]) / scale[j] for j in range(d)]
    # Normal equations by hand: A = X^T X + ridge I, b = X^T y.
    a = [[0.0] * d for _ in range(d)]
    b = [0.0] * d
    for row, target in zip(scaled, targets):
        for j in range(d):
            vj = row[j]
            if vj == 0.0:
                continue
            b[j] += vj * target
            aj = a[j]
            for k in range(j, d):
                aj[k] += vj * row[k]
    for j in range(d):
        a[j][j] += ridge
        for k in range(j):
            a[j][k] = a[k][j]
    w = _gaussian_solve(a, b)
    return [w[j] / scale[j] for j in range(d)]


def _gaussian_solve(a: list[list[float]], b: list[float]) -> list[float]:
    """In-place Gaussian elimination with partial pivoting."""
    d = len(b)
    for col in range(d):
        pivot = max(range(col, d), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-12:
            a[col][col] += 1e-9    # ridge already added; belt and braces
            pivot = col
        if pivot != col:
            a[col], a[pivot] = a[pivot], a[col]
            b[col], b[pivot] = b[pivot], b[col]
        inv = 1.0 / a[col][col]
        for row in range(col + 1, d):
            factor = a[row][col] * inv
            if factor == 0.0:
                continue
            arow, acol = a[row], a[col]
            for k in range(col, d):
                arow[k] -= factor * acol[k]
            b[row] -= factor * b[col]
    x = [0.0] * d
    for row in range(d - 1, -1, -1):
        total = b[row]
        arow = a[row]
        for k in range(row + 1, d):
            total -= arow[k] * x[k]
        x[row] = total / arow[row]
    return x


@dataclass(frozen=True)
class ConformalModel:
    """One fitted surrogate for one machine fingerprint."""

    fingerprint: str
    machine: str                  #: machine name at fit time (labels only)
    version: int                  #: bumps on every hot swap
    feature_version: int
    coverage: float               #: nominal interval coverage
    weights: tuple[float, ...]
    quantile: float               #: conformal half-width (absolute cycles)
    n_train: int
    n_cal: int
    trained_at: float             #: wall time of the fit

    def point(self, x: Sequence[float]) -> float:
        total = 0.0
        for w, v in zip(self.weights, x):
            if v:
                total += w * v
        return total

    def predict(self, x: Sequence[float]) -> tuple[float, float, float]:
        """``(mid, lo, hi)`` at the nominal coverage; ``lo`` floors at 0."""
        mid = self.point(x)
        lo = mid - self.quantile
        return mid, (lo if lo > 0.0 else 0.0), mid + self.quantile


def fit_conformal(
    rows: Sequence[Sequence[float]],
    targets: Sequence[float],
    *,
    coverage: float = 0.9,
    ridge: float = 1e-3,
    fingerprint: str = "",
    machine: str = "",
    version: int = 1,
) -> ConformalModel | None:
    """Fit + calibrate one model; ``None`` when the split is too thin.

    The calibration slice is every :data:`_CAL_STRIDE`-th sample, so a
    refit over the same reservoir is deterministic.  Returns ``None``
    (caller keeps the old model) when either slice is below its floor
    or the requested coverage needs more calibration points than exist
    (the finite-sample quantile index would run off the end).
    """
    if not 0.0 < coverage < 1.0:
        raise ValueError("coverage must be in (0, 1)")
    fit_rows, fit_y, cal_rows, cal_y = [], [], [], []
    for i, (row, target) in enumerate(zip(rows, targets)):
        if i % _CAL_STRIDE == _CAL_STRIDE - 1:
            cal_rows.append(row)
            cal_y.append(target)
        else:
            fit_rows.append(row)
            fit_y.append(target)
    if len(fit_rows) < MIN_FIT or len(cal_rows) < MIN_CAL:
        return None
    k = math.ceil((len(cal_rows) + 1) * coverage)
    if k > len(cal_rows):
        return None                 # coverage unattainable at this n
    weights = solve_ridge(fit_rows, fit_y, ridge)
    residuals = sorted(
        abs(target - sum(w * v for w, v in zip(weights, row)))
        for row, target in zip(cal_rows, cal_y)
    )
    return ConformalModel(
        fingerprint=fingerprint,
        machine=machine,
        version=version,
        feature_version=FEATURE_VERSION,
        coverage=coverage,
        weights=tuple(weights),
        quantile=residuals[k - 1],
        n_train=len(fit_rows),
        n_cal=len(cal_rows),
        trained_at=time.time(),
    )


# ----------------------------------------------------------------------
# artifact persistence (JSON next to the result-cache file)


def save_artifact(path: str | os.PathLike,
                  models: Mapping[str, ConformalModel]) -> None:
    """Atomically write every model, keyed by machine fingerprint."""
    payload = {
        "format": ARTIFACT_FORMAT,
        "feature_version": FEATURE_VERSION,
        "saved_at": time.time(),
        "models": {
            fp: {
                "machine": m.machine,
                "version": m.version,
                "coverage": m.coverage,
                "weights": list(m.weights),
                "quantile": m.quantile,
                "n_train": m.n_train,
                "n_cal": m.n_cal,
                "trained_at": m.trained_at,
            }
            for fp, m in models.items()
        },
    }
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def load_artifact(path: str | os.PathLike) -> dict[str, ConformalModel]:
    """Load an artifact; empty on missing/corrupt/stale-format files.

    A surrogate must never block serving: anything unreadable just
    means "start with no model and learn from traffic".
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        return {}
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {}
    if not isinstance(payload, dict) or payload.get("format") != ARTIFACT_FORMAT:
        return {}
    if payload.get("feature_version") != FEATURE_VERSION:
        return {}
    out: dict[str, ConformalModel] = {}
    for fp, raw in (payload.get("models") or {}).items():
        try:
            weights = tuple(float(w) for w in raw["weights"])
            if len(weights) != FEATURE_DIM:
                continue
            out[fp] = ConformalModel(
                fingerprint=fp,
                machine=str(raw.get("machine", "")),
                version=int(raw.get("version", 1)),
                feature_version=FEATURE_VERSION,
                coverage=float(raw.get("coverage", 0.9)),
                weights=weights,
                quantile=float(raw["quantile"]),
                n_train=int(raw.get("n_train", 0)),
                n_cal=int(raw.get("n_cal", 0)),
                trained_at=float(raw.get("trained_at", 0.0)),
            )
        except (KeyError, TypeError, ValueError):
            continue
    return out
