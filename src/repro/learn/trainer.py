"""The online surrogate: serving, harvesting, and drift-driven retrains.

:class:`Surrogate` is the piece the :class:`~repro.service.engine.
PredictionEngine` holds.  Three jobs:

* **serve** -- answer a ``fidelity=fast|auto`` predict from the
  current model in microseconds, entirely ahead of the result cache
  and the worker pool.  A request is servable when its bindings are
  numeric, the machine has a fitted model, and the program's static
  features are already memoized; anything else *falls through* to the
  exact path (never an error), and ``auto`` additionally refuses
  intervals wider than the request's tolerance;
* **harvest** -- every exact prediction that produced a numeric
  ``cycles`` is enqueued as a labeled sample.  A background thread
  featurizes it (warming the static-feature memo as a side effect),
  appends it to a bounded per-fingerprint reservoir (a recency ring:
  old traffic ages out, which is exactly what drift adaptation
  wants), and tracks observed drift as rolling
  ``|error| / interval half-width`` against the live model;
* **retrain** -- when fresh samples or drift cross their thresholds,
  refit + reconformalize on the reservoir and hot-swap the model
  atomically (a single dict store; readers see old or new, never a
  mix), bumping the version and persisting the JSON artifact next to
  the result cache.

``background=False`` runs harvesting inline on the caller's thread --
deterministic, for tests and benchmarks.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Mapping

from ..machine.registry import machine_fingerprint
from ..service.metrics import MetricsRegistry
from .features import (
    FEATURE_VERSION,
    StaticFeatures,
    extract_static,
    feature_vector,
    peek_static,
)
from .model import ConformalModel, fit_conformal, load_artifact, save_artifact

__all__ = ["Surrogate", "SurrogateConfig", "train_from_cache"]

log = logging.getLogger("repro.learn.trainer")

#: Interval-width histogram buckets (relative width, unitless).
WIDTH_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)


@dataclass
class SurrogateConfig:
    """Knobs for the tiered-fidelity surrogate (see README)."""

    coverage: float = 0.9          #: nominal conformal coverage level
    min_samples: int = 40          #: reservoir floor before the first fit
    retrain_every: int = 64        #: fresh samples between periodic refits
    reservoir_size: int = 2048     #: per-fingerprint sample ring bound
    drift_threshold: float = 1.0   #: rolling |err|/half-width that refits
    drift_window: int = 64         #: samples in the rolling drift mean
    default_tolerance: float = 0.1  #: auto tier's relative-width ceiling
    ridge: float = 1e-3            #: ridge regularization strength
    store: str | None = None       #: JSON artifact path (None = memory only)
    background: bool = True        #: harvest on a thread vs inline


class _FpState:
    """Mutable per-fingerprint training state (trainer thread only)."""

    __slots__ = ("samples", "fresh", "drift", "machine")

    def __init__(self, reservoir_size: int, drift_window: int):
        self.samples: deque = deque(maxlen=reservoir_size)
        self.fresh = 0
        self.drift: deque = deque(maxlen=drift_window)
        self.machine = ""


class Surrogate:
    """Learned fast tier: models, reservoirs, and the harvest thread."""

    def __init__(self, config: SurrogateConfig | None = None,
                 metrics: MetricsRegistry | None = None):
        self.config = config if config is not None else SurrogateConfig()
        #: fingerprint -> live model; replaced wholesale on retrain, so
        #: serving threads read a consistent model without locking.
        self._models: dict[str, ConformalModel] = {}
        if self.config.store:
            self._models = load_artifact(self.config.store)
        self._state: dict[str, _FpState] = {}
        self._queue: deque = deque()
        self._queue_bound = 4096
        self._dropped = 0
        #: (fingerprint, source, backend, include_memory, bindings,
        #: model version) -> (response template, relative width).  A
        #: repeated fast predict costs one dict lookup instead of a
        #: featurize + dot product; versioned keys age out via LRU
        #: after a hot swap.
        self._serve_memo: OrderedDict[tuple, tuple[dict, float]] = \
            OrderedDict()
        self._serve_memo_limit = 4096
        self._serve_lock = threading.Lock()
        # plain-int mirrors of the registry counters, for stats()/healthz
        self._n_served = 0
        self._n_fallthrough = 0
        self._n_retrains = 0
        self._n_samples = 0
        self._fall_reasons: dict[str, int] = {}
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._stop = False
        self._thread: threading.Thread | None = None
        self._metrics_bound = False
        self.bind_metrics(metrics if metrics is not None else MetricsRegistry())
        for model in self._models.values():
            if model.machine:
                self._version_gauge.set(model.version, machine=model.machine)
        if self.config.background:
            self._thread = threading.Thread(
                target=self._run, name="surrogate-trainer", daemon=True)
            self._thread.start()

    # -- metrics --------------------------------------------------------
    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """(Re)create the ``repro_surrogate_*`` family in ``registry``.

        The engine calls this so surrogate counters land in the same
        registry ``/metrics`` renders.
        """
        self.metrics = registry
        self._served = registry.counter(
            "repro_surrogate_served_total",
            "Predicts answered by the surrogate fast tier.")
        self._fallthrough = registry.counter(
            "repro_surrogate_fallthrough_total",
            "fast/auto predicts that fell through to exact, by reason.")
        self._retrains = registry.counter(
            "repro_surrogate_retrains_total",
            "Surrogate refits, by trigger.")
        self._harvested = registry.counter(
            "repro_surrogate_samples_total",
            "Labeled samples harvested from exact predictions.")
        self._width_hist = registry.histogram(
            "repro_surrogate_interval_width",
            "Relative conformal interval width of served predictions.",
            buckets=WIDTH_BUCKETS)
        self._version_gauge = registry.gauge(
            "repro_surrogate_model_version",
            "Live surrogate model version, by machine.")
        self._staleness_gauge = registry.gauge(
            "repro_surrogate_model_staleness_seconds",
            "Seconds since the live model was trained, by machine.")
        self._reservoir_gauge = registry.gauge(
            "repro_surrogate_reservoir_samples",
            "Resident reservoir samples, by machine.")
        self._metrics_bound = True

    def export_metrics(self) -> None:
        """Refresh scrape-time gauges (staleness, reservoir depth)."""
        now = time.time()
        for model in list(self._models.values()):
            if model.machine:
                self._staleness_gauge.set(
                    max(now - model.trained_at, 0.0), machine=model.machine)
        with self._lock:
            sizes = {state.machine: len(state.samples)
                     for state in self._state.values() if state.machine}
        for machine, size in sizes.items():
            self._reservoir_gauge.set(size, machine=machine)

    # -- serving (engine batch thread; must stay microsecond-cheap) ----
    def serve(self, request: Any) -> dict[str, Any] | None:
        """A wire response dict, or ``None`` to fall through to exact.

        ``request`` is a validated
        :class:`~repro.service.protocol.PredictRequest` with
        ``fidelity`` of ``fast`` or ``auto``.
        """
        fidelity = request.fidelity
        if not request.bindings:
            return self._miss(fidelity, "no_bindings")
        try:
            fingerprint = machine_fingerprint(request.machine)
        except KeyError:
            return self._miss(fidelity, "unknown_machine")
        model = self._models.get(fingerprint)
        if model is None:
            return self._miss(fidelity, "no_model")
        memo_key = (fingerprint, request.source, request.backend,
                    request.include_memory,
                    tuple(sorted((k, str(v))
                                 for k, v in request.bindings.items())),
                    model.version)
        with self._serve_lock:
            hit = self._serve_memo.get(memo_key)
            if hit is not None:
                self._serve_memo.move_to_end(memo_key)
        if hit is not None:
            template, rel_width = hit
        else:
            static = peek_static(request.source, request.machine,
                                 request.backend, request.include_memory)
            if static is None:
                return self._miss(fidelity, "cold_features")
            try:
                bindings = {k: Fraction(str(v))
                            for k, v in request.bindings.items()}
                x = feature_vector(static, bindings)
            except (ValueError, ZeroDivisionError):
                return self._miss(fidelity, "unbound")
            if x is None:
                return self._miss(fidelity, "unbound")
            mid, lo, hi = model.predict(x)
            rel_width = (hi - lo) / max(abs(mid), 1.0)
            template = {
                "cost": f"~{mid:.6g}",
                "digest": static.digest,
                "machine": request.machine,
                "backend": request.backend,
                "variables": sorted(static.variables),
                "cycles": str(mid),
                "cached": False,
                "fidelity": "fast",
                "interval": [lo, hi],
                "model_version": model.version,
            }
            with self._serve_lock:
                self._serve_memo[memo_key] = (template, rel_width)
                if len(self._serve_memo) > self._serve_memo_limit:
                    self._serve_memo.popitem(last=False)
        if fidelity == "auto":
            tolerance = request.tolerance
            if tolerance is None:
                tolerance = self.config.default_tolerance
            if rel_width > tolerance:
                return self._miss(fidelity, "wide_interval")
        self._n_served += 1
        self._served.inc(fidelity=fidelity)
        self._width_hist.observe(rel_width, machine=request.machine)
        # shallow copy: callers may attach a trace block to the response
        return dict(template)

    def _miss(self, fidelity: str, reason: str) -> None:
        self._n_fallthrough += 1
        self._fall_reasons[reason] = self._fall_reasons.get(reason, 0) + 1
        self._fallthrough.inc(fidelity=fidelity, reason=reason)
        return None

    # -- harvesting -----------------------------------------------------
    def observe(self, request: Any, cycles: float) -> None:
        """Queue one labeled sample from an exact prediction."""
        item = (request.source, request.machine, request.backend,
                request.include_memory, dict(request.bindings or {}),
                float(cycles))
        if not self.config.background:
            self._ingest(item)
            return
        with self._wake:
            if len(self._queue) >= self._queue_bound:
                self._queue.popleft()
                self._dropped += 1
            self._queue.append(item)
            self._wake.notify()

    def _run(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._stop:
                    self._wake.wait(timeout=1.0)
                if self._stop and not self._queue:
                    return
                item = self._queue.popleft()
            try:
                self._ingest(item)
            except Exception:  # noqa: BLE001 -- a bad sample must not kill the thread
                log.exception("surrogate sample ingestion failed")

    def _ingest(self, item: tuple) -> None:
        source, machine, backend, include_memory, bindings, cycles = item
        try:
            static = extract_static(source, machine, backend, include_memory)
            x = feature_vector(
                static, {k: Fraction(str(v)) for k, v in bindings.items()})
        except Exception:  # noqa: BLE001 -- unfeaturizable programs are skipped
            return
        if x is None:
            return
        fp = static.fingerprint
        state = self._state.get(fp)
        if state is None:
            state = _FpState(self.config.reservoir_size,
                             self.config.drift_window)
            self._state[fp] = state
        state.machine = machine
        state.samples.append((x, cycles))
        state.fresh += 1
        self._n_samples += 1
        self._harvested.inc(machine=machine)
        model = self._models.get(fp)
        if model is not None:
            mid = model.point(x)
            half = max(model.quantile, 1e-9)
            state.drift.append(abs(cycles - mid) / half)
            if (len(state.drift) >= self.config.drift_window
                    and sum(state.drift) / len(state.drift)
                    > self.config.drift_threshold):
                self._retrain(fp, state, "drift")
                return
            if state.fresh >= self.config.retrain_every:
                self._retrain(fp, state, "samples")
        elif len(state.samples) >= self.config.min_samples:
            self._retrain(fp, state, "samples")

    def _retrain(self, fp: str, state: _FpState, trigger: str) -> None:
        old = self._models.get(fp)
        snapshot = list(state.samples)
        model = fit_conformal(
            [x for x, _ in snapshot],
            [y for _, y in snapshot],
            coverage=self.config.coverage,
            ridge=self.config.ridge,
            fingerprint=fp,
            machine=state.machine,
            version=(old.version + 1) if old is not None else 1,
        )
        state.fresh = 0
        state.drift.clear()
        if model is None:
            return
        self._models[fp] = model    # the atomic hot swap
        self._n_retrains += 1
        self._retrains.inc(trigger=trigger, machine=state.machine)
        self._version_gauge.set(model.version, machine=state.machine)
        if self.config.store:
            try:
                save_artifact(self.config.store, self._models)
            except OSError:
                log.exception("surrogate artifact write failed")

    # -- control --------------------------------------------------------
    def train_now(self, trigger: str = "manual") -> dict[str, int]:
        """Force a refit of every fingerprint with reservoir samples.

        Returns ``{machine: version}`` for the models now live.  Used
        by tests, the bench, and the drain path.
        """
        self.drain()
        with self._lock:
            states = list(self._state.items())
        for fp, state in states:
            if len(state.samples) >= self.config.min_samples:
                self._retrain(fp, state, trigger)
        return {m.machine or fp: m.version
                for fp, m in self._models.items()}

    def drain(self, timeout: float = 10.0) -> bool:
        """Block until the harvest queue is empty (best effort)."""
        if not self.config.background:
            return True
        deadline = time.time() + timeout
        while time.time() < deadline:
            with self._lock:
                if not self._queue:
                    return True
            time.sleep(0.01)
        return False

    def model_for(self, machine_name: str) -> ConformalModel | None:
        try:
            return self._models.get(machine_fingerprint(machine_name))
        except KeyError:
            return None

    def stats(self) -> dict[str, Any]:
        """Snapshot for ``/healthz`` and the CLI."""
        with self._lock:
            queued = len(self._queue)
            reservoirs = {
                state.machine or fp: len(state.samples)
                for fp, state in self._state.items()
            }
        return {
            "feature_version": FEATURE_VERSION,
            "served": self._n_served,
            "fallthrough": self._n_fallthrough,
            "fallthrough_reasons": dict(self._fall_reasons),
            "retrains": self._n_retrains,
            "samples": self._n_samples,
            "models": {
                m.machine or fp: {
                    "version": m.version,
                    "coverage": m.coverage,
                    "quantile": m.quantile,
                    "n_train": m.n_train,
                    "n_cal": m.n_cal,
                }
                for fp, m in self._models.items()
            },
            "queued": queued,
            "dropped": self._dropped,
            "reservoirs": reservoirs,
        }

    def close(self) -> None:
        if self._thread is None:
            return
        with self._wake:
            self._stop = True
            self._wake.notify_all()
        self._thread.join(timeout=5.0)
        self._thread = None


# ----------------------------------------------------------------------
# offline bootstrap (``repro surrogate train``)


def train_from_cache(
    cache_path: str | os.PathLike,
    *,
    store: str | os.PathLike | None = None,
    coverage: float = 0.9,
    ridge: float = 1e-3,
    min_samples: int = 24,
) -> dict[str, Any]:
    """Bootstrap models from a persisted JSONL result-cache file.

    Every persisted predict entry that carried bindings is a free
    labeled sample: the cache line's ``req`` block (written by the
    engine alongside the response) has the source program, and the
    response value has the exact ``cycles``.  Lines without a ``req``
    block (files from older builds) or without cycles are skipped.
    Returns a summary dict; writes the artifact to ``store`` when
    given.
    """
    import json

    by_fp: dict[str, list[tuple[list[float], float]]] = {}
    machines: dict[str, str] = {}
    samples = skipped = 0
    with open(os.fspath(cache_path), encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                value = record["value"]
            except (json.JSONDecodeError, KeyError, TypeError):
                skipped += 1
                continue
            req = record.get("req")
            if (not isinstance(key, str) or not key.startswith("predict|")
                    or not isinstance(req, Mapping)
                    or not isinstance(value, Mapping)
                    or value.get("cycles") is None):
                skipped += 1
                continue
            try:
                cycles = float(Fraction(str(value["cycles"])))
                static = extract_static(
                    str(req["source"]), str(req.get("machine", "power")),
                    str(req.get("backend", "aggressive")),
                    bool(req.get("include_memory", False)))
                bindings = {k: Fraction(str(v))
                            for k, v in (req.get("bindings") or {}).items()}
                x = feature_vector(static, bindings)
            except Exception:  # noqa: BLE001 -- skip unfeaturizable lines
                skipped += 1
                continue
            if x is None:
                skipped += 1
                continue
            by_fp.setdefault(static.fingerprint, []).append((x, cycles))
            machines[static.fingerprint] = str(req.get("machine", "power"))
            samples += 1
    models: dict[str, ConformalModel] = dict(
        load_artifact(store) if store else {})
    fitted: dict[str, Any] = {}
    for fp, rows in by_fp.items():
        if len(rows) < min_samples:
            continue
        old = models.get(fp)
        model = fit_conformal(
            [x for x, _ in rows], [y for _, y in rows],
            coverage=coverage, ridge=ridge, fingerprint=fp,
            machine=machines[fp],
            version=(old.version + 1) if old is not None else 1,
        )
        if model is None:
            continue
        models[fp] = model
        fitted[machines[fp]] = {
            "fingerprint": fp, "version": model.version,
            "n_train": model.n_train, "n_cal": model.n_cal,
            "quantile": model.quantile,
        }
    if store and models:
        save_artifact(store, models)
    return {"samples": samples, "skipped": skipped, "models": fitted,
            "store": os.fspath(store) if store else None}
