"""Tiered-fidelity serving: learned surrogate fast path.

The exact pipeline (parse -> translate -> place -> aggregate) answers
every predict with paper-faithful cycle counts, but costs milliseconds
per cache miss.  This package adds a *fast* tier: a per-machine ridge
model over stream-summary features with split-conformal intervals,
trained online from the exact answers the engine is already producing.

* :mod:`~repro.learn.features` -- fixed-width feature vectors, kernel-
  invariant by construction;
* :mod:`~repro.learn.model` -- ridge + conformal calibration, JSON
  model artifacts keyed by machine fingerprint;
* :mod:`~repro.learn.trainer` -- the online :class:`Surrogate`:
  serving, harvest reservoirs, drift-driven retrains, and the offline
  :func:`train_from_cache` bootstrap.
"""

from .features import (
    FEATURE_DIM,
    FEATURE_VERSION,
    OP_BUCKETS,
    StaticFeatures,
    extract_static,
    feature_cache_stats,
    feature_vector,
    peek_static,
    reset_feature_cache,
)
from .model import (
    ARTIFACT_FORMAT,
    HAVE_NUMPY,
    ConformalModel,
    fit_conformal,
    load_artifact,
    save_artifact,
    solve_ridge,
)
from .trainer import Surrogate, SurrogateConfig, train_from_cache

__all__ = [
    "ARTIFACT_FORMAT",
    "ConformalModel",
    "FEATURE_DIM",
    "FEATURE_VERSION",
    "HAVE_NUMPY",
    "OP_BUCKETS",
    "StaticFeatures",
    "Surrogate",
    "SurrogateConfig",
    "extract_static",
    "feature_cache_stats",
    "feature_vector",
    "fit_conformal",
    "load_artifact",
    "peek_static",
    "reset_feature_cache",
    "save_artifact",
    "solve_ridge",
    "train_from_cache",
]
