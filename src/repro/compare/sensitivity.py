"""Sensitivity analysis of performance expressions (paper section 3.4).

"After the performance expression is found for a program fragment,
sensitivity analysis can be applied to find the top few variables that
produce the most perturbations to the performance.  (Sensitivity
analysis varies the values of the variables for small amounts and
measures the resulting perturbations to the values of the function.)
Run-time tests can be formulated based on the most sensitive
variables."

Two estimators are provided: the paper's finite perturbation, and the
analytic elasticity ``(∂P/∂v) · v / P`` (exact, cross-checks the
former).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from ..symbolic.expr import PerfExpr

__all__ = ["VariableSensitivity", "perturbation_sensitivity",
           "elasticity", "rank_variables"]


@dataclass(frozen=True)
class VariableSensitivity:
    """Sensitivity of the expression to one variable at a point."""

    name: str
    score: Fraction  # relative output change per relative input change

    def __str__(self) -> str:
        return f"{self.name}: {float(self.score):.4f}"


def perturbation_sensitivity(
    expr: PerfExpr,
    point: Mapping[str, Fraction | int],
    rel_delta: Fraction = Fraction(1, 20),
) -> list[VariableSensitivity]:
    """Finite-difference sensitivities at a nominal point.

    Each variable is nudged by ``±rel_delta`` (relative); the score is
    the symmetric relative response ``|ΔP| / (|P| · 2·rel_delta)``.
    """
    base = expr.evaluate(point)
    out: list[VariableSensitivity] = []
    for name in sorted(expr.poly.variables()):
        value = Fraction(point[name])
        delta = value * rel_delta if value != 0 else rel_delta
        up = dict(point)
        down = dict(point)
        up[name] = value + delta
        down[name] = value - delta
        swing = expr.evaluate(up) - expr.evaluate(down)
        if base == 0:
            score = abs(swing)
        else:
            score = abs(swing) / (abs(base) * 2 * rel_delta)
        out.append(VariableSensitivity(name, score))
    return out


def elasticity(
    expr: PerfExpr,
    point: Mapping[str, Fraction | int],
) -> list[VariableSensitivity]:
    """Analytic elasticities ``(∂P/∂v) · v / P`` at a point."""
    base = expr.evaluate(point)
    out: list[VariableSensitivity] = []
    for name in sorted(expr.poly.variables()):
        partial = expr.poly.derivative(name).evaluate(point)
        value = Fraction(point[name])
        if base == 0:
            score = abs(partial * value)
        else:
            score = abs(partial * value / base)
        out.append(VariableSensitivity(name, score))
    return out


def rank_variables(
    expr: PerfExpr,
    point: Mapping[str, Fraction | int],
    top: int | None = None,
    method: str = "perturbation",
) -> list[VariableSensitivity]:
    """Most-sensitive-first ranking; ``top`` truncates the list."""
    if method == "perturbation":
        scores = perturbation_sensitivity(expr, point)
    elif method == "elasticity":
        scores = elasticity(expr, point)
    else:
        raise ValueError(f"unknown method {method!r}")
    scores.sort(key=lambda s: (-s.score, s.name))
    return scores[:top] if top is not None else scores
