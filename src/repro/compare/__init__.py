"""Symbolic comparison, winner regions, run-time tests, sensitivity
(paper section 3)."""

from .comparator import ComparisonResult, Verdict, compare
from .profiling import BranchProfile, ProfileData, apply_profile
from .regions import WinnerRegion, region_report, winner_regions
from .runtime_tests import RuntimeTest, build_guard, poly_to_ir, worth_testing
from .sensitivity import (
    VariableSensitivity,
    elasticity,
    perturbation_sensitivity,
    rank_variables,
)

__all__ = [
    "BranchProfile", "ComparisonResult", "ProfileData", "RuntimeTest",
    "VariableSensitivity", "Verdict", "apply_profile",
    "WinnerRegion", "build_guard", "compare", "elasticity",
    "perturbation_sensitivity", "poly_to_ir", "rank_variables",
    "region_report", "winner_regions", "worth_testing",
]
