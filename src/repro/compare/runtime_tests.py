"""Run-time test generation from performance conditions (section 3.4).

"For cases where the bounds on the related variables are not enough to
decide whether the value of the expression is positive, the compiler
can compute the condition when the value is positive (this can be used
in generating run-time tests)."

Given a DEPENDS/UNKNOWN comparison, this module produces the guard --
as IR, so the transformed program literally contains
``if (<condition>) then <version f> else <version g>`` -- plus a
human-readable description.  Section 3.4 warns that "usually only a few
run-time tests can be afforded"; :func:`worth_testing` implements that
gate using the integral masses.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..ir.nodes import BinOp, Expr, If, IntConst, RealConst, Stmt, VarRef
from ..symbolic.poly import Poly
from .comparator import ComparisonResult, Verdict

__all__ = ["RuntimeTest", "build_guard", "worth_testing", "poly_to_ir"]

#: Minimum share of the domain the minority winner must hold before a
#: run-time test pays for itself (the test itself costs cycles).
_MIN_MINORITY_SHARE = Fraction(1, 20)


@dataclass(frozen=True)
class RuntimeTest:
    """A generated multi-version guard."""

    condition: Expr          # true  => first version is cheaper
    description: str
    crossovers: tuple[Fraction, ...]

    def guarded(self, first_version: tuple[Stmt, ...],
                second_version: tuple[Stmt, ...]) -> If:
        """The two-version IR statement."""
        return If(self.condition, first_version, second_version)


def poly_to_ir(poly: Poly) -> Expr:
    """Render an exact polynomial as an IR expression tree."""
    terms = sorted(
        poly.terms.items(),
        key=lambda kv: (-sum(e for _, e in kv[0]), kv[0]),
    )
    expr: Expr | None = None
    for mono, coeff in terms:
        term = _term_to_ir(mono, coeff)
        expr = term if expr is None else BinOp("+", expr, term)
    return expr if expr is not None else IntConst(0)


def _term_to_ir(mono, coeff: Fraction) -> Expr:
    factors: list[Expr] = []
    if coeff != 1 or not mono:
        if coeff.denominator == 1:
            factors.append(IntConst(int(coeff)))
        else:
            factors.append(RealConst(coeff, str(float(coeff))))
    for var, exp in mono:
        base: Expr = VarRef(var)
        if exp == 1:
            factors.append(base)
        else:
            factors.append(BinOp("**", base, IntConst(exp)))
    expr = factors[0]
    for factor in factors[1:]:
        expr = BinOp("*", expr, factor)
    return expr


def build_guard(result: ComparisonResult) -> RuntimeTest | None:
    """A run-time test choosing the cheaper version at execution time.

    For a univariate DEPENDS with a single crossover ``r``, the guard is
    the simple bound check ``var <= r`` (oriented so that true selects
    the first version); in general the guard evaluates the full
    condition polynomial: first wins where ``P < 0``.
    """
    if result.verdict not in (Verdict.DEPENDS, Verdict.UNKNOWN):
        return None
    if result.condition is None:
        return None
    crossovers = tuple(result.crossovers())
    if result.variable is not None and len(crossovers) == 1 and result.regions:
        r = crossovers[0]
        first_low = result.regions[0].sign.value == "negative"
        bound: Expr = (
            IntConst(int(r)) if r.denominator == 1
            else RealConst(r, str(float(r)))
        )
        op = ".le." if first_low else ".ge."
        condition: Expr = BinOp(op, VarRef(result.variable), bound)
        side = "below" if first_low else "above"
        description = (
            f"first version wins {side} {result.variable} = {r}"
        )
    else:
        condition = BinOp(".lt.", poly_to_ir(result.condition), IntConst(0))
        description = f"first version wins where {result.condition} < 0"
    return RuntimeTest(condition, description, crossovers)


def worth_testing(result: ComparisonResult) -> bool:
    """Should the compiler spend a run-time test on this choice?

    Yes only when the winner genuinely changes and the minority regime
    occupies a non-trivial share of the domain -- "excessive run-time
    tests may lead to negative effects on performance".
    """
    if result.verdict is not Verdict.DEPENDS:
        return False
    first = result.first_wins_measure()
    second = result.second_wins_measure()
    total = first + second
    if total == 0:
        return False
    minority = min(first, second)
    return minority / total >= _MIN_MINORITY_SHARE
