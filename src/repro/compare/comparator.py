"""Symbolic comparison of performance expressions (paper section 3.1).

Given transformations ``f`` and ``g`` with costs ``C(f)`` and ``C(g)``,
form ``P = C(f) - C(g)`` and decide *where* each wins:

* interval bound propagation may already prove a definite sign
  ("there are many situations where it is possible to determine whether
  the expression is positive or negative based on bounds");
* otherwise, if P is (or simplifies to) a univariate polynomial --
  "since loop transformations modify only one structure at a time, this
  is likely" -- closed-form roots up to degree 4 give exact sign
  regions, P+ / P- measures, and integrals;
* otherwise the comparison is deferred: the positivity condition itself
  is the result (it can become a run-time test, section 3.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction

from ..symbolic.expr import PerfExpr
from ..symbolic.integrate import PosNegIntegrals, split_integrals
from ..symbolic.intervals import Interval
from ..symbolic.poly import Poly, PolyError
from ..symbolic.signs import Sign, SignRegion, decide_sign, sign_regions
from ..symbolic.simplify import drop_negligible_terms

__all__ = ["Verdict", "ComparisonResult", "compare"]


class Verdict(enum.Enum):
    """Outcome of comparing C(f) against C(g) (lower cost wins)."""

    FIRST_ALWAYS = "first_always"      # f cheaper over the whole domain
    SECOND_ALWAYS = "second_always"    # g cheaper over the whole domain
    EQUAL = "equal"
    DEPENDS = "depends"                # winner changes within the domain
    UNKNOWN = "unknown"                # could not decide symbolically


@dataclass(frozen=True)
class ComparisonResult:
    """Everything section 3.1 derives from P = C(f) - C(g)."""

    difference: PerfExpr
    verdict: Verdict
    variable: str | None = None
    regions: tuple[SignRegion, ...] = ()
    integrals: PosNegIntegrals | None = None
    condition: Poly | None = None  # "f is better" <=> condition < 0

    def first_wins_measure(self) -> Fraction:
        """Total length of regions where f is cheaper."""
        return self._measure(Sign.NEGATIVE)

    def second_wins_measure(self) -> Fraction:
        return self._measure(Sign.POSITIVE)

    def _measure(self, sign: Sign) -> Fraction:
        total = Fraction(0)
        for region in self.regions:
            if region.sign is sign:
                total += Fraction(region.interval.hi) - Fraction(region.interval.lo)
        return total

    def crossovers(self) -> list[Fraction]:
        """Domain points where the winner changes."""
        out: list[Fraction] = []
        for a, b in zip(self.regions, self.regions[1:]):
            if a.sign is not b.sign and Sign.ZERO not in (a.sign, b.sign):
                out.append(Fraction(a.interval.hi))
            elif a.sign is Sign.ZERO or b.sign is Sign.ZERO:
                out.append(Fraction(a.interval.hi))
        return out

    def recommended(self, weight: str = "integral") -> Verdict:
        """Pick a single winner for a DEPENDS case.

        ``weight="integral"`` compares the masses of P+ and P-
        (the paper: "integral values of P+ and P- can be used to
        compare the transformations"); ``weight="measure"`` compares
        the sizes of the winning regions.
        """
        if self.verdict is not Verdict.DEPENDS:
            return self.verdict
        if self.integrals is None:
            return Verdict.UNKNOWN
        if weight == "integral":
            first_mass = self.integrals.negative_integral
            second_mass = self.integrals.positive_integral
        elif weight == "measure":
            first_mass = self.first_wins_measure()
            second_mass = self.second_wins_measure()
        else:
            raise ValueError(f"unknown weight {weight!r}")
        if first_mass > second_mass:
            return Verdict.FIRST_ALWAYS
        if second_mass > first_mass:
            return Verdict.SECOND_ALWAYS
        return Verdict.EQUAL


def compare(
    cost_first: PerfExpr,
    cost_second: PerfExpr,
    domain: dict[str, Interval] | None = None,
    rel_tol: Fraction = Fraction(1, 1000),
) -> ComparisonResult:
    """Compare two performance expressions over their (merged) bounds."""
    difference = cost_first - cost_second
    bounds = difference.effective_bounds()
    if domain:
        for name, interval in domain.items():
            narrowed = bounds.get(name, Interval.unbounded()).intersect(interval)
            if narrowed is None:
                raise PolyError(f"empty domain for {name}")
            bounds[name] = narrowed
    difference = PerfExpr(difference.poly, bounds, difference.unknowns)

    # Step 0: trivial and bound-propagation verdicts.
    quick = decide_sign(difference.poly, bounds)
    if quick is Sign.ZERO:
        return ComparisonResult(difference, Verdict.EQUAL)
    if quick is Sign.NEGATIVE:
        return ComparisonResult(difference, Verdict.FIRST_ALWAYS)
    if quick is Sign.POSITIVE:
        return ComparisonResult(difference, Verdict.SECOND_ALWAYS)

    # Step 1: drop certifiably negligible terms (may reduce to univariate).
    simplified = drop_negligible_terms(difference.poly, bounds, rel_tol).poly
    variables = simplified.variables()
    if len(variables) != 1:
        # Multivariate and undecided: hand back the condition itself.
        return ComparisonResult(
            difference, Verdict.UNKNOWN, condition=simplified
        )

    (var,) = variables
    interval = bounds.get(var, Interval.unbounded())
    if isinstance(interval.lo, float) or isinstance(interval.hi, float):
        # Unbounded domain: look at the leading behaviour... still
        # undecidable in general; return the condition.
        return ComparisonResult(
            difference, Verdict.UNKNOWN, variable=var, condition=simplified
        )
    try:
        regions = tuple(sign_regions(simplified, var, interval))
    except PolyError:
        return ComparisonResult(
            difference, Verdict.UNKNOWN, variable=var, condition=simplified
        )
    signs = {r.sign for r in regions if r.interval.width() != 0}
    if signs == {Sign.NEGATIVE}:
        return ComparisonResult(difference, Verdict.FIRST_ALWAYS, var, regions)
    if signs == {Sign.POSITIVE}:
        return ComparisonResult(difference, Verdict.SECOND_ALWAYS, var, regions)
    if signs <= {Sign.ZERO}:
        return ComparisonResult(difference, Verdict.EQUAL, var, regions)
    integrals = None
    if not simplified.is_laurent():
        integrals = split_integrals(simplified, var, interval)
    return ComparisonResult(
        difference,
        Verdict.DEPENDS,
        var,
        regions,
        integrals,
        condition=simplified,
    )
