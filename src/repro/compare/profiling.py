"""Profile-driven elimination of unknowns (paper section 3.4).

"Profiling can be used to eliminate some variables that result from
unknown values in the control structures (such as the branching
probabilities of conditional statements).  This is useful when the
program behavior is relatively independent of the input data."

A :class:`ProfileData` records observed branch outcomes and loop trip
counts; :func:`apply_profile` substitutes them into a performance
expression, turning probability and trip-count unknowns into numbers
while leaving everything else symbolic -- the middle ground between
full symbolic analysis and full guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..symbolic.expr import PerfExpr, UnknownKind
from ..symbolic.poly import Poly

__all__ = ["BranchProfile", "ProfileData", "apply_profile"]


@dataclass
class BranchProfile:
    """Observed outcomes of one conditional."""

    taken: int = 0
    not_taken: int = 0

    def record(self, taken: bool) -> None:
        if taken:
            self.taken += 1
        else:
            self.not_taken += 1

    @property
    def total(self) -> int:
        return self.taken + self.not_taken

    @property
    def probability(self) -> Fraction:
        if self.total == 0:
            raise ValueError("no observations for this branch")
        return Fraction(self.taken, self.total)


@dataclass
class ProfileData:
    """Aggregated observations keyed by the expression's unknown names."""

    branches: dict[str, BranchProfile] = field(default_factory=dict)
    trip_counts: dict[str, list[int]] = field(default_factory=dict)

    def record_branch(self, name: str, taken: bool) -> None:
        self.branches.setdefault(name, BranchProfile()).record(taken)

    def record_trips(self, name: str, trips: int) -> None:
        self.trip_counts.setdefault(name, []).append(trips)

    def mean_trips(self, name: str) -> Fraction:
        samples = self.trip_counts.get(name)
        if not samples:
            raise KeyError(f"no trip-count samples for {name}")
        return Fraction(sum(samples), len(samples))

    def coverage(self, expr: PerfExpr) -> tuple[set[str], set[str]]:
        """(resolvable unknowns, unresolvable unknowns) of an expression."""
        resolvable: set[str] = set()
        for name in expr.poly.variables():
            if name in self.branches and self.branches[name].total > 0:
                resolvable.add(name)
            elif name in self.trip_counts and self.trip_counts[name]:
                resolvable.add(name)
        return resolvable, expr.poly.variables() - resolvable


def apply_profile(expr: PerfExpr, profile: ProfileData) -> PerfExpr:
    """Substitute profiled values for the unknowns they cover.

    Branch-probability unknowns take their observed frequency;
    trip-count / bound unknowns take their observed mean.  Unknowns the
    profile does not cover stay symbolic -- unlike the guessing
    baseline, nothing is invented.
    """
    bindings: dict[str, Poly] = {}
    for name in expr.poly.variables():
        unknown = expr.unknowns.get(name)
        kind = unknown.kind if unknown else UnknownKind.PARAMETER
        if kind is UnknownKind.BRANCH_PROB and name in profile.branches:
            branch = profile.branches[name]
            if branch.total:
                bindings[name] = Poly.const(branch.probability)
        elif name in profile.trip_counts and profile.trip_counts[name]:
            bindings[name] = Poly.const(profile.mean_trips(name))
    if not bindings:
        return expr
    return expr.substitute(bindings)
