"""Winner-region reporting for comparisons (paper Figure 10).

Formats a :class:`~repro.compare.comparator.ComparisonResult` into the
per-interval winner table the paper's cubic example illustrates, and
computes summary statistics (areas, shares) the selection policies use.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..symbolic.signs import Sign
from .comparator import ComparisonResult, Verdict

__all__ = ["WinnerRegion", "winner_regions", "region_report"]


@dataclass(frozen=True)
class WinnerRegion:
    """One maximal interval with a single winner."""

    lo: Fraction
    hi: Fraction
    winner: str  # "first" | "second" | "tie"

    @property
    def width(self) -> Fraction:
        return self.hi - self.lo

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}] -> {self.winner}"


def winner_regions(result: ComparisonResult) -> list[WinnerRegion]:
    """Winner per region; P < 0 means the first expression is cheaper."""
    out: list[WinnerRegion] = []
    for region in result.regions:
        if region.sign is Sign.NEGATIVE:
            winner = "first"
        elif region.sign is Sign.POSITIVE:
            winner = "second"
        else:
            winner = "tie"
        out.append(WinnerRegion(
            Fraction(region.interval.lo), Fraction(region.interval.hi), winner
        ))
    return out


def region_report(result: ComparisonResult) -> str:
    """Human-readable comparison summary (used by examples and benches)."""
    lines = [f"verdict: {result.verdict.value}"]
    if result.variable:
        lines.append(f"deciding variable: {result.variable}")
    for region in winner_regions(result):
        lines.append(f"  {region}")
    if result.integrals is not None:
        lines.append(
            f"  mass: first={float(result.integrals.negative_integral):.6g} "
            f"second={float(result.integrals.positive_integral):.6g}"
        )
    if result.verdict is Verdict.DEPENDS:
        crossings = ", ".join(str(c) for c in result.crossovers())
        lines.append(f"  crossovers: {crossings}")
    if result.condition is not None and result.verdict is Verdict.UNKNOWN:
        lines.append(f"  undecided condition: {result.condition} < 0 favours first")
    return "\n".join(lines)
