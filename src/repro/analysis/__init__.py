"""Program analysis substrate: loops, dependences, use/def, invariants."""

from .dependence import (
    AffineSubscript,
    DepKind,
    Dependence,
    affine_subscript,
    fusion_legal,
    interchange_legal,
    is_parallel_loop,
    loop_carried_dependences,
)
from .invariants import assigned_names, is_invariant, stored_arrays
from .loops import LoopInfo, expression_poly, perfect_nest, trip_count
from .usedef import StmtAccess, accesses, statements_commute

__all__ = [
    "AffineSubscript", "DepKind", "Dependence", "LoopInfo", "StmtAccess",
    "accesses", "affine_subscript", "assigned_names", "expression_poly",
    "fusion_legal", "interchange_legal", "is_invariant", "is_parallel_loop",
    "loop_carried_dependences", "perfect_nest", "statements_commute",
    "stored_arrays", "trip_count",
]
