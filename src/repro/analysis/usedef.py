"""Scalar use/def chains within straight-line blocks.

The translator does its own on-the-fly tracking; this standalone
version serves the transformation engine (statement reordering needs
to know which statements may exchange) and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.nodes import ArrayRef, Assign, CallStmt, Expr, Stmt, VarRef
from ..ir.visitor import walk_exprs

__all__ = ["StmtAccess", "accesses", "statements_commute"]


@dataclass(frozen=True)
class StmtAccess:
    """Reads and writes of one statement (scalars and array names)."""

    reads_scalars: frozenset[str]
    writes_scalars: frozenset[str]
    reads_arrays: frozenset[str]
    writes_arrays: frozenset[str]

    @property
    def has_call(self) -> bool:
        return "__call__" in self.writes_arrays


def _expr_reads(expr: Expr) -> tuple[set[str], set[str]]:
    scalars: set[str] = set()
    arrays: set[str] = set()
    for node in walk_exprs(expr):
        if isinstance(node, VarRef):
            scalars.add(node.name)
        elif isinstance(node, ArrayRef):
            arrays.add(node.name)
    return scalars, arrays


def accesses(stmt: Stmt) -> StmtAccess:
    """Conservative access summary of one straight-line statement."""
    if isinstance(stmt, Assign):
        read_s, read_a = _expr_reads(stmt.value)
        writes_s: set[str] = set()
        writes_a: set[str] = set()
        if isinstance(stmt.target, VarRef):
            writes_s.add(stmt.target.name)
        else:
            writes_a.add(stmt.target.name)
            for sub in stmt.target.subscripts:
                s, a = _expr_reads(sub)
                read_s |= s
                read_a |= a
        return StmtAccess(
            frozenset(read_s), frozenset(writes_s),
            frozenset(read_a), frozenset(writes_a),
        )
    if isinstance(stmt, CallStmt):
        read_s: set[str] = set()
        read_a: set[str] = set()
        for arg in stmt.args:
            s, a = _expr_reads(arg)
            read_s |= s
            read_a |= a
        # A call may write anything it can reach: poison marker.
        return StmtAccess(
            frozenset(read_s), frozenset(),
            frozenset(read_a), frozenset(read_a | {"__call__"}),
        )
    raise TypeError(f"accesses() handles straight-line statements, got {stmt}")


def statements_commute(a: Stmt, b: Stmt) -> bool:
    """May two adjacent straight-line statements be exchanged?

    True when neither writes anything the other reads or writes
    (array granularity is whole-array: conservative).
    """
    aa, bb = accesses(a), accesses(b)
    if aa.has_call or bb.has_call:
        return False

    def conflict(x: StmtAccess, y: StmtAccess) -> bool:
        return bool(
            x.writes_scalars & (y.reads_scalars | y.writes_scalars)
            or x.writes_arrays & (y.reads_arrays | y.writes_arrays)
        )

    return not conflict(aa, bb) and not conflict(bb, aa)
