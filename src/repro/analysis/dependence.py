"""Data-dependence analysis for transformation legality.

Classic ZIV/strong-SIV subscript tests over affine subscripts
``a*i + b``: enough to certify the legality of the interchange, fusion,
distribution, and unrolling decisions the performance-guided
restructurer (paper section 3.2) chooses among.  Anything the tests
cannot prove independent is reported as a (conservative) dependence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction

from ..ir.nodes import ArrayRef, Assign, BinOp, Do, Expr, IntConst, Stmt, UnOp, VarRef
from ..ir.visitor import walk_exprs, walk_stmts

__all__ = [
    "DepKind",
    "Dependence",
    "AffineSubscript",
    "affine_subscript",
    "loop_carried_dependences",
    "is_parallel_loop",
    "interchange_legal",
    "fusion_legal",
]


class DepKind(enum.Enum):
    FLOW = "flow"       # write then read
    ANTI = "anti"       # read then write
    OUTPUT = "output"   # write then write

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Dependence:
    """A (possibly conservative) loop-carried dependence."""

    kind: DepKind
    array: str
    distance: int | None  # None = unknown distance (conservative)

    def __str__(self) -> str:
        d = "?" if self.distance is None else str(self.distance)
        return f"{self.kind} dep on {self.array}, distance {d}"


@dataclass(frozen=True)
class AffineSubscript:
    """A subscript of the form coeff * index + offset."""

    coeff: Fraction
    offset: Fraction

    @property
    def is_constant(self) -> bool:
        return self.coeff == 0


def affine_subscript(expr: Expr, index: str) -> AffineSubscript | None:
    """Decompose a subscript as ``a*index + b``; None if not affine.

    Other variables are allowed only additively (they shift the offset
    symbolically); for the distance tests a symbolic additive term is
    treated as part of the offset and cancels between identically-
    shaped references, so we track it textually.
    """
    try:
        coeff, offset, symbolic = _affine_parts(expr, index)
    except _NotAffine:
        return None
    if symbolic:
        # Symbolic additive parts are fine only if they cancel in the
        # *difference* of two subscripts; callers compare `symbolic`
        # parts via _affine_parts directly, so reject here.
        return None
    return AffineSubscript(coeff, offset)


class _NotAffine(Exception):
    pass


def _affine_parts(expr: Expr, index: str) -> tuple[Fraction, Fraction, tuple]:
    """(coeff of index, constant offset, sorted symbolic additive terms)."""
    if isinstance(expr, IntConst):
        return Fraction(0), Fraction(expr.value), ()
    if isinstance(expr, VarRef):
        if expr.name == index:
            return Fraction(1), Fraction(0), ()
        return Fraction(0), Fraction(0), ((expr.name, Fraction(1)),)
    if isinstance(expr, UnOp) and expr.op == "-":
        c, o, s = _affine_parts(expr.operand, index)
        return -c, -o, tuple((n, -k) for n, k in s)
    if isinstance(expr, BinOp):
        if expr.op in ("+", "-"):
            lc, lo, ls = _affine_parts(expr.left, index)
            rc, ro, rs = _affine_parts(expr.right, index)
            if expr.op == "-":
                rc, ro = -rc, -ro
                rs = tuple((n, -k) for n, k in rs)
            merged: dict[str, Fraction] = {}
            for name, k in ls + rs:
                merged[name] = merged.get(name, Fraction(0)) + k
            sym = tuple(sorted((n, k) for n, k in merged.items() if k))
            return lc + rc, lo + ro, sym
        if expr.op == "*":
            if isinstance(expr.left, IntConst):
                c, o, s = _affine_parts(expr.right, index)
                k = Fraction(expr.left.value)
                return c * k, o * k, tuple((n, v * k) for n, v in s)
            if isinstance(expr.right, IntConst):
                c, o, s = _affine_parts(expr.left, index)
                k = Fraction(expr.right.value)
                return c * k, o * k, tuple((n, v * k) for n, v in s)
    raise _NotAffine


def _subscript_distance(
    write: Expr, read: Expr, index: str, inner_indices: frozenset[str] = frozenset()
) -> int | None | str:
    """Dependence distance between two subscripts along ``index``.

    Returns an int distance, ``"independent"``, or None (unknown).
    ``inner_indices`` are loop variables *nested inside* the analyzed
    loop: a symbolic term mentioning one of them takes many values per
    iteration of the analyzed loop, so nothing can be concluded from it
    (enclosing-loop indices, by contrast, are fixed and cancel).
    """
    try:
        wc, wo, ws = _affine_parts(write, index)
        rc, ro, rs = _affine_parts(read, index)
    except _NotAffine:
        return None
    if any(name in inner_indices for name, _ in ws + rs):
        return None  # inner index varies within one iteration: unknown
    if ws != rs:
        return None  # different symbolic shifts: unknown
    if wc == rc:
        if wc == 0:
            # ZIV: both constant in this index.
            return "independent" if wo != ro else 0
        # Strong SIV: distance = (wo - ro) / coeff, must be integral.
        diff = (wo - ro) / wc
        if diff.denominator != 1:
            return "independent"
        return int(diff)
    return None  # weak SIV and beyond: conservative


def _collect_refs(body: tuple[Stmt, ...]):
    """(array name, subscripts, is_write) for every array reference."""
    refs: list[tuple[str, tuple[Expr, ...], bool]] = []
    for stmt in walk_stmts(body):
        if isinstance(stmt, Assign):
            if isinstance(stmt.target, ArrayRef):
                refs.append((stmt.target.name, stmt.target.subscripts, True))
                for sub in stmt.target.subscripts:
                    refs.extend(_reads_in(sub))
            refs.extend(_reads_in(stmt.value))
        elif isinstance(stmt, Do):
            refs.extend(_reads_in(stmt.lb))
            refs.extend(_reads_in(stmt.ub))
            refs.extend(_reads_in(stmt.step))
        elif hasattr(stmt, "cond"):
            refs.extend(_reads_in(stmt.cond))
    return refs


def _reads_in(expr: Expr):
    out = []
    for node in walk_exprs(expr):
        if isinstance(node, ArrayRef):
            out.append((node.name, node.subscripts, False))
    return out


def loop_carried_dependences(loop: Do) -> list[Dependence]:
    """Loop-carried dependences of one loop (on its own index).

    Pairs every write with every read/write of the same array and runs
    the subscript tests dimension by dimension: if *any* dimension
    proves independence the pair is independent; if all dimensions have
    distance 0 the dependence is loop-independent (not carried); a
    non-zero or unknown distance is carried.
    """
    refs = _collect_refs(loop.body)
    inner = frozenset(
        stmt.var for stmt in walk_stmts(loop.body) if isinstance(stmt, Do)
    )
    writes = [r for r in refs if r[2]]
    out: list[Dependence] = []
    seen: set[tuple] = set()
    for w_name, w_subs, _ in writes:
        for name, subs, is_write in refs:
            if name != w_name:
                continue
            distance = _pair_distance(w_subs, subs, loop.var, inner)
            if distance == "independent" or distance == 0:
                continue
            kind = DepKind.OUTPUT if is_write else DepKind.FLOW
            key = (kind, name, distance)
            if key in seen:
                continue
            seen.add(key)
            out.append(Dependence(kind, name, distance))
    return out


def _pair_distance(w_subs, r_subs, index: str, inner: frozenset[str] = frozenset()):
    if len(w_subs) != len(r_subs):
        return None
    distances = []
    for w, r in zip(w_subs, r_subs):
        d = _subscript_distance(w, r, index, inner)
        if d == "independent":
            return "independent"
        distances.append(d)
    known = [d for d in distances if d is not None]
    if len(known) != len(distances):
        return None
    nonzero = [d for d in known if d != 0]
    if not nonzero:
        return 0
    if len(set(nonzero)) == 1:
        return nonzero[0]
    # Dimensions demand inconsistent distances along this index: no
    # single iteration pair satisfies all of them.
    return "independent"


def _scalar_carried(loop: Do) -> bool:
    """Scalars written and read in the body carry dependences."""
    assigned: set[str] = set()
    read: set[str] = set()
    for stmt in walk_stmts(loop.body):
        if isinstance(stmt, Assign):
            if isinstance(stmt.target, VarRef):
                assigned.add(stmt.target.name)
            for node in walk_exprs(stmt.value):
                if isinstance(node, VarRef):
                    read.add(node.name)
    assigned.discard(loop.var)
    return bool(assigned & read)


def is_parallel_loop(loop: Do) -> bool:
    """No loop-carried dependences at all (DOALL)."""
    if _scalar_carried(loop):
        return False
    return not loop_carried_dependences(loop)


def _distance_vector(w_subs, r_subs, outer_var: str, inner_var: str):
    """Dependence distance vector (d_outer, d_inner) for one ref pair.

    Returns a tuple, ``"independent"``, or None (unknown).  Each
    subscript dimension must be affine and *separable* (involve at most
    one of the two indices); a dimension coupling both indices is
    unknown.
    """
    if len(w_subs) != len(r_subs):
        return None
    required: dict[str, int] = {}
    for w, r in zip(w_subs, r_subs):
        try:
            wc_o, _, _ = _affine_parts(w, outer_var)
            wc_i, _, _ = _affine_parts(w, inner_var)
        except _NotAffine:
            return None
        if wc_o != 0 and wc_i != 0:
            return None  # coupled subscript, e.g. a(i+j)
        var = outer_var if wc_o != 0 else inner_var
        d = _subscript_distance(w, r, var)
        if d == "independent":
            return "independent"
        if d is None:
            return None
        if d == 0 and wc_o == 0 and wc_i == 0:
            continue  # constant dimension matches: no constraint
        if var in required and required[var] != d:
            return "independent"
        required[var] = d
    return (required.get(outer_var, 0), required.get(inner_var, 0))


def interchange_legal(outer: Do, inner: Do) -> bool:
    """Is interchanging a perfectly-nested pair legal?

    Illegal when some dependence has a (+, -) distance vector -- after
    the swap it would become (-, +), i.e. flow backwards.  Unknown
    vectors are conservatively illegal.
    """
    refs = _collect_refs(inner.body)
    writes = [r for r in refs if r[2]]
    for w_name, w_subs, _ in writes:
        for name, subs, _ in refs:
            if name != w_name:
                continue
            vector = _distance_vector(w_subs, subs, outer.var, inner.var)
            if vector == "independent":
                continue
            if vector is None:
                return False
            d_outer, d_inner = vector
            # Normalize: the real dependence direction is the
            # lexicographically positive orientation of the pair.
            if d_outer < 0 or (d_outer == 0 and d_inner < 0):
                d_outer, d_inner = -d_outer, -d_inner
            if d_outer > 0 and d_inner < 0:
                return False
    return True


def fusion_legal(first: Do, second: Do) -> bool:
    """May two adjacent conformable loops be fused?

    Requires identical bounds (textually) and no fusion-preventing
    dependence: a value written by the first loop in iteration ``i``
    must not be read by the second loop in an iteration earlier than
    ``i`` (negative distance after fusion).
    """
    if (first.lb, first.ub, first.step) != (second.lb, second.ub, second.step):
        return False
    first_writes = [r for r in _collect_refs(first.body) if r[2]]
    second_refs = _collect_refs(second.body)
    inner = frozenset(
        stmt.var
        for body in (first.body, second.body)
        for stmt in walk_stmts(body)
        if isinstance(stmt, Do)
    )
    for w_name, w_subs, _ in first_writes:
        for name, subs, _ in second_refs:
            if name != w_name:
                continue
            # Distance measured in the (shared) index of the two loops:
            # rename second's index to first's for the comparison.
            from ..ir.visitor import substitute_var

            renamed = tuple(
                substitute_var(s, second.var, VarRef(first.var)) for s in subs
            )
            d = _pair_distance(w_subs, renamed, first.var, inner)
            if d == "independent":
                continue
            if d is None or d < 0:
                return False
    return True
