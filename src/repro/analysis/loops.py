"""Loop analysis: symbolic trip counts and nest structure.

The cost of ``do k = lb, ub, step`` sums the body over the iteration
set (paper section 2.4.1); when bounds are unknown the iteration count
becomes a symbolic expression ``(ub - lb + step) / step`` whose
variables join the performance expression's unknowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..ir.nodes import BinOp, Do, Expr, IntConst, RealConst, Stmt, UnOp, VarRef
from ..symbolic.expr import Interval, PerfExpr, Unknown, UnknownKind
from ..symbolic.poly import Poly

__all__ = ["expression_poly", "trip_count", "perfect_nest", "LoopInfo"]


def expression_poly(expr: Expr) -> tuple[Poly, dict[str, Unknown]]:
    """Best-effort conversion of an IR expression to an exact polynomial.

    Scalars become symbolic variables (the paper's unknowns); integer
    arithmetic maps directly; division maps when the divisor is a
    constant or a single variable (Laurent term); anything else --
    array references, calls, comparisons -- becomes a fresh opaque
    unknown named after the expression text, preserving soundness of
    "treat unknowns as variables".
    """
    unknowns: dict[str, Unknown] = {}

    def convert(node: Expr) -> Poly:
        if isinstance(node, IntConst):
            return Poly.const(node.value)
        if isinstance(node, RealConst):
            return Poly.const(Fraction(node.value))
        if isinstance(node, VarRef):
            unknowns.setdefault(
                node.name, Unknown(node.name, UnknownKind.LOOP_BOUND)
            )
            return Poly.var(node.name)
        if isinstance(node, UnOp) and node.op == "-":
            return -convert(node.operand)
        if isinstance(node, BinOp):
            if node.op == "+":
                return convert(node.left) + convert(node.right)
            if node.op == "-":
                return convert(node.left) - convert(node.right)
            if node.op == "*":
                return convert(node.left) * convert(node.right)
            if node.op == "/":
                right = convert(node.right)
                if len(right.terms) == 1:
                    return convert(node.left) / right
            if node.op == "**" and isinstance(node.right, IntConst):
                if node.right.value >= 0:
                    return convert(node.left) ** node.right.value
        return _opaque(node)

    def _opaque(node: Expr) -> Poly:
        name = f"u_{_slug(str(node))}"
        unknowns.setdefault(
            name, Unknown(name, UnknownKind.PARAMETER, description=str(node))
        )
        return Poly.var(name)

    return convert(expr), unknowns


def _slug(text: str) -> str:
    keep = [c if c.isalnum() else "_" for c in text]
    slug = "".join(keep).strip("_")
    while "__" in slug:
        slug = slug.replace("__", "_")
    return slug or "expr"


def trip_count(loop: Do) -> PerfExpr:
    """Symbolic iteration count of a DO loop.

    Exact for the common cases: constant bounds evaluate numerically
    (clamped at zero), symbolic bounds give the polynomial
    ``(ub - lb + step) / step`` with trip-count bounds ``>= 0`` attached.
    """
    lb_poly, lb_unknowns = expression_poly(loop.lb)
    ub_poly, ub_unknowns = expression_poly(loop.ub)
    step_poly, step_unknowns = expression_poly(loop.step)

    if lb_poly.is_constant() and ub_poly.is_constant() and step_poly.is_constant():
        lb, ub, step = (
            lb_poly.constant_value(),
            ub_poly.constant_value(),
            step_poly.constant_value(),
        )
        if step == 0:
            raise ValueError("zero loop step")
        trips = (ub - lb + step) / step
        # Fortran trip count: floor, clamped at zero.
        count = max(0, int(trips // 1))
        return PerfExpr.const(count)

    count_poly = (ub_poly - lb_poly + step_poly) / step_poly \
        if len(step_poly.terms) == 1 else _general_trip(ub_poly, lb_poly, step_poly)
    unknowns = {**lb_unknowns, **ub_unknowns, **step_unknowns}
    bounds = {name: u.default_interval() for name, u in unknowns.items()}
    expr = PerfExpr(count_poly, bounds, unknowns)
    # A trip count is never negative; record that for sign reasoning on
    # the count itself when it is a single fresh variable.
    if len(count_poly.terms) == 1 and not count_poly.is_constant():
        variables = count_poly.variables()
        if len(variables) == 1:
            (var,) = variables
            expr = expr.with_bound(var, _nonneg(expr.bounds.get(var)))
    return expr


def _general_trip(ub: Poly, lb: Poly, step: Poly) -> Poly:
    """Non-monomial step: introduce an opaque trip-count unknown."""
    name = f"trips_{_slug(str(ub - lb))}"
    return Poly.var(name)


def _nonneg(existing: Interval | None) -> Interval:
    base = Interval.nonnegative()
    if existing is None:
        return base
    merged = existing.intersect(base)
    return merged if merged is not None else base


@dataclass
class LoopInfo:
    """One loop of a perfect nest, outermost first."""

    loop: Do
    depth: int
    index: str


def perfect_nest(loop: Do) -> list[LoopInfo]:
    """The perfect nest rooted at ``loop``.

    Returns [outer, ..., innermost]; the nest ends at the first loop
    whose body is not exactly one nested DO.
    """
    nest: list[LoopInfo] = []
    current: Stmt = loop
    depth = 0
    while isinstance(current, Do):
        nest.append(LoopInfo(current, depth, current.var))
        if len(current.body) == 1 and isinstance(current.body[0], Do):
            current = current.body[0]
            depth += 1
        else:
            break
    return nest
