"""Loop-invariant expression detection (used by LICM imitation).

An expression is invariant in a loop when it references neither the
loop index nor anything assigned inside the loop body.  The translator
has an inlined copy of this logic specialized to basic blocks; this
standalone version works on whole loop bodies (including nested control
flow) and is what the transformation engine consults.
"""

from __future__ import annotations

from ..ir.nodes import ArrayRef, Assign, Do, Expr, Stmt, VarRef
from ..ir.visitor import walk_exprs, walk_stmts

__all__ = ["assigned_names", "stored_arrays", "is_invariant"]


def assigned_names(body: tuple[Stmt, ...]) -> set[str]:
    """Scalars assigned anywhere in a statement tree (incl. loop indices)."""
    names: set[str] = set()
    for stmt in walk_stmts(body):
        if isinstance(stmt, Assign) and isinstance(stmt.target, VarRef):
            names.add(stmt.target.name)
        elif isinstance(stmt, Do):
            names.add(stmt.var)
    return names


def stored_arrays(body: tuple[Stmt, ...]) -> set[str]:
    """Arrays stored to anywhere in a statement tree."""
    names: set[str] = set()
    for stmt in walk_stmts(body):
        if isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef):
            names.add(stmt.target.name)
    return names


def is_invariant(expr: Expr, loop: Do) -> bool:
    """Is the expression invariant across iterations of ``loop``?"""
    assigned = assigned_names(loop.body) | {loop.var}
    stored = stored_arrays(loop.body)
    for node in walk_exprs(expr):
        if isinstance(node, VarRef) and node.name in assigned:
            return False
        if isinstance(node, ArrayRef) and node.name in stored:
            return False
    return True
