"""Baseline models the paper argues against: operation counting and
premature guessing."""

from .guessing import GuessPolicy, guess_all, guess_value, guessed_comparison
from .opcount import OpCountEstimator, opcount_cycles

__all__ = [
    "GuessPolicy", "OpCountEstimator", "guess_all", "guess_value",
    "guessed_comparison", "opcount_cycles",
]
