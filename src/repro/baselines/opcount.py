"""Operation-count baseline cost model.

The conventional model the paper argues against (section 1.2): add up
per-operation latencies, ignore functional-unit parallelism, operation
overlap, and coverable cycles.  "If not applied carefully, a
conventional cost estimation model may be off by a factor of ten or
more!" -- bench ``E-OPC`` measures exactly that gap on the Figure 7
kernels.

The baseline exposes the same ``estimate`` interface as
:class:`~repro.cost.StraightLineEstimator`, so it can be dropped into
the aggregator for end-to-end comparisons.
"""

from __future__ import annotations

from ..cost.costblock import CostBlock
from ..cost.estimator import BlockCost
from ..cost.placement import PlacedBlock, PlacedOp
from ..machine.machine import Machine
from ..translate.stream import Instr, InstrStream

__all__ = ["OpCountEstimator", "opcount_cycles"]


def opcount_cycles(machine: Machine, instrs: list[Instr]) -> int:
    """Serial sum of result latencies: the operation-count estimate."""
    return sum(machine.atomic(i.atomic).result_latency for i in instrs)


class OpCountEstimator:
    """Drop-in estimator that counts operations instead of placing them."""

    def __init__(self, machine: Machine, focus_span: int = 0):
        self.machine = machine
        self.focus_span = focus_span  # accepted for interface parity

    def estimate(self, stream: InstrStream) -> BlockCost:
        iterative = [i for i in stream if not i.one_time]
        invariant = [i for i in stream if i.one_time]
        cycles = opcount_cycles(self.machine, iterative)
        one_time = opcount_cycles(self.machine, invariant)
        block = _fake_block(cycles)
        return BlockCost(
            cycles=cycles,
            one_time_cycles=one_time,
            steady_cycles=cycles,  # no overlap credit, ever
            block=block,
            one_time_block=_fake_block(one_time),
            placed=_fake_placed(self.machine.name, iterative, cycles),
        )

    def estimate_unrolled(self, stream: InstrStream, factor: int) -> BlockCost:
        if factor < 1:
            raise ValueError("unroll factor must be >= 1")
        base = self.estimate(stream)
        cycles = base.cycles * factor
        return BlockCost(
            cycles=cycles,
            one_time_cycles=0,
            steady_cycles=cycles,
            block=_fake_block(cycles),
            one_time_block=CostBlock.empty(),
            placed=_fake_placed(self.machine.name, [], cycles),
        )

    def recommend_unroll(self, stream: InstrStream, candidates=(1, 2, 4, 8)) -> int:
        # Counting ops can never see a benefit from unrolling.
        return 1


def _fake_block(cycles: int) -> CostBlock:
    if cycles == 0:
        return CostBlock.empty()
    # A degenerate single-column block: the baseline has no shape info.
    from ..machine.units import UnitKind

    return CostBlock(
        lo=0,
        occupied_hi=cycles,
        completion=cycles,
        bin_profiles={(UnitKind.ALU, 0): (0, cycles - 1)},
        bin_occupancy={(UnitKind.ALU, 0): cycles},
    )


def _fake_placed(machine_name: str, instrs: list[Instr], cycles: int) -> PlacedBlock:
    ops = tuple(PlacedOp(instr, t, t) for t, instr in enumerate(instrs))
    return PlacedBlock(machine_name=machine_name, ops=ops,
                       block=_fake_block(cycles))
