"""The premature-guessing baseline (contrast for paper section 3).

"In traditional compilers, when there are unknowns in the control
structures, the compilers guess the values of the unknowns (or the
reaching probabilities).  Although this makes the performance
comparison simple (comparing two numbers), the results are highly
unreliable."

This module is that traditional compiler: it collapses every unknown in
a performance expression to a fixed guess the moment it is asked to
compare anything.  Bench ``E-SYM`` quantifies how often the guesses
pick the wrong transformation where the symbolic comparison does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..symbolic.expr import PerfExpr, UnknownKind

__all__ = ["GuessPolicy", "guess_value", "guess_all", "guessed_comparison"]


@dataclass(frozen=True)
class GuessPolicy:
    """Default guesses, by unknown kind (classic compiler folklore)."""

    trip_count: Fraction = Fraction(100)     # "loops run 100 times"
    loop_bound: Fraction = Fraction(100)
    branch_probability: Fraction = Fraction(1, 2)
    split_point: Fraction = Fraction(50)
    parameter: Fraction = Fraction(100)
    machine: Fraction = Fraction(1)


def guess_value(kind: UnknownKind, policy: GuessPolicy) -> Fraction:
    return {
        UnknownKind.TRIP_COUNT: policy.trip_count,
        UnknownKind.LOOP_BOUND: policy.loop_bound,
        UnknownKind.BRANCH_PROB: policy.branch_probability,
        UnknownKind.SPLIT_POINT: policy.split_point,
        UnknownKind.PARAMETER: policy.parameter,
        UnknownKind.MACHINE: policy.machine,
    }[kind]


def guess_all(expr: PerfExpr, policy: GuessPolicy | None = None) -> Fraction:
    """Collapse every unknown to its guess; returns a plain number."""
    policy = policy if policy is not None else GuessPolicy()
    bindings = {}
    for name in expr.poly.variables():
        unknown = expr.unknowns.get(name)
        kind = unknown.kind if unknown is not None else UnknownKind.PARAMETER
        bindings[name] = guess_value(kind, policy)
    return expr.poly.evaluate(bindings)


def guessed_comparison(
    first: PerfExpr,
    second: PerfExpr,
    policy: GuessPolicy | None = None,
) -> int:
    """-1 if first is guessed cheaper, +1 if second, 0 on a tie.

    This is the "comparing two numbers" decision procedure the paper
    criticizes; it answers instantly and is wrong whenever the real
    regime differs from the guesses.
    """
    a = guess_all(first, policy)
    b = guess_all(second, policy)
    if a < b:
        return -1
    if a > b:
        return 1
    return 0
