"""Reference back-end facade: schedule + spills -> ground-truth cycles.

``simulate`` is what every benchmark calls to obtain the "measured"
column of the paper's Figure 7: it inserts spill code where the block's
liveness exceeds the register file, then list-schedules the result on
the machine description.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.machine import Machine
from ..translate.stream import Instr, InstrStream
from .regalloc import insert_spills
from .scheduler import Schedule, list_schedule

__all__ = ["SimResult", "simulate", "simulate_loop"]


@dataclass(frozen=True)
class SimResult:
    """Ground-truth execution summary of one basic block."""

    cycles: int
    instructions: int
    ipc: float
    spill_stores: int
    spill_loads: int
    schedule: Schedule


def simulate(
    machine: Machine,
    stream: InstrStream | list[Instr],
    dispatch_width: int | None = None,
    with_spills: bool = True,
) -> SimResult:
    """Reference cycle count for one execution of a basic block."""
    if isinstance(stream, list):
        from ..translate.stream import reindex

        wrapped = InstrStream(machine_name=machine.name)
        for instr in reindex(stream):
            wrapped.append(instr.atomic, instr.deps, instr.tag, instr.one_time)
        stream = wrapped
    if with_spills:
        spilled = insert_spills(machine, stream)
        run_stream = spilled.stream
        stores, loads = spilled.spill_stores, spilled.spill_loads
    else:
        run_stream, stores, loads = stream, 0, 0
    schedule = list_schedule(machine, run_stream, dispatch_width)
    return SimResult(
        cycles=schedule.cycles,
        instructions=schedule.instructions,
        ipc=schedule.ipc,
        spill_stores=stores,
        spill_loads=loads,
        schedule=schedule,
    )


def simulate_loop(
    machine: Machine,
    stream: InstrStream,
    iterations: int,
    carried_latency: int = 0,
    dispatch_width: int | None = None,
) -> SimResult:
    """Ground truth for a loop: replicate the body ``iterations`` times.

    Iteration ``k+1``'s instructions depend on iteration ``k`` only
    through the recurrence (``carried_latency`` > 0 chains the last
    instruction of each copy), mirroring how the real pipeline overlaps
    iterations.  One-time instructions appear once, up front.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    merged = InstrStream(machine_name=machine.name, label=stream.label)
    one_time = [i for i in stream if i.one_time]
    iterative = [i for i in stream if not i.one_time]
    remap: dict[int, int] = {}
    for instr in one_time:
        copied = merged.append(instr.atomic, tuple(
            remap[d] for d in instr.deps if d in remap
        ), tag=instr.tag)
        remap[instr.index] = copied.index
    prev_anchor: int | None = None
    for _ in range(iterations):
        local: dict[int, int] = dict(remap)
        last_index: int | None = None
        for instr in iterative:
            deps = [local[d] for d in instr.deps if d in local]
            if carried_latency and prev_anchor is not None and not deps:
                # The recurrence forces the new iteration's chain head to
                # wait for the previous accumulation.
                pass
            copied = merged.append(instr.atomic, tuple(deps), tag=instr.tag)
            local[instr.index] = copied.index
            last_index = copied.index
        if carried_latency and prev_anchor is not None and last_index is not None:
            # Chain the accumulators: simplest faithful recurrence model.
            merged.instrs[-1] = Instr(
                last_index,
                merged.instrs[-1].atomic,
                tuple(sorted(set(merged.instrs[-1].deps) | {prev_anchor})),
                merged.instrs[-1].tag,
            )
        prev_anchor = last_index
    return simulate(machine, merged, dispatch_width)
