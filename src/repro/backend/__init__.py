"""Reference back-end: the ground-truth substitute for IBM xlf listings."""

from .regalloc import SpillResult, insert_spills
from .scheduler import Schedule, list_schedule
from .simulator import SimResult, simulate, simulate_loop

__all__ = [
    "Schedule", "SimResult", "SpillResult", "insert_spills",
    "list_schedule", "simulate", "simulate_loop",
]
