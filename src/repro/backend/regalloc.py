"""Spill insertion for the reference back-end path.

A simple linear-scan-style pass over the instruction stream: values are
live from definition to last use; when the number of simultaneously
live floating-point or integer values exceeds the register file, the
value with the furthest next use is spilled (Belady) -- a store is
inserted at the spill point and a reload before the next use.

The estimator approximates this with the paper's "store after N loads"
heuristic; the reference path actually performs it, so the Figure 7
comparison includes realistic spill traffic on register-starved blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.machine import Machine
from ..translate.stream import InstrStream

__all__ = ["SpillResult", "insert_spills"]

_RESERVED = 4


@dataclass
class SpillResult:
    """The augmented stream and how many spills were inserted."""

    stream: InstrStream
    spill_stores: int
    spill_loads: int


def _is_float_producer(atomic: str) -> bool:
    return atomic.startswith("fpu") or "fadd" in atomic or "fmul" in atomic or atomic == "lsu_load" or atomic.startswith("alu_f") or atomic == "alu_load"


def insert_spills(machine: Machine, stream: InstrStream) -> SpillResult:
    """Insert spill stores/reloads where liveness exceeds the registers.

    Works on stream order (the order the translator emitted, which is
    also roughly source order); the scheduler then runs the augmented
    stream.  Values are tracked uniformly in one pool sized by the FP
    register file -- FP traffic dominates the modeled kernels.
    """
    budget = max(machine.fp_registers - _RESERVED, 2)
    instrs = list(stream)
    last_use: dict[int, int] = {}
    uses: dict[int, list[int]] = {}
    for instr in instrs:
        for dep in instr.deps:
            last_use[dep] = instr.index
            uses.setdefault(dep, []).append(instr.index)

    out = InstrStream(machine_name=stream.machine_name, label=stream.label)
    remap: dict[int, int] = {}          # old index -> current value index
    live: dict[int, int] = {}           # old index -> next-use position
    spilled: set[int] = set()
    spill_stores = 0
    spill_loads = 0

    def next_use_after(old: int, position: int) -> int:
        for use in uses.get(old, []):
            if use > position:
                return use
        return 1 << 30

    for instr in instrs:
        # Reload any spilled operands first.
        for dep in instr.deps:
            if dep in spilled:
                reload = out.append(
                    _load_atomic(machine), (), tag=f"reload v{dep}",
                    one_time=instr.one_time,
                )
                remap[dep] = reload.index
                spilled.discard(dep)
                live[dep] = next_use_after(dep, instr.index)
                spill_loads += 1
        new_deps = [remap[d] for d in instr.deps if d in remap]
        copied = out.append(
            instr.atomic, tuple(new_deps), tag=instr.tag, one_time=instr.one_time
        )
        remap[instr.index] = copied.index
        if instr.index in last_use:
            live[instr.index] = next_use_after(instr.index, instr.index)
        # Expire values whose last use has passed.
        for old in [o for o, until in live.items() if until <= instr.index]:
            del live[old]
        # Spill while over budget (furthest next use goes first).
        while len(live) > budget:
            victim = max(live, key=lambda o: live[o])
            out.append(
                _store_atomic(machine), (remap[victim],),
                tag=f"spill v{victim}", one_time=instr.one_time,
            )
            spilled.add(victim)
            del live[victim]
            spill_stores += 1

    return SpillResult(out, spill_stores, spill_loads)


def _load_atomic(machine: Machine) -> str:
    from ..translate.atomic_map import resolve_basic_op

    return resolve_basic_op(machine, "fload")[0]


def _store_atomic(machine: Machine) -> str:
    from ..translate.atomic_map import resolve_basic_op

    return resolve_basic_op(machine, "fstore")[0]
