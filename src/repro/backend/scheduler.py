"""Reference list scheduler: the ground-truth substitute for IBM xlf.

The paper validates its estimates against cycle counts from the IBM xlf
back-end (`-qdebug=cycles` listings).  Offline, we substitute a real
instruction scheduler over the same machine description: critical-path
list scheduling with a finite dispatch width and per-pipeline busy
tracking.  It *schedules* rather than *estimates* -- a genuinely
different computation from the estimator's lowest-slot placement -- so
prediction error against it is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.machine import Machine
from ..machine.units import UnitKind
from ..translate.stream import Instr, InstrStream

__all__ = ["Schedule", "list_schedule"]


@dataclass
class Schedule:
    """The scheduler's verdict for one basic block."""

    issue_time: dict[int, int] = field(default_factory=dict)
    completion: dict[int, int] = field(default_factory=dict)
    cycles: int = 0

    @property
    def instructions(self) -> int:
        return len(self.issue_time)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def _critical_path_priority(machine: Machine, instrs: list[Instr]) -> dict[int, int]:
    """Height of each instruction: latency of the longest path it roots."""
    users: dict[int, list[int]] = {i.index: [] for i in instrs}
    for instr in instrs:
        for dep in instr.deps:
            users[dep].append(instr.index)
    height: dict[int, int] = {}
    for instr in reversed(instrs):
        latency = machine.atomic(instr.atomic).result_latency
        below = max((height[u] for u in users[instr.index]), default=0)
        height[instr.index] = latency + below
    return height


def list_schedule(
    machine: Machine,
    instrs: list[Instr] | InstrStream,
    dispatch_width: int | None = None,
) -> Schedule:
    """Cycle-driven critical-path list scheduling.

    Each cycle, ready instructions (operands complete) are considered in
    priority order; at most ``dispatch_width`` issue per cycle, and each
    needs every required pipeline free for its noncoverable duration.
    """
    if isinstance(instrs, InstrStream):
        instrs = list(instrs)
    if not instrs:
        return Schedule()
    width = dispatch_width if dispatch_width is not None else machine.dispatch_width
    if width < 1:
        raise ValueError("dispatch width must be positive")

    priority = _critical_path_priority(machine, instrs)
    by_index = {i.index: i for i in instrs}
    pending = set(by_index)
    # busy[pipe] = first cycle at which the pipe is free again.
    busy: dict[tuple[UnitKind, int], int] = {b: 0 for b in machine.bins()}
    pipes_of: dict[UnitKind, list[tuple[UnitKind, int]]] = {}
    for bin_id in machine.bins():
        pipes_of.setdefault(bin_id[0], []).append(bin_id)

    schedule = Schedule()
    cycle = 0
    guard = 0
    while pending:
        guard += 1
        if guard > 10_000_000:
            raise RuntimeError("scheduler failed to converge")
        ready = [
            idx for idx in pending
            if all(schedule.completion.get(d, 1 << 60) <= cycle
                   for d in by_index[idx].deps)
        ]
        ready.sort(key=lambda idx: (-priority[idx], idx))
        issued = 0
        for idx in ready:
            if issued >= width:
                break
            instr = by_index[idx]
            op = machine.atomic(instr.atomic)
            chosen: list[tuple[UnitKind, int]] = []
            ok = True
            for cost in op.costs:
                if cost.noncoverable == 0:
                    continue
                free = [p for p in pipes_of[cost.unit]
                        if busy[p] <= cycle and p not in chosen]
                if not free:
                    ok = False
                    break
                chosen.append(free[0])
            if not ok:
                continue
            for cost, pipe in zip(
                [c for c in op.costs if c.noncoverable > 0], chosen
            ):
                busy[pipe] = cycle + cost.noncoverable
            schedule.issue_time[idx] = cycle
            schedule.completion[idx] = cycle + op.result_latency
            pending.discard(idx)
            issued += 1
        cycle += 1

    schedule.cycles = max(schedule.completion.values()) - min(
        schedule.issue_time.values()
    )
    return schedule
