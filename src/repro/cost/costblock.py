"""Cost blocks: the shape of a placed basic block (paper Figure 8).

"The first and last occupied time slots in functional units define the
actual cost of a basic block and the area they enclosed is called the
cost block. ... The shape of the cost block reveals many useful
information that can be used to combine costs of adjacent basic blocks
or aggregate costs of compound statements." (section 2.4.2)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.units import UnitKind

__all__ = ["CostBlock"]

BinId = tuple[UnitKind, int]


@dataclass(frozen=True)
class CostBlock:
    """Shape summary of one placed basic block.

    ``lo``           -- lowest occupied time slot;
    ``occupied_hi``  -- one past the highest occupied slot;
    ``completion``   -- the time at which every result is available
                        (occupied_hi plus trailing coverable latency);
    ``bin_profiles`` -- per-bin (first, last) occupied slots for bins
                        that were used at all.
    """

    lo: int
    occupied_hi: int
    completion: int
    bin_profiles: dict[BinId, tuple[int, int]] = field(default_factory=dict)
    bin_occupancy: dict[BinId, int] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "CostBlock":
        return cls(lo=0, occupied_hi=0, completion=0)

    @property
    def is_empty(self) -> bool:
        return not self.bin_profiles

    @property
    def cycles(self) -> int:
        """Total cost: highest minus lowest slot, counting the trailing
        coverable cycles of the final operations (a lone fadd costs 2)."""
        return self.completion - self.lo if not self.is_empty else 0

    @property
    def occupied_cycles(self) -> int:
        """Extent of the solid (noncoverable) region only."""
        return self.occupied_hi - self.lo if not self.is_empty else 0

    # -- shape queries (used for overlap, unrolling, branch decisions) ----
    def bottom_gap(self, bin_id: BinId) -> int | None:
        """Empty slots at the bottom of one bin (None if bin unused)."""
        profile = self.bin_profiles.get(bin_id)
        if profile is None:
            return None
        return profile[0] - self.lo

    def top_gap(self, bin_id: BinId) -> int | None:
        """Empty slots at the top of one bin (None if bin unused)."""
        profile = self.bin_profiles.get(bin_id)
        if profile is None:
            return None
        return self.occupied_hi - 1 - profile[1]

    def used_bins(self) -> set[BinId]:
        return set(self.bin_profiles)

    def critical_bins(self) -> list[BinId]:
        """Bins with the highest occupancy -- the resource bottleneck."""
        if not self.bin_occupancy:
            return []
        best = max(self.bin_occupancy.values())
        return [b for b, occ in self.bin_occupancy.items() if occ == best and occ > 0]

    def density(self, bin_id: BinId) -> float:
        """Occupied / span ratio of one bin over the block extent.

        The paper: "By checking the ratio of the occupied and empty
        slots in the critical functional bin(s), the compiler can decide
        whether statement reordering and loop unrolling are beneficial."
        """
        span = self.occupied_cycles
        if span == 0:
            return 0.0
        return self.bin_occupancy.get(bin_id, 0) / span

    def unroll_headroom(self) -> float:
        """1 - density of the critical bin: how much an unroll could fill."""
        critical = self.critical_bins()
        if not critical:
            return 0.0
        return 1.0 - max(self.density(b) for b in critical)

    def __str__(self) -> str:
        bins = ", ".join(
            f"{kind.value}{pipe}:[{first},{last}]"
            for (kind, pipe), (first, last) in sorted(
                self.bin_profiles.items(), key=lambda kv: (kv[0][0].value, kv[0][1])
            )
        )
        return (
            f"CostBlock(cycles={self.cycles}, occupied=[{self.lo},"
            f"{self.occupied_hi}), completion={self.completion}, {bins})"
        )
