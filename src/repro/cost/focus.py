"""Focus-span policies (paper section 2.1).

The focus span bounds how far below the top of the bins the placement
search may reach.  A small span is faster and models a compiler with a
small reordering window; a large span is slower and models aggressive
global scheduling.  Bench ``E-FOCUS`` sweeps the trade-off.
"""

from __future__ import annotations

from .placement import DEFAULT_FOCUS_SPAN

__all__ = ["FAST_SPAN", "DEFAULT_SPAN", "EXHAUSTIVE_SPAN", "recommended_span"]

#: Cheap, bounded-accuracy analysis (tight compile-time budget).
FAST_SPAN = 8
#: The default balance.
DEFAULT_SPAN = DEFAULT_FOCUS_SPAN
#: Effectively unbounded search (placement becomes pure first-fit).
EXHAUSTIVE_SPAN = 1 << 20


def recommended_span(stream_length: int) -> int:
    """A span that keeps placement effectively linear in practice.

    Longer blocks leave deeper holes worth revisiting; cap at the
    default so that the promise of repeated cheap estimator calls
    (requirement "Efficiency", section 1.3) holds.
    """
    if stream_length <= 16:
        return FAST_SPAN
    return min(DEFAULT_SPAN, max(FAST_SPAN, stream_length // 2))
