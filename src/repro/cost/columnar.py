"""Columnar stream lowering and the fused multi-bin placement kernel.

Placement (paper section 2.1) is the hottest loop in the repo: every
predict, every beam-search round, and every service request funnels
through it.  The legacy path (:meth:`repro.cost.bins.BinSet.place`,
kept as the differential oracle) pays, per instruction, a
``machine.atomic(name)`` dict lookup, a fresh ``needed = [...]`` list
allocation, and a chain of method calls (``place`` -> ``_best_pipe`` ->
``next_fit`` -> ``_block_containing``) that restarts the whole per-pipe
walk from scratch each time the candidate time bumps.

This module compiles both invariants out of the inner loop:

* a :class:`CompiledStream` lowers an instruction list into flat
  parallel ``array('q')`` columns -- dense op ids, dep index ranges
  into one shared dep array, one-time flags -- built once per
  (machine fingerprint, stream digest) and reused across beam rounds
  and cache misses (a bounded memo, ``columnar_cache_stats``);
* :func:`drop_columns` is the fused multi-bin Tetris drop: it walks
  the signed-block free lists of all required pipes in lockstep,
  caching each component's earliest feasible start and recomputing
  only the components that are *not* yet feasible at the bumped
  candidate (the binding units), instead of re-running every pipe's
  ``next_fit`` from the new floor.

The kernel is bit-identical to the legacy path -- same landing times,
same pipe choices, same bin state -- which
``tests/cost/test_placement_property.py`` and the E-KERNEL bench
verify against both the legacy implementation and a brute-force
dense-grid oracle.  The identity argument, in one paragraph: the
legacy restart loop converges to the smallest ``t >= earliest`` that
is simultaneously feasible for every component (each restart jumps to
``max`` of per-component ``next_fit`` values, which never overshoots
the answer and never revisits an infeasible slot), and ties between
pipes break toward the first pipe in machine order whose run fits at
``t``.  The fused kernel computes exactly that fixpoint: a component
whose cached candidate equals the bumped ``t`` is already feasible
there with the same first-fitting pipe (any earlier pipe had no fit
below its own, larger, candidate), so skipping its recomputation
cannot change the result.
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple, Sequence

from ..machine.compiled import CompiledOps, compile_ops
from ..machine.machine import Machine
from ..translate.stream import Instr, placement_digest
from .bins import BinSet

__all__ = [
    "COLUMNAR_CACHE_LIMIT",
    "CompiledStream",
    "StreamSummary",
    "columnar_cache_stats",
    "compile_stream",
    "drop_columns",
    "drop_range",
    "reset_columnar_cache",
]


class StreamSummary(NamedTuple):
    """Aggregate view of one compiled stream's columns.

    Everything here falls out of the single lowering pass, so callers
    that need histogram/dependence statistics (the learned surrogate's
    feature extractor, telemetry summaries) read this instead of
    re-walking the ``array('q')`` columns per use.  Counts are keyed by
    the machine's dense op ids -- resolve names via
    :attr:`CompiledOps.names`.
    """

    length: int                 #: instruction count
    op_counts: tuple[int, ...]  #: per dense op id, len == len(ops.names)
    dep_edges: int              #: resolved dependence edges
    dep_dist_sum: int           #: sum of producer->consumer distances
    dep_dist_max: int           #: longest producer->consumer distance
    one_time: int               #: loop-invariant instructions
    latency_sum: int            #: sum of result latencies
    noncoverable_sum: int       #: sum of noncoverable unit cycles


@dataclass(frozen=True)
class CompiledStream:
    """Flat columnar view of one instruction stream on one machine."""

    fingerprint: str          #: machine fingerprint the op ids belong to
    digest: str               #: placement digest of the stream
    instrs: tuple[Instr, ...]  #: originals, for PlacedOp construction
    op_ids: array             #: 'q' column: dense op id per instruction
    dep_ptr: array            #: 'q' column, n+1 entries: deps[dep_ptr[i]:dep_ptr[i+1]]
    #: 'q' shared dependence-edge array.  Entries are stream *positions*
    #: (not ``Instr.index`` values): lowering resolves each dep to the
    #: latest earlier instruction with that index and drops unresolvable
    #: deps, mirroring the legacy ``completions.get(dep, 0)`` semantics.
    deps: array
    one_time: array           #: 'b' column: loop-invariant flags
    summary: StreamSummary    #: column aggregates, built during lowering

    def __len__(self) -> int:
        return len(self.instrs)


# ----------------------------------------------------------------------
# Compiled-stream memo
#
# Beam rounds and service batches place the same few hundred distinct
# streams over and over; lowering is O(n) but the columns are immutable,
# so a bounded LRU keyed (machine fingerprint, stream digest) makes the
# second and every later lowering a dict lookup.

COLUMNAR_CACHE_LIMIT = 4096

_cache: OrderedDict[tuple[str, str], CompiledStream] = OrderedDict()
_cache_lock = threading.Lock()
_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0


def columnar_cache_stats() -> dict[str, int]:
    """Snapshot of the compiled-stream memo's counters and size."""
    with _cache_lock:
        return {
            "hits": _cache_hits,
            "misses": _cache_misses,
            "evictions": _cache_evictions,
            "entries": len(_cache),
        }


def reset_columnar_cache() -> None:
    """Drop all compiled streams and zero the counters."""
    global _cache_hits, _cache_misses, _cache_evictions
    with _cache_lock:
        _cache.clear()
        _cache_hits = _cache_misses = _cache_evictions = 0


def compile_stream(
    machine: Machine,
    instrs: Sequence[Instr],
    digest: str | None = None,
    *,
    fingerprint: str | None = None,
) -> CompiledStream:
    """Lower ``instrs`` to columns, reusing the memo when possible.

    ``digest`` / ``fingerprint`` let callers that already computed them
    (the placement memo does) skip the re-hash.
    """
    global _cache_hits, _cache_misses, _cache_evictions
    ops = compile_ops(machine, fingerprint)
    if digest is None:
        digest = placement_digest(instrs)
    key = (ops.fingerprint, digest)
    with _cache_lock:
        hit = _cache.get(key)
        if hit is not None:
            _cache.move_to_end(key)
            _cache_hits += 1
            return hit
        _cache_misses += 1
    compiled = _lower(ops, instrs, digest)
    with _cache_lock:
        _cache[key] = compiled
        while len(_cache) > COLUMNAR_CACHE_LIMIT:
            _cache.popitem(last=False)
            _cache_evictions += 1
    return compiled


def _lower(ops: CompiledOps, instrs: Sequence[Instr],
           digest: str) -> CompiledStream:
    index_of = ops.index_of
    latency = ops.latency
    components = ops.components
    op_ids = array("q", bytes(0))
    dep_ptr = array("q", [0])
    deps = array("q", bytes(0))
    one_time = array("b", bytes(0))
    last_pos: dict[int, int] = {}
    counts = [0] * len(ops.names)
    dep_edges = dep_dist_sum = dep_dist_max = 0
    one_time_count = latency_sum = noncoverable_sum = 0
    for pos, instr in enumerate(instrs):
        oid = index_of[instr.atomic]
        op_ids.append(oid)
        counts[oid] += 1
        latency_sum += latency[oid]
        comps = components[oid]
        if comps:
            for _slot, length in comps:
                noncoverable_sum += length
        for dep in instr.deps:
            p = last_pos.get(dep, -1)
            if p >= 0:
                deps.append(p)
                dep_edges += 1
                dist = pos - p
                dep_dist_sum += dist
                if dist > dep_dist_max:
                    dep_dist_max = dist
        dep_ptr.append(len(deps))
        if instr.one_time:
            one_time.append(1)
            one_time_count += 1
        else:
            one_time.append(0)
        last_pos[instr.index] = pos
    return CompiledStream(
        fingerprint=ops.fingerprint,
        digest=digest,
        instrs=tuple(instrs),
        op_ids=op_ids,
        dep_ptr=dep_ptr,
        deps=deps,
        one_time=one_time,
        summary=StreamSummary(
            length=len(op_ids),
            op_counts=tuple(counts),
            dep_edges=dep_edges,
            dep_dist_sum=dep_dist_sum,
            dep_dist_max=dep_dist_max,
            one_time=one_time_count,
            latency_sum=latency_sum,
            noncoverable_sum=noncoverable_sum,
        ),
    )


# ----------------------------------------------------------------------
# The fused kernel


def _next_fit(arr, start: int, length: int) -> int:
    """Inlined ``SlotArray.next_fit``: block walk over the raw cells.

    Behaviourally identical to the method (including the search-hint
    update at the containing block); exists so the kernel's innermost
    loop costs one function call per pipe probe instead of three.
    """
    cells = arr.cells
    capacity = len(cells)
    if start >= capacity:
        return start
    pos = arr._hint
    if pos > start:
        pos = 0
    while True:
        value = cells[pos]
        size = value if value > 0 else -value
        if pos + size > start:
            break
        pos += size
    arr._hint = pos
    block_start = pos
    filled = value > 0
    while True:
        if not filled:
            usable = block_start if block_start > start else start
            block_end = block_start + size
            if block_end >= capacity:
                return usable          # final empty block: implicitly infinite
            if block_end - usable >= length:
                return usable
        block_start += size
        if block_start >= capacity:
            return block_start if block_start > start else start
        value = cells[block_start]
        size = value if value > 0 else -value
        filled = value > 0


def _fill_run(arr, start: int, length: int) -> None:
    """Inlined ``SlotArray.fill`` for a run known to be free.

    The kernel only fills at positions ``_next_fit`` just returned, so
    the emptiness re-validation (and its extra block walks) that the
    public method pays is provably redundant here.  Cell writes, growth
    policy, hint retreat, and the filled bookkeeping all mirror the
    method exactly -- the differential tests compare the resulting bin
    state field by field.
    """
    cells = arr.cells
    capacity = len(cells)
    needed = start + length
    if needed > capacity:
        doubled = capacity * 2
        new_capacity = needed if needed > doubled else doubled
        extra = new_capacity - capacity
        last_value = cells[capacity - 1]
        cells.extend([0] * extra)
        if last_value < 0:
            size = -last_value
            value = -(size + extra)
            cells[capacity - size] = value
        else:
            value = -extra
            cells[capacity] = value
        cells[new_capacity - 1] = value
        capacity = new_capacity
    pos = arr._hint
    if pos > start:
        pos = 0
    while True:
        value = cells[pos]
        size = value if value > 0 else -value
        if pos + size > start:
            break
        pos += size
    block_start = pos
    block_end = block_start + size
    fill_end = start + length
    new_start = start
    new_len = length
    rewritten_end = block_end
    if block_start < start:
        value = -(start - block_start)
        cells[block_start] = value
        cells[start - 1] = value
    elif block_start > 0 and cells[block_start - 1] > 0:
        prev_size = cells[block_start - 1]
        new_start = block_start - prev_size
        new_len += prev_size
    if fill_end < block_end:
        value = -(block_end - fill_end)
        cells[fill_end] = value
        cells[block_end - 1] = value
    elif fill_end < capacity and cells[fill_end] > 0:
        next_size = cells[fill_end]
        new_len += next_size
        rewritten_end = fill_end + next_size
    cells[new_start] = new_len
    cells[new_start + new_len - 1] = new_len
    if new_start <= arr._hint <= rewritten_end:
        arr._hint = new_start
    arr.filled_total += length
    lowest = arr._lowest_filled
    if lowest is None or start < lowest:
        arr._lowest_filled = start
    highest = arr._highest_filled
    if highest is None or fill_end - 1 > highest:
        arr._highest_filled = fill_end - 1


def _drop_single(arr, start: int, length: int) -> int:
    """Find the next fit *and* fill it, in one block walk.

    The single-component, single-pipe case (every op on a machine with
    one pipe per unit) has no restart loop and no pipe choice: the
    first feasible slot is the answer, so the search already stands on
    the empty block that ``_fill_run`` would re-walk to.  Growth and
    the implicit tail fall back to :func:`_fill_run`; the common
    in-capacity fill splits/merges right here.  Returns the slot.
    """
    cells = arr.cells
    capacity = len(cells)
    block_start = -1
    if start >= capacity:
        t = start
    else:
        pos = arr._hint
        if pos > start:
            pos = 0
        while True:
            value = cells[pos]
            size = value if value > 0 else -value
            if pos + size > start:
                break
            pos += size
        arr._hint = pos
        block_start = pos
        filled = value > 0
        while True:
            if not filled:
                usable = block_start if block_start > start else start
                block_end = block_start + size
                if block_end >= capacity or block_end - usable >= length:
                    t = usable
                    break
            block_start += size
            if block_start >= capacity:
                t = block_start if block_start > start else start
                block_start = -1
                break
            value = cells[block_start]
            size = value if value > 0 else -value
            filled = value > 0
    fill_end = t + length
    if block_start < 0 or fill_end > capacity:
        _fill_run(arr, t, length)
        return t
    block_end = block_start + size
    new_start = t
    new_len = length
    rewritten_end = block_end
    if block_start < t:
        value = -(t - block_start)
        cells[block_start] = value
        cells[t - 1] = value
    elif block_start > 0 and cells[block_start - 1] > 0:
        prev_size = cells[block_start - 1]
        new_start = block_start - prev_size
        new_len += prev_size
    if fill_end < block_end:
        value = -(block_end - fill_end)
        cells[fill_end] = value
        cells[block_end - 1] = value
    elif fill_end < capacity and cells[fill_end] > 0:
        next_size = cells[fill_end]
        new_len += next_size
        rewritten_end = fill_end + next_size
    cells[new_start] = new_len
    cells[new_start + new_len - 1] = new_len
    if new_start <= arr._hint <= rewritten_end:
        arr._hint = new_start
    arr.filled_total += length
    lowest = arr._lowest_filled
    if lowest is None or t < lowest:
        arr._lowest_filled = t
    highest = arr._highest_filled
    if highest is None or fill_end - 1 > highest:
        arr._highest_filled = fill_end - 1
    return t


def _resolve(ops: CompiledOps, bin_set: BinSet):
    """Bind each op's components to the bin set's actual slot arrays."""
    arrays = bin_set.arrays
    by_kind = [tuple(arrays[b] for b in pipe_ids) for pipe_ids in ops.pipes]
    resolved: list[tuple[tuple[tuple, int], ...] | None] = []
    for comps in ops.components:
        if comps is None:
            resolved.append(None)
        else:
            resolved.append(tuple((by_kind[slot], length)
                                  for slot, length in comps))
    return resolved


def drop_columns(
    stream: CompiledStream,
    ops: CompiledOps,
    bin_set: BinSet,
    focus_span: int,
) -> tuple[list[int], list[int]]:
    """Place a compiled stream; returns (start time, completion) columns.

    Mutates ``bin_set`` exactly as the legacy per-instruction
    ``BinSet.place`` loop would (same fills, same running top).
    """
    n = len(stream.instrs)
    times = [0] * n
    completions = [0] * n
    drop_range(stream.op_ids, stream.dep_ptr, stream.deps, ops,
               _resolve(ops, bin_set), bin_set, focus_span,
               times, completions, 0, n)
    return times, completions


def drop_range(
    op_ids,
    dep_ptr,
    dep_col,
    ops: CompiledOps,
    resolved,
    bin_set: BinSet,
    focus_span: int,
    times: list[int],
    completions: list[int],
    lo: int,
    hi: int,
) -> None:
    """The fused drop over instructions ``[lo, hi)`` of raw columns.

    This is :func:`drop_columns` with the stream columns unbundled and
    the iteration range made explicit, which is what the batch
    placement arena (:mod:`repro.cost.arena`) needs: it concatenates
    many streams into one set of columns (dep entries rebased to global
    positions) and resumes a stream's drop at its shared-prefix
    boundary, with ``times``/``completions[0:lo]`` and ``bin_set``
    restored from a snapshot.  ``resolved`` is
    ``_resolve(ops, bin_set)`` -- component bindings are per
    :class:`BinSet`, so a caller that clones bins must re-resolve.

    With ``lo=0``, ``hi=n``, and zeroed output columns this is the
    exact ``drop_columns`` loop -- same fills, same running top, same
    tie-breaks -- which is what keeps the arena bit-identical to the
    per-stream kernels by construction.
    """
    latency = ops.latency
    names = ops.names
    top = bin_set._top
    j = dep_ptr[lo]

    for i in range(lo, hi):
        oid = op_ids[i]
        # Ready time: the max completion of this op's producers.  The
        # dep column is consumed left to right, so a rolling pointer
        # replaces two index loads per instruction.
        ready = 0
        j_end = dep_ptr[i + 1]
        while j < j_end:
            done = completions[dep_col[j]]
            if done > ready:
                ready = done
            j += 1
        # Focus-span floor against the *running* top, as legacy does.
        floor = top - focus_span
        t = ready if ready > floor else floor
        if t < 0:
            t = 0
        comps = resolved[oid]
        if comps is None:
            raise KeyError(
                f"atomic op {names[oid]} needs a unit this machine lacks")
        if comps:
            ncomp = len(comps)
            if ncomp == 1:
                pipes, length = comps[0]
                if len(pipes) == 1:
                    t = _drop_single(pipes[0], t, length)
                    end = t + length
                    if end > top:
                        top = end
                    times[i] = t
                    completions[i] = t + latency[oid]
                    continue
                else:
                    best = -1
                    arr = None
                    for pipe in pipes:
                        c = _next_fit(pipe, t, length)
                        if best < 0 or c < best:
                            best, arr = c, pipe
                            if c == t:
                                break
                    t = best
                _fill_run(arr, t, length)
                end = t + length
                if end > top:
                    top = end
            else:
                cand = [0] * ncomp
                chosen: list = [None] * ncomp
                first = True
                while True:
                    worst = t
                    for ci in range(ncomp):
                        # A component whose cached candidate equals the
                        # bumped t is already feasible there, with the
                        # same first-fitting pipe: skip it.
                        if not first and cand[ci] == t:
                            continue
                        pipes, length = comps[ci]
                        best = -1
                        barr = None
                        for pipe in pipes:
                            c = _next_fit(pipe, t, length)
                            if best < 0 or c < best:
                                best, barr = c, pipe
                                if c == t:
                                    break
                        cand[ci] = best
                        chosen[ci] = barr
                        if best > worst:
                            worst = best
                    first = False
                    if worst == t:
                        break
                    t = worst
                for ci in range(ncomp):
                    length = comps[ci][1]
                    _fill_run(chosen[ci], t, length)
                    end = t + length
                    if end > top:
                        top = end
        times[i] = t
        completions[i] = t + latency[oid]

    bin_set._top = top
