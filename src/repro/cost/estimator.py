"""Straight-line cost estimator: the public face of the Tetris model.

Combines placement, the one-time/iterative split (loop-invariant code
is dropped into a *separate* pair of bins, per section 2.2.2: "Two
functional bins are used to count the one-time and iterative costs
separately"), steady-state iteration overlap, and the two
unroll-estimation methods of section 2.2.2 (shape inspection and
repeated dropping).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.compiled import compile_ops
from ..machine.machine import Machine
from ..translate.stream import Instr, InstrStream, reindex
from .columnar import compile_stream
from .costblock import CostBlock
from .overlap import steady_state_cycles
from .placement import DEFAULT_FOCUS_SPAN, PlacedBlock, place_stream

__all__ = ["BlockCost", "StraightLineEstimator"]


@dataclass(frozen=True)
class BlockCost:
    """Cost summary of one basic block.

    ``cycles``          -- cost of one execution of the iterative part;
    ``one_time_cycles`` -- cost of the loop-invariant part (charged once);
    ``steady_cycles``   -- per-iteration cost in loop steady state, with
                           shape overlap between iterations credited;
    ``block``           -- the cost block of the iterative part.
    """

    cycles: int
    one_time_cycles: int
    steady_cycles: int
    block: CostBlock
    one_time_block: CostBlock
    placed: PlacedBlock

    @property
    def total_first_iteration(self) -> int:
        return self.cycles + self.one_time_cycles


class StraightLineEstimator:
    """Estimate cycles of straight-line code on a machine description.

    ``focus_span`` trades accuracy for speed (bench ``E-FOCUS``): the
    placement search never looks more than this many slots below the
    current top of the bins.
    """

    def __init__(self, machine: Machine, focus_span: int = DEFAULT_FOCUS_SPAN):
        self.machine = machine
        self.focus_span = focus_span
        # Intern the machine's op costs up front: every placement below
        # runs on the compiled fast path without a first-call hiccup.
        compile_ops(machine)

    # ------------------------------------------------------------------
    def estimate(self, stream: InstrStream) -> BlockCost:
        """Cost of one basic block (iterative + one-time parts).

        Both halves are lowered to columnar form via the digest-keyed
        compiled-stream memo, so re-estimating an already-seen block
        (beam rounds, service batches) hashes each half once and reuses
        the flat columns.
        """
        iterative = [i for i in stream if not i.one_time]
        invariant = [i for i in stream if i.one_time]
        placed = place_stream(
            self.machine, compile_stream(self.machine, reindex(iterative)),
            self.focus_span)
        placed_inv = place_stream(
            self.machine, compile_stream(self.machine, reindex(invariant)),
            self.focus_span)
        return BlockCost(
            cycles=placed.cycles,
            one_time_cycles=placed_inv.cycles,
            steady_cycles=steady_state_cycles(placed.block),
            block=placed.block,
            one_time_block=placed_inv.block,
            placed=placed,
        )

    # ------------------------------------------------------------------
    def estimate_unrolled(self, stream: InstrStream, factor: int) -> BlockCost:
        """Cost of a body replicated ``factor`` times (repeated dropping).

        This is the paper's second unroll-estimation method: "dropping
        the innermost basic block into the functional bins multiple
        times".  Copies are independent (callers handle loop-carried
        chains, e.g. reductions, at the aggregation level), so the
        placement discovers exactly how much overlap the machine allows.
        """
        if factor < 1:
            raise ValueError("unroll factor must be >= 1")
        iterative = [i for i in stream if not i.one_time]
        replicated: list[Instr] = []
        base = 0
        for _ in range(factor):
            for instr in reindex(iterative):
                replicated.append(Instr(
                    index=base + instr.index,
                    atomic=instr.atomic,
                    deps=tuple(base + d for d in instr.deps),
                    tag=instr.tag,
                ))
            base += len(iterative)
        placed = place_stream(
            self.machine, compile_stream(self.machine, replicated),
            self.focus_span)
        return BlockCost(
            cycles=placed.cycles,
            one_time_cycles=0,
            steady_cycles=steady_state_cycles(placed.block),
            block=placed.block,
            one_time_block=CostBlock.empty(),
            placed=placed,
        )

    # ------------------------------------------------------------------
    def recommend_unroll(self, stream: InstrStream, candidates=(1, 2, 4, 8)) -> int:
        """Pick the unroll factor with the best per-iteration cost.

        Uses repeated dropping; ties go to the smaller factor (less
        code growth).  The shape-inspection quick check
        (:meth:`CostBlock.unroll_headroom`) can veto unrolling early.
        """
        base = self.estimate(stream)
        if base.block.unroll_headroom() < 0.05:
            return 1
        best_factor = 1
        best_per_iter = float(base.cycles)
        for factor in candidates:
            if factor == 1:
                continue
            cost = self.estimate_unrolled(stream, factor)
            per_iter = cost.cycles / factor
            if per_iter < best_per_iter - 1e-9:
                best_per_iter = per_iter
                best_factor = factor
        return best_factor
