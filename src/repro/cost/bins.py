"""Per-unit bin state and simultaneous multi-unit placement.

"A conceptual view of our cost model of superscalar architecture is a
two dimensional unit with multiple functional bins in one dimension and
time slots in another dimension.  ...  All costs of an operation have
to fit in all functional units at the same time for it to occupy the
time slots."  (section 2.1)

:meth:`BinSet.place` is the *reference* drop: the production path is
the fused columnar kernel (:mod:`repro.cost.columnar`), which must stay
bit-identical to this implementation -- the differential tests and the
E-KERNEL bench drive both and compare every field.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.machine import Machine
from ..machine.units import UnitCost, UnitKind
from .slots import SlotArray

__all__ = ["BinSet", "Placement"]


@dataclass(frozen=True)
class Placement:
    """Where one operation landed: start time and per-unit pipe choice."""

    time: int
    pipes: tuple[tuple[UnitKind, int], ...]


class BinSet:
    """The 2-D bins of one machine: a :class:`SlotArray` per pipeline.

    The bins are flushed (a fresh :class:`BinSet` is built) before being
    used for another block of statements, exactly as the paper
    prescribes.
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self.arrays: dict[tuple[UnitKind, int], SlotArray] = {
            bin_id: SlotArray() for bin_id in machine.bins()
        }
        self._pipes_of: dict[UnitKind, list[tuple[UnitKind, int]]] = {}
        for kind, pipe in machine.bins():
            self._pipes_of.setdefault(kind, []).append((kind, pipe))
        # Running top, maintained by place(): recomputing it by
        # scanning every bin is O(bins) per instruction, and the
        # focus-span floor asks for it on *every* placement.
        self._top = 0

    # ------------------------------------------------------------------
    def clone(self) -> "BinSet":
        """An independent copy of the bins (for arena prefix snapshots).

        The machine and the ``_pipes_of`` index are immutable after
        construction and therefore shared; every :class:`SlotArray` is
        deep-copied so placements into the clone never disturb the
        original (and vice versa).
        """
        twin = BinSet.__new__(BinSet)
        twin.machine = self.machine
        twin.arrays = {
            bin_id: arr.clone() for bin_id, arr in self.arrays.items()
        }
        twin._pipes_of = self._pipes_of
        twin._top = self._top
        return twin

    def restore_from(self, other: "BinSet") -> None:
        """Snap this bin set's state back to ``other``'s, in place.

        Both must belong to the same machine.  Unlike :meth:`clone`
        this keeps every :class:`SlotArray` object's identity, so
        component bindings resolved against these arrays stay valid --
        the batch arena restores one working bin set per snapshot fork
        instead of re-resolving against a fresh clone.
        """
        arrays = self.arrays
        for bin_id, arr in other.arrays.items():
            arrays[bin_id].restore_from(arr)
        self._top = other._top

    def reset(self) -> None:
        """Empty every bin in place (identity-preserving flush)."""
        for arr in self.arrays.values():
            arr.reset()
        self._top = 0

    # ------------------------------------------------------------------
    def top(self) -> int:
        """One past the highest occupied slot across all bins (0 if empty)."""
        return self._top

    def _scan_top(self) -> int:
        """Recompute the top from the bins (oracle for tests)."""
        highest = -1
        for array in self.arrays.values():
            last = array.last_filled()
            if last is not None and last > highest:
                highest = last
        return highest + 1

    def bottom(self) -> int | None:
        """The lowest occupied slot across all bins, or None if empty."""
        lowest: int | None = None
        for array in self.arrays.values():
            first = array.first_filled()
            if first is not None and (lowest is None or first < lowest):
                lowest = first
        return lowest

    # ------------------------------------------------------------------
    def _best_pipe(self, kind: UnitKind, t: int, length: int) -> tuple[int, tuple[UnitKind, int]]:
        """Earliest feasible start >= t across the pipes of one unit."""
        best_time: int | None = None
        best_pipe: tuple[UnitKind, int] | None = None
        for pipe_id in self._pipes_of[kind]:
            candidate = self.arrays[pipe_id].next_fit(t, length)
            if best_time is None or candidate < best_time:
                best_time, best_pipe = candidate, pipe_id
        assert best_time is not None and best_pipe is not None
        return best_time, best_pipe

    def place(self, costs: tuple[UnitCost, ...], earliest: int) -> Placement:
        """Drop one operation at the lowest time slot >= ``earliest``.

        Finds the smallest ``t`` such that every unit cost component has
        a pipe with ``noncoverable`` consecutive free slots starting at
        ``t``, then fills those slots.  Coverable costs occupy nothing
        (they are transparent); they matter only for the completion time
        the caller computes.
        """
        needed = [c for c in costs if c.noncoverable > 0]
        if not needed:
            return Placement(earliest, ())
        t = earliest
        while True:
            chosen: list[tuple[UnitKind, int]] = []
            worst = t
            for cost in needed:
                candidate, pipe = self._best_pipe(cost.unit, t, cost.noncoverable)
                chosen.append(pipe)
                if candidate > worst:
                    worst = candidate
            if worst == t:
                for cost, pipe in zip(needed, chosen):
                    self.arrays[pipe].fill(t, cost.noncoverable)
                    if t + cost.noncoverable > self._top:
                        self._top = t + cost.noncoverable
                return Placement(t, tuple(chosen))
            t = worst

    # ------------------------------------------------------------------
    def profiles(self) -> dict[tuple[UnitKind, int], tuple[int, int] | None]:
        """Per-bin (first, last) occupied slots; None for untouched bins."""
        out: dict[tuple[UnitKind, int], tuple[int, int] | None] = {}
        for bin_id, array in self.arrays.items():
            first = array.first_filled()
            last = array.last_filled()
            out[bin_id] = None if first is None or last is None else (first, last)
        return out

    def occupancy(self) -> dict[tuple[UnitKind, int], int]:
        """Filled slots per bin (for critical-bin ratio diagnostics)."""
        return {bin_id: array.filled_total for bin_id, array in self.arrays.items()}

    def render(self, height: int | None = None) -> str:
        """ASCII picture of the bins (Figure 3 style), for examples/docs."""
        height = height or self.top()
        bin_ids = sorted(self.arrays, key=lambda b: (b[0].value, b[1]))
        header = " ".join(f"{kind.value[:6]:>6s}{pipe}" for kind, pipe in bin_ids)
        lines = [header]
        grids = {b: self.arrays[b].as_bools() for b in bin_ids}
        for slot in range(height - 1, -1, -1):
            row = []
            for b in bin_ids:
                grid = grids[b]
                mark = "#" if slot < len(grid) and grid[slot] else "."
                row.append(f"{mark:>7s}")
            lines.append(" ".join(row) + f"   t={slot}")
        return "\n".join(lines)
