"""The superscalar straight-line cost model (paper section 2.1).

Tetris-style placement of atomic operations into functional-unit bins,
with coverable/noncoverable costs, the signed-block slot data
structure, cost-block shapes, and inter-block overlap estimation.
"""

from .bins import BinSet, Placement
from .costblock import CostBlock
from .estimator import BlockCost, StraightLineEstimator
from .focus import DEFAULT_SPAN, EXHAUSTIVE_SPAN, FAST_SPAN, recommended_span
from .overlap import combined_cycles, max_overlap, steady_state_cycles
from .placement import (
    DEFAULT_FOCUS_SPAN,
    PLACEMENT_CACHE_LIMIT,
    PlacedBlock,
    PlacedOp,
    place_stream,
    placement_cache_stats,
    reset_placement_cache,
    stream_digest,
)
from .slots import SlotArray

__all__ = [
    "BinSet", "BlockCost", "CostBlock", "DEFAULT_FOCUS_SPAN", "DEFAULT_SPAN",
    "EXHAUSTIVE_SPAN", "FAST_SPAN", "PLACEMENT_CACHE_LIMIT", "PlacedBlock",
    "PlacedOp", "Placement", "SlotArray", "StraightLineEstimator",
    "combined_cycles", "max_overlap", "place_stream",
    "placement_cache_stats", "recommended_span", "reset_placement_cache",
    "steady_state_cycles", "stream_digest",
]
