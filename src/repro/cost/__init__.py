"""The superscalar straight-line cost model (paper section 2.1).

Tetris-style placement of atomic operations into functional-unit bins,
with coverable/noncoverable costs, the signed-block slot data
structure, cost-block shapes, and inter-block overlap estimation.
"""

from .arena import (
    ARENA_POOL_LIMIT,
    HAVE_NUMPY,
    PlacementArena,
    arena_cache_stats,
    arena_numpy_enabled,
    get_arena,
    place_batch,
    reset_arenas,
    set_arena_numpy,
)
from .bins import BinSet, Placement
from .columnar import (
    COLUMNAR_CACHE_LIMIT,
    CompiledStream,
    StreamSummary,
    columnar_cache_stats,
    compile_stream,
    reset_columnar_cache,
)
from .costblock import CostBlock
from .estimator import BlockCost, StraightLineEstimator
from .focus import DEFAULT_SPAN, EXHAUSTIVE_SPAN, FAST_SPAN, recommended_span
from .overlap import combined_cycles, max_overlap, steady_state_cycles
from .placement import (
    DEFAULT_FOCUS_SPAN,
    PLACEMENT_CACHE_LIMIT,
    PlacedBlock,
    PlacedOp,
    place_stream,
    placement_cache_stats,
    placement_kernel,
    reset_placement_cache,
    set_placement_kernel,
    stream_digest,
)
from .slots import SlotArray

__all__ = [
    "ARENA_POOL_LIMIT", "BinSet", "BlockCost", "COLUMNAR_CACHE_LIMIT",
    "CompiledStream", "CostBlock", "DEFAULT_FOCUS_SPAN", "DEFAULT_SPAN",
    "EXHAUSTIVE_SPAN", "FAST_SPAN", "HAVE_NUMPY", "PLACEMENT_CACHE_LIMIT",
    "PlacedBlock", "PlacedOp", "Placement", "PlacementArena", "SlotArray",
    "StraightLineEstimator", "StreamSummary",
    "arena_cache_stats", "arena_numpy_enabled",
    "columnar_cache_stats", "combined_cycles", "compile_stream",
    "get_arena", "max_overlap", "place_batch", "place_stream",
    "placement_cache_stats", "placement_kernel", "recommended_span",
    "reset_arenas", "reset_columnar_cache", "reset_placement_cache",
    "set_arena_numpy", "set_placement_kernel", "steady_state_cycles",
    "stream_digest",
]
