"""The signed-block time-slot array (paper Figures 4 and 5).

"The time slots of instruction execution units are decomposed into
lists of alternating filled and empty blocks that are represented by a
two-dimensional array.  The first and last slots of a block are used to
record the size of the block.  If the block is empty, we record the
negative value of the block size."  (section 2.1)

The array representation gives doubly-linked-list navigation for free:
the cell just *before* a block's first slot is the last slot of its
predecessor, whose absolute value is the predecessor's size; symmetric
reasoning reaches the successor.  Searching for a run of empty slots
walks block to block instead of cell by cell, which is what makes
simultaneous multi-bin search cheap (bench ``E-F4/5`` measures this
against a naive per-cell scan).
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["SlotArray"]


class SlotArray:
    """Time slots of a single functional-unit bin.

    Slots are either *filled* (occupied by a noncoverable cost) or
    *empty*.  The array grows on demand; slots beyond the current
    capacity are implicitly empty.
    """

    __slots__ = (
        "cells", "_lowest_filled", "_highest_filled", "filled_total", "_hint",
    )

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.cells: list[int] = [0] * capacity
        self._write_block(0, capacity, filled=False)
        self._lowest_filled: int | None = None
        self._highest_filled: int | None = None
        self.filled_total = 0
        # Search hint: a position guaranteed to be a block *start*.
        # Queries at or above it resume the block walk there instead of
        # at slot 0, which keeps placement linear when the search floor
        # (ready time / focus span) rises monotonically, as it does in
        # the estimator's main loop.
        self._hint = 0

    # ------------------------------------------------------------------
    # Block encoding helpers
    # ------------------------------------------------------------------
    def _write_block(self, start: int, size: int, filled: bool) -> None:
        """Stamp the boundary cells of a block; interiors stay as-is.

        Interior cells are never read, so they need not be zeroed --
        only the first and last cell of each block carry meaning.
        """
        value = size if filled else -size
        self.cells[start] = value
        self.cells[start + size - 1] = value

    @property
    def capacity(self) -> int:
        return len(self.cells)

    def _grow_to(self, needed: int) -> None:
        """Extend capacity to at least ``needed`` slots."""
        old = self.capacity
        if needed <= old:
            return
        new_capacity = max(needed, old * 2)
        extra = new_capacity - old
        # Is the last block empty?  Then extend it; else append a new
        # empty block.
        last_value = self.cells[old - 1]
        self.cells.extend([0] * extra)
        if last_value < 0:
            size = -last_value
            self._write_block(old - size, size + extra, filled=False)
        else:
            self._write_block(old, extra, filled=False)

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def blocks(self) -> Iterator[tuple[int, int, bool]]:
        """Yield (start, size, filled) for every block, in order."""
        pos = 0
        while pos < self.capacity:
            value = self.cells[pos]
            if value == 0:
                raise AssertionError(f"corrupt slot array at {pos}")
            size = abs(value)
            yield pos, size, value > 0
            pos += size

    def _block_containing(self, slot: int) -> tuple[int, int, bool]:
        """(start, size, filled) of the block holding ``slot``.

        Walks block to block, starting from the search hint when the
        slot lies at or above it (the common, monotone case).
        """
        if slot >= self.capacity:
            # Implicitly empty tail.
            return self.capacity, 1 << 62, False
        pos = self._hint if self._hint <= slot else 0
        while pos < self.capacity:
            value = self.cells[pos]
            if value == 0:
                raise AssertionError(f"corrupt slot array at {pos}")
            size = abs(value)
            if pos <= slot < pos + size:
                self._hint = pos
                return pos, size, value > 0
            pos += size
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_free(self, start: int, length: int) -> bool:
        """True when slots [start, start+length) are all empty."""
        if length == 0:
            return True
        if start < 0:
            raise ValueError("negative slot")
        if start >= self.capacity:
            return True
        block_start, size, filled = self._block_containing(start)
        if filled:
            return False
        available = min(size, self.capacity - block_start) - (start - block_start)
        if start + length <= self.capacity:
            return available >= length
        # Needs the implicit tail: the containing block must reach the end.
        return block_start + size >= self.capacity

    def next_fit(self, start: int, length: int) -> int:
        """Smallest s >= start with ``length`` consecutive empty slots.

        Walks blocks, not cells.  Always succeeds (the array is
        conceptually infinite).
        """
        if start < 0:
            raise ValueError("negative slot")
        if length == 0:
            return start
        pos = min(start, self.capacity)
        if pos == self.capacity:
            return start
        block_start, size, filled = self._block_containing(pos)
        while True:
            if not filled:
                usable_start = max(block_start, start)
                block_end = block_start + size
                if block_end >= self.capacity:
                    # Final empty block extends implicitly forever.
                    return usable_start
                if block_end - usable_start >= length:
                    return usable_start
            block_start += size
            if block_start >= self.capacity:
                return max(block_start, start)
            value = self.cells[block_start]
            size = abs(value)
            filled = value > 0

    def first_filled(self) -> int | None:
        return self._lowest_filled

    def last_filled(self) -> int | None:
        return self._highest_filled

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def fill(self, start: int, length: int) -> None:
        """Mark slots [start, start+length) filled; they must be empty."""
        if length == 0:
            return
        if start < 0:
            raise ValueError("negative slot")
        # Exactly the slots the fill touches: the merge-with-successor
        # check below guards on ``fill_end < capacity``, so no sentinel
        # cell past the fill is ever read.
        self._grow_to(start + length)
        if not self.is_free(start, length):
            raise ValueError(f"slots [{start}, {start + length}) not free")
        block_start, size, _ = self._block_containing(start)
        block_end = block_start + size
        fill_end = start + length
        # Split the empty block into [empty-left] [filled] [empty-right],
        # then merge the filled part with any filled neighbours.
        new_start, new_len = start, length
        rewritten_end = block_end  # one past the highest cell we disturb
        if block_start < start:
            self._write_block(block_start, start - block_start, filled=False)
        else:
            # Merge with a filled predecessor, if any.
            if block_start > 0 and self.cells[block_start - 1] > 0:
                prev_size = self.cells[block_start - 1]
                new_start = block_start - prev_size
                new_len += prev_size
        if fill_end < block_end:
            self._write_block(fill_end, block_end - fill_end, filled=False)
        else:
            # Merge with a filled successor, if any.
            if fill_end < self.capacity and self.cells[fill_end] > 0:
                next_size = self.cells[fill_end]
                new_len += next_size
                rewritten_end = fill_end + next_size
        self._write_block(new_start, new_len, filled=True)
        # A hint inside the rewritten span may no longer be a block
        # start; retreat it to the new block's start (always valid).
        if new_start <= self._hint <= rewritten_end:
            self._hint = new_start
        self.filled_total += length
        if self._lowest_filled is None or start < self._lowest_filled:
            self._lowest_filled = start
        if self._highest_filled is None or fill_end - 1 > self._highest_filled:
            self._highest_filled = fill_end - 1

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def clone(self) -> "SlotArray":
        """An independent copy sharing nothing mutable.

        The batch placement arena snapshots bin state at shared-prefix
        boundaries and forks sibling streams from the copy; a clone must
        therefore behave exactly like the original under every later
        ``fill``/``next_fit`` -- cells, bounds, totals, and the search
        hint are all carried over verbatim.
        """
        twin = SlotArray.__new__(SlotArray)
        twin.cells = self.cells[:]
        twin._lowest_filled = self._lowest_filled
        twin._highest_filled = self._highest_filled
        twin.filled_total = self.filled_total
        twin._hint = self._hint
        return twin

    def restore_from(self, other: "SlotArray") -> None:
        """Overwrite this array's state with ``other``'s, in place.

        The in-place counterpart of :meth:`clone`: object identity
        survives, so anything bound to this array (the arena's resolved
        per-op component bindings) keeps working while the state snaps
        back to the snapshot's.
        """
        self.cells[:] = other.cells
        self._lowest_filled = other._lowest_filled
        self._highest_filled = other._highest_filled
        self.filled_total = other.filled_total
        self._hint = other._hint

    def reset(self) -> None:
        """Empty every slot, keeping identity and grown capacity.

        Stamps one empty block over the whole array; interior cells are
        never read (only block boundaries carry meaning), so they may
        keep stale values.
        """
        cells = self.cells
        value = -len(cells)
        cells[0] = value
        cells[-1] = value
        self._lowest_filled = None
        self._highest_filled = None
        self.filled_total = 0
        self._hint = 0

    # ------------------------------------------------------------------
    # Introspection for tests and benchmarks
    # ------------------------------------------------------------------
    def as_bools(self) -> list[bool]:
        """Dense filled/empty rendering (testing aid; O(capacity))."""
        out = [False] * self.capacity
        for start, size, filled in self.blocks():
            if filled:
                out[start:start + size] = [True] * size
        return out

    def occupancy_in(self, lo: int, hi: int) -> int:
        """Number of filled slots in [lo, hi) -- used for shape ratios."""
        count = 0
        for start, size, filled in self.blocks():
            if start >= hi:
                break          # blocks are ordered; nothing later overlaps
            if not filled:
                continue
            overlap = min(start + size, hi) - max(start, lo)
            if overlap > 0:
                count += overlap
        return count

    def __str__(self) -> str:
        marks = "".join("#" if b else "." for b in self.as_bools())
        return f"SlotArray[{marks}]"
