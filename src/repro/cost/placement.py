"""The linear-time lowest-slot placement algorithm (paper section 2.1).

"Our approximate solution for the scheduling problem is to place the
cost object of each operation into the lowest time slots that all cost
components of the operation can fit simultaneously."

The *focus span* limits how far below the current top of the bins the
search may look: "only a certain number of slots (called focus span)
under the highest occupied time slot need to be considered.  ...  the
focus span is an adjustable parameter, thus allowing more flexible
allocation of computing resources based on accuracy and efficiency
considerations."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.machine import Machine
from ..obs import trace_span
from ..translate.stream import Instr, InstrStream
from .bins import BinSet
from .costblock import CostBlock

__all__ = ["PlacedOp", "PlacedBlock", "place_stream", "DEFAULT_FOCUS_SPAN"]

#: Default focus span; the ablation bench E-FOCUS sweeps this.
DEFAULT_FOCUS_SPAN = 64


@dataclass(frozen=True)
class PlacedOp:
    """One operation's landing site and completion time."""

    instr: Instr
    time: int
    completion: int


@dataclass
class PlacedBlock:
    """Result of placing a whole instruction stream."""

    machine_name: str
    ops: list[PlacedOp] = field(default_factory=list)
    block: CostBlock = field(default_factory=CostBlock.empty)

    @property
    def cycles(self) -> int:
        return self.block.cycles

    def completion_of(self, index: int) -> int:
        return self.ops[index].completion


def place_stream(
    machine: Machine,
    instrs: list[Instr] | InstrStream,
    focus_span: int = DEFAULT_FOCUS_SPAN,
    bins: BinSet | None = None,
) -> PlacedBlock:
    """Drop each instruction into the lowest feasible time slots.

    Instructions are processed in stream order; each is placed at the
    lowest time ``t`` such that

    * every flow dependence's result is available (``t >= ready``),
    * ``t`` is within the focus span of the current top of the bins, and
    * all noncoverable cost components fit simultaneously at ``t``.

    The first two conditions model the paper's "filter": an operation
    passes through the transparent (coverable) region of its
    predecessors but cannot sink below its producers' completions.
    """
    if focus_span < 1:
        raise ValueError("focus span must be at least 1")
    if isinstance(instrs, InstrStream):
        instr_list = list(instrs)
    else:
        instr_list = instrs
    with trace_span("cost.place") as span:
        bin_set = bins if bins is not None else BinSet(machine)
        completions: dict[int, int] = {}
        placed = PlacedBlock(machine_name=machine.name)

        for instr in instr_list:
            op = machine.atomic(instr.atomic)
            ready = 0
            for dep in instr.deps:
                dep_done = completions.get(dep, 0)
                if dep_done > ready:
                    ready = dep_done
            floor = bin_set.top() - focus_span
            earliest = max(ready, floor, 0)
            placement = bin_set.place(op.costs, earliest)
            completion = placement.time + op.result_latency
            completions[instr.index] = completion
            placed.ops.append(PlacedOp(instr, placement.time, completion))

        placed.block = _summarize(bin_set, placed.ops)
        if span.recording:
            span.set(machine=machine.name, ops=len(instr_list),
                     focus_span=focus_span, cycles=placed.cycles)
    return placed


def _summarize(bin_set: BinSet, ops: list[PlacedOp]) -> CostBlock:
    if not ops:
        return CostBlock.empty()
    profiles = {
        bin_id: span
        for bin_id, span in bin_set.profiles().items()
        if span is not None
    }
    if not profiles:
        # Degenerate: only zero-noncoverable ops; anchor at first op time.
        lo = min(op.time for op in ops)
        completion = max(op.completion for op in ops)
        return CostBlock(lo, lo, completion)
    lo = min(first for first, _ in profiles.values())
    occupied_hi = max(last for _, last in profiles.values()) + 1
    completion = max(occupied_hi, max(op.completion for op in ops))
    occupancy = {
        bin_id: count
        for bin_id, count in bin_set.occupancy().items()
        if count > 0
    }
    return CostBlock(lo, occupied_hi, completion, profiles, occupancy)
