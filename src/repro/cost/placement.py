"""The linear-time lowest-slot placement algorithm (paper section 2.1).

"Our approximate solution for the scheduling problem is to place the
cost object of each operation into the lowest time slots that all cost
components of the operation can fit simultaneously."

The *focus span* limits how far below the current top of the bins the
search may look: "only a certain number of slots (called focus span)
under the highest occupied time slot need to be considered.  ...  the
focus span is an adjustable parameter, thus allowing more flexible
allocation of computing resources based on accuracy and efficiency
considerations."

Three implementations coexist:

* the **fused columnar kernel** (:mod:`repro.cost.columnar`, default):
  precompiled per-machine op costs + flat stream columns + a lockstep
  multi-bin search;
* the **batch arena** (``kernel="arena"``, :mod:`repro.cost.arena`):
  the fused kernel fronted by a per-(machine, focus span) arena that
  dedups identical streams and resumes sibling streams from shared
  prefix snapshots -- the right default when many near-identical
  streams arrive together (beam rounds, service batches);
* the **legacy path** (``kernel="legacy"``): the original
  per-instruction ``BinSet.place`` loop, kept as the readable reference
  implementation and differential oracle.

All three produce bit-identical :class:`PlacedBlock` results (cycles,
op times, pipe choices); ``REPRO_PLACEMENT_KERNEL=legacy|arena`` flips
the default for A/B runs.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import NamedTuple

from ..machine.machine import Machine
from ..obs import trace_span
from ..translate.stream import Instr, InstrStream, placement_digest
from .bins import BinSet
from .columnar import CompiledStream, compile_stream, drop_columns
from ..machine.compiled import compile_ops
from .costblock import CostBlock

__all__ = [
    "PlacedOp", "PlacedBlock", "place_stream", "DEFAULT_FOCUS_SPAN",
    "stream_digest", "placement_cache_stats", "reset_placement_cache",
    "placement_kernel", "set_placement_kernel",
    "PLACEMENT_CACHE_LIMIT",
]

#: Default focus span; the ablation bench E-FOCUS sweeps this.
DEFAULT_FOCUS_SPAN = 64

#: Canonical digest helper (moved to translate.stream so streams can
#: memoize it; re-exported here for existing callers).
stream_digest = placement_digest


class PlacedOp(NamedTuple):
    """One operation's landing site and completion time.

    A named tuple rather than a dataclass: placement builds one of
    these per instruction on the hottest path in the repo, and
    ``tuple.__new__`` beats a frozen dataclass's
    ``object.__setattr__`` chain several-fold at equal immutability.
    """

    instr: Instr
    time: int
    completion: int


class _LazyOps:
    """Deferred per-op tuple: the kernels' raw result columns.

    One cell may be shared by many :class:`PlacedBlock` views of the
    same placement (the memo's ``_share``); whoever touches ``.ops``
    first materializes the tuple *into the cell*, so every sharer sees
    the identical object afterwards.
    """

    __slots__ = ("instrs", "times", "completions", "ops")

    def __init__(self, instrs, times: list[int], completions: list[int]):
        self.instrs = instrs
        self.times = times
        self.completions = completions
        self.ops: tuple[PlacedOp, ...] | None = None

    def materialize(self) -> tuple[PlacedOp, ...]:
        ops = self.ops
        if ops is None:
            ops = self.ops = tuple(
                map(PlacedOp, self.instrs, self.times, self.completions))
        return ops


class PlacedBlock:
    """Result of placing a whole instruction stream.

    ``ops`` is an immutable tuple: cached placements share it directly
    (no per-hit copy), and the type itself enforces the "callers must
    not mutate the memo's master" contract.  The columnar kernels hand
    over their raw time/completion columns instead of a prebuilt tuple
    (``lazy=``): search reads only ``cycles``/``block`` for the vast
    majority of candidates, so the 200-odd :class:`PlacedOp` objects
    per stream are built on first ``.ops`` access -- once, even across
    shared memo views.
    """

    __slots__ = ("machine_name", "block", "_ops", "_lazy")

    def __init__(self, machine_name: str,
                 ops: tuple[PlacedOp, ...] = (),
                 block: CostBlock | None = None,
                 *, lazy: _LazyOps | None = None):
        self.machine_name = machine_name
        self.block = block if block is not None else CostBlock.empty()
        self._ops = None if lazy is not None else tuple(ops)
        self._lazy = lazy

    @property
    def ops(self) -> tuple[PlacedOp, ...]:
        ops = self._ops
        if ops is None:
            ops = self._ops = self._lazy.materialize()
        return ops

    @ops.setter
    def ops(self, value: tuple[PlacedOp, ...]) -> None:
        self._ops = tuple(value)
        self._lazy = None

    @property
    def cycles(self) -> int:
        return self.block.cycles

    def completion_of(self, index: int) -> int:
        if self._ops is None and self._lazy.ops is None:
            return self._lazy.completions[index]
        return self.ops[index].completion


# ----------------------------------------------------------------------
# Kernel selection

_KERNELS = ("fused", "legacy", "arena")
_kernel = os.environ.get("REPRO_PLACEMENT_KERNEL", "fused")
if _kernel not in _KERNELS:
    _kernel = "fused"


def placement_kernel() -> str:
    """The process-wide default placement kernel."""
    return _kernel


def set_placement_kernel(name: str) -> str:
    """Set the default kernel ("fused", "legacy", or "arena"); returns
    the old one."""
    global _kernel
    if name not in _KERNELS:
        raise ValueError(f"unknown placement kernel {name!r}; "
                         f"choose from {_KERNELS}")
    previous = _kernel
    _kernel = name
    return previous


# ----------------------------------------------------------------------
# Placement memo
#
# Transformation search predicts thousands of program variants whose
# straight-line bodies are overwhelmingly *identical* to bodies already
# placed (a rewrite touches one loop; every other block re-translates
# to the same instruction stream).  Placement is a pure function of
# (machine cost table, instruction stream, focus span), so a bounded
# LRU keyed exactly that way answers those repeats without replaying
# the Tetris drop.  The service engine publishes the hit/miss counters
# as ``repro_placement_cache_*`` on /metrics.

PLACEMENT_CACHE_LIMIT = 2048

_cache: OrderedDict[tuple[str, str, int], PlacedBlock] = OrderedDict()
_cache_lock = threading.Lock()
_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0

#: Machine identity -> fingerprint memo: fingerprints hash the whole
#: cost table, so recomputing one per placement would dwarf the win.
_fingerprints: dict[int, tuple[Machine, str]] = {}


def _machine_fingerprint(machine: Machine) -> str:
    memo = _fingerprints.get(id(machine))
    if memo is not None and memo[0] is machine:
        return memo[1]
    fingerprint = machine.fingerprint()
    if len(_fingerprints) > 64:
        _fingerprints.clear()
    _fingerprints[id(machine)] = (machine, fingerprint)
    return fingerprint


def placement_cache_stats() -> dict[str, int]:
    """Snapshot of the placement memo's counters and size."""
    with _cache_lock:
        return {
            "hits": _cache_hits,
            "misses": _cache_misses,
            "evictions": _cache_evictions,
            "entries": len(_cache),
        }


def reset_placement_cache() -> None:
    """Drop all memoized placements and zero the counters."""
    global _cache_hits, _cache_misses, _cache_evictions
    with _cache_lock:
        _cache.clear()
        _cache_hits = _cache_misses = _cache_evictions = 0


def _memo_probe(fingerprint: str, digest: str,
                focus_span: int) -> PlacedBlock | None:
    """Memo read for the arena's batch path; counts a hit or a miss."""
    global _cache_hits, _cache_misses
    key = (fingerprint, digest, focus_span)
    with _cache_lock:
        hit = _cache.get(key)
        if hit is not None:
            _cache.move_to_end(key)
            _cache_hits += 1
            return _share(hit)
        _cache_misses += 1
    return None


def _memo_store(fingerprint: str, digest: str, focus_span: int,
                placed: PlacedBlock) -> None:
    """Memo write for the arena's batch path (same LRU bound)."""
    global _cache_evictions
    key = (fingerprint, digest, focus_span)
    with _cache_lock:
        _cache[key] = _share(placed)
        while len(_cache) > PLACEMENT_CACHE_LIMIT:
            _cache.popitem(last=False)
            _cache_evictions += 1


def _share(placed: PlacedBlock) -> PlacedBlock:
    """A caller-safe view of a cached placement.

    The ops tuple (or the lazy cell it materializes from), the ops
    themselves, and the summary block are all immutable or
    materialize-once, so every field is shared; only the outer
    (mutable) shell is fresh.
    """
    twin = PlacedBlock(placed.machine_name, (), placed.block)
    twin._ops = placed._ops
    twin._lazy = placed._lazy
    return twin


def place_stream(
    machine: Machine,
    instrs: list[Instr] | InstrStream | CompiledStream,
    focus_span: int = DEFAULT_FOCUS_SPAN,
    bins: BinSet | None = None,
    *,
    kernel: str | None = None,
) -> PlacedBlock:
    """Drop each instruction into the lowest feasible time slots.

    Instructions are processed in stream order; each is placed at the
    lowest time ``t`` such that

    * every flow dependence's result is available (``t >= ready``),
    * ``t`` is within the focus span of the current top of the bins, and
    * all noncoverable cost components fit simultaneously at ``t``.

    The first two conditions model the paper's "filter": an operation
    passes through the transparent (coverable) region of its
    predecessors but cannot sink below its producers' completions.

    Identical (machine, stream, focus span) placements are answered
    from a bounded LRU; passing explicit ``bins`` (shared, possibly
    pre-filled state) bypasses the memo.  ``instrs`` may be a
    pre-lowered :class:`~repro.cost.columnar.CompiledStream`, in which
    case its cached digest is reused instead of re-hashed.  ``kernel``
    overrides the process default ("fused" or "legacy"); both kernels
    return bit-identical results, so they share the memo.
    """
    global _cache_hits, _cache_misses, _cache_evictions
    if focus_span < 1:
        raise ValueError("focus span must be at least 1")
    if kernel is None:
        kernel = _kernel
    elif kernel not in _KERNELS:
        raise ValueError(f"unknown placement kernel {kernel!r}")

    compiled: CompiledStream | None = None
    digest: str | None = None
    if isinstance(instrs, CompiledStream):
        compiled = instrs
        instr_list: list[Instr] | tuple[Instr, ...] = instrs.instrs
        digest = instrs.digest
    elif isinstance(instrs, InstrStream):
        instr_list = instrs.instrs
        digest = instrs.digest()
    else:
        instr_list = instrs

    key = None
    if bins is None:
        fingerprint = _machine_fingerprint(machine)
        if digest is None:
            digest = placement_digest(instr_list)
        key = (fingerprint, digest, focus_span)
        with _cache_lock:
            hit = _cache.get(key)
            if hit is not None:
                _cache.move_to_end(key)
                _cache_hits += 1
        if hit is not None:
            # Memoized placements still announce the phase: traces and
            # the cost.place histogram stay complete under a warm memo.
            with trace_span("cost.place") as span:
                if span.recording:
                    span.set(machine=machine.name, ops=len(instr_list),
                             focus_span=focus_span, cycles=hit.cycles,
                             cached=True)
            return _share(hit)
        with _cache_lock:
            _cache_misses += 1
    placed = _place_uncached(machine, instr_list, focus_span, bins,
                             kernel, compiled, digest)
    if key is not None:
        with _cache_lock:
            _cache[key] = _share(placed)
            while len(_cache) > PLACEMENT_CACHE_LIMIT:
                _cache.popitem(last=False)
                _cache_evictions += 1
    return placed


def _place_uncached(
    machine: Machine,
    instr_list: list[Instr] | tuple[Instr, ...],
    focus_span: int,
    bins: BinSet | None,
    kernel: str = "fused",
    compiled: CompiledStream | None = None,
    digest: str | None = None,
) -> PlacedBlock:
    if kernel == "arena" and bins is not None:
        # Explicit bins mean shared, possibly pre-filled state: prefix
        # snapshots (which assume empty-start bins) don't apply, so the
        # arena delegates straight to the fused kernel.
        kernel = "fused"
    with trace_span("cost.place") as span:
        if kernel == "arena":
            from .arena import get_arena

            fingerprint = _machine_fingerprint(machine)
            if compiled is None:
                compiled = compile_stream(machine, instr_list, digest,
                                          fingerprint=fingerprint)
            times, completions, bin_set = get_arena(
                machine, focus_span).drop(compiled)
            lazy = _LazyOps(compiled.instrs, times, completions)
        elif kernel == "fused":
            bin_set = bins if bins is not None else BinSet(machine)
            fingerprint = _machine_fingerprint(machine)
            if compiled is None:
                compiled = compile_stream(machine, instr_list, digest,
                                          fingerprint=fingerprint)
            ops = compile_ops(machine, fingerprint)
            times, completions = drop_columns(
                compiled, ops, bin_set, focus_span)
            lazy = _LazyOps(compiled.instrs, times, completions)
        else:
            bin_set = bins if bins is not None else BinSet(machine)
            lazy = None
            placed_ops = _place_legacy(machine, instr_list, focus_span,
                                       bin_set)
        if lazy is not None:
            placed = PlacedBlock(machine_name=machine.name, lazy=lazy)
            placed.block = _summarize(bin_set, (), lazy.times,
                                      lazy.completions)
        else:
            placed = PlacedBlock(machine_name=machine.name, ops=placed_ops)
            placed.block = _summarize(bin_set, placed_ops)
        if span.recording:
            span.set(machine=machine.name, ops=len(instr_list),
                     focus_span=focus_span, cycles=placed.cycles,
                     kernel=kernel)
    return placed


def _place_legacy(
    machine: Machine,
    instr_list: list[Instr] | tuple[Instr, ...],
    focus_span: int,
    bin_set: BinSet,
) -> tuple[PlacedOp, ...]:
    """The reference implementation: one ``BinSet.place`` per instruction."""
    completions: dict[int, int] = {}
    placed_ops: list[PlacedOp] = []
    for instr in instr_list:
        op = machine.atomic(instr.atomic)
        ready = 0
        for dep in instr.deps:
            dep_done = completions.get(dep, 0)
            if dep_done > ready:
                ready = dep_done
        floor = bin_set.top() - focus_span
        earliest = max(ready, floor, 0)
        placement = bin_set.place(op.costs, earliest)
        completion = placement.time + op.result_latency
        completions[instr.index] = completion
        placed_ops.append(PlacedOp(instr, placement.time, completion))
    return tuple(placed_ops)


def _summarize(
    bin_set: BinSet,
    ops: tuple[PlacedOp, ...],
    times: list[int] | None = None,
    completions: list[int] | None = None,
) -> CostBlock:
    """Summary block for one placement.

    The columnar kernels already hold the start/completion columns as
    plain int lists; they pass those (with ``ops=()``) so the summary
    never touches -- or forces -- the per-op tuple.  The legacy path,
    which has only ``ops``, omits the columns.
    """
    if completions is None:
        if not ops:
            return CostBlock.empty()
        completions = [op.completion for op in ops]
    elif not completions:
        return CostBlock.empty()
    profiles = {
        bin_id: span
        for bin_id, span in bin_set.profiles().items()
        if span is not None
    }
    if not profiles:
        # Degenerate: only zero-noncoverable ops; anchor at first op time.
        lo = min(times) if times is not None else min(op.time for op in ops)
        return CostBlock(lo, lo, max(completions))
    lo = min(first for first, _ in profiles.values())
    occupied_hi = max(last for _, last in profiles.values()) + 1
    completion = max(occupied_hi, max(completions))
    occupancy = {
        bin_id: count
        for bin_id, count in bin_set.occupancy().items()
        if count > 0
    }
    return CostBlock(lo, occupied_hi, completion, profiles, occupancy)
