"""The linear-time lowest-slot placement algorithm (paper section 2.1).

"Our approximate solution for the scheduling problem is to place the
cost object of each operation into the lowest time slots that all cost
components of the operation can fit simultaneously."

The *focus span* limits how far below the current top of the bins the
search may look: "only a certain number of slots (called focus span)
under the highest occupied time slot need to be considered.  ...  the
focus span is an adjustable parameter, thus allowing more flexible
allocation of computing resources based on accuracy and efficiency
considerations."
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..machine.machine import Machine
from ..obs import trace_span
from ..translate.stream import Instr, InstrStream
from .bins import BinSet
from .costblock import CostBlock

__all__ = [
    "PlacedOp", "PlacedBlock", "place_stream", "DEFAULT_FOCUS_SPAN",
    "stream_digest", "placement_cache_stats", "reset_placement_cache",
    "PLACEMENT_CACHE_LIMIT",
]

#: Default focus span; the ablation bench E-FOCUS sweeps this.
DEFAULT_FOCUS_SPAN = 64


@dataclass(frozen=True)
class PlacedOp:
    """One operation's landing site and completion time."""

    instr: Instr
    time: int
    completion: int


@dataclass
class PlacedBlock:
    """Result of placing a whole instruction stream."""

    machine_name: str
    ops: list[PlacedOp] = field(default_factory=list)
    block: CostBlock = field(default_factory=CostBlock.empty)

    @property
    def cycles(self) -> int:
        return self.block.cycles

    def completion_of(self, index: int) -> int:
        return self.ops[index].completion


# ----------------------------------------------------------------------
# Placement memo
#
# Transformation search predicts thousands of program variants whose
# straight-line bodies are overwhelmingly *identical* to bodies already
# placed (a rewrite touches one loop; every other block re-translates
# to the same instruction stream).  Placement is a pure function of
# (machine cost table, instruction stream, focus span), so a bounded
# LRU keyed exactly that way answers those repeats without replaying
# the Tetris drop.  The service engine publishes the hit/miss counters
# as ``repro_placement_cache_*`` on /metrics.

PLACEMENT_CACHE_LIMIT = 2048

_cache: OrderedDict[tuple[str, str, int], PlacedBlock] = OrderedDict()
_cache_lock = threading.Lock()
_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0

#: Machine identity -> fingerprint memo: fingerprints hash the whole
#: cost table, so recomputing one per placement would dwarf the win.
_fingerprints: dict[int, tuple[Machine, str]] = {}


def _machine_fingerprint(machine: Machine) -> str:
    memo = _fingerprints.get(id(machine))
    if memo is not None and memo[0] is machine:
        return memo[1]
    fingerprint = machine.fingerprint()
    if len(_fingerprints) > 64:
        _fingerprints.clear()
    _fingerprints[id(machine)] = (machine, fingerprint)
    return fingerprint


def stream_digest(instrs: list[Instr]) -> str:
    """Hex digest of an instruction stream's placement-relevant content.

    Covers index, atomic op, dependence edges, and the one-time flag --
    everything placement reads -- and nothing else (tags are
    diagnostic).
    """
    h = hashlib.blake2b(digest_size=16)
    for instr in instrs:
        h.update(b"|")
        h.update(str(instr.index).encode())
        h.update(instr.atomic.encode())
        h.update(b"1" if instr.one_time else b"0")
        for dep in instr.deps:
            h.update(b",")
            h.update(str(dep).encode())
    return h.hexdigest()


def placement_cache_stats() -> dict[str, int]:
    """Snapshot of the placement memo's counters and size."""
    with _cache_lock:
        return {
            "hits": _cache_hits,
            "misses": _cache_misses,
            "evictions": _cache_evictions,
            "entries": len(_cache),
        }


def reset_placement_cache() -> None:
    """Drop all memoized placements and zero the counters."""
    global _cache_hits, _cache_misses, _cache_evictions
    with _cache_lock:
        _cache.clear()
        _cache_hits = _cache_misses = _cache_evictions = 0


def _share(placed: PlacedBlock) -> PlacedBlock:
    """A caller-safe view of a cached placement.

    The ops list is copied (callers may not mutate the memo's master);
    the ops themselves and the summary block are immutable-in-practice
    and shared.
    """
    return PlacedBlock(placed.machine_name, list(placed.ops), placed.block)


def place_stream(
    machine: Machine,
    instrs: list[Instr] | InstrStream,
    focus_span: int = DEFAULT_FOCUS_SPAN,
    bins: BinSet | None = None,
) -> PlacedBlock:
    """Drop each instruction into the lowest feasible time slots.

    Instructions are processed in stream order; each is placed at the
    lowest time ``t`` such that

    * every flow dependence's result is available (``t >= ready``),
    * ``t`` is within the focus span of the current top of the bins, and
    * all noncoverable cost components fit simultaneously at ``t``.

    The first two conditions model the paper's "filter": an operation
    passes through the transparent (coverable) region of its
    predecessors but cannot sink below its producers' completions.

    Identical (machine, stream, focus span) placements are answered
    from a bounded LRU; passing explicit ``bins`` (shared, possibly
    pre-filled state) bypasses the memo.
    """
    global _cache_hits, _cache_misses, _cache_evictions
    if focus_span < 1:
        raise ValueError("focus span must be at least 1")
    if isinstance(instrs, InstrStream):
        instr_list = list(instrs)
    else:
        instr_list = instrs
    key = None
    if bins is None:
        key = (_machine_fingerprint(machine), stream_digest(instr_list),
               focus_span)
        with _cache_lock:
            hit = _cache.get(key)
            if hit is not None:
                _cache.move_to_end(key)
                _cache_hits += 1
        if hit is not None:
            # Memoized placements still announce the phase: traces and
            # the cost.place histogram stay complete under a warm memo.
            with trace_span("cost.place") as span:
                if span.recording:
                    span.set(machine=machine.name, ops=len(instr_list),
                             focus_span=focus_span, cycles=hit.cycles,
                             cached=True)
            return _share(hit)
        with _cache_lock:
            _cache_misses += 1
    placed = _place_uncached(machine, instr_list, focus_span, bins)
    if key is not None:
        with _cache_lock:
            _cache[key] = _share(placed)
            while len(_cache) > PLACEMENT_CACHE_LIMIT:
                _cache.popitem(last=False)
                _cache_evictions += 1
    return placed


def _place_uncached(
    machine: Machine,
    instr_list: list[Instr],
    focus_span: int,
    bins: BinSet | None,
) -> PlacedBlock:
    with trace_span("cost.place") as span:
        bin_set = bins if bins is not None else BinSet(machine)
        completions: dict[int, int] = {}
        placed = PlacedBlock(machine_name=machine.name)

        for instr in instr_list:
            op = machine.atomic(instr.atomic)
            ready = 0
            for dep in instr.deps:
                dep_done = completions.get(dep, 0)
                if dep_done > ready:
                    ready = dep_done
            floor = bin_set.top() - focus_span
            earliest = max(ready, floor, 0)
            placement = bin_set.place(op.costs, earliest)
            completion = placement.time + op.result_latency
            completions[instr.index] = completion
            placed.ops.append(PlacedOp(instr, placement.time, completion))

        placed.block = _summarize(bin_set, placed.ops)
        if span.recording:
            span.set(machine=machine.name, ops=len(instr_list),
                     focus_span=focus_span, cycles=placed.cycles)
    return placed


def _summarize(bin_set: BinSet, ops: list[PlacedOp]) -> CostBlock:
    if not ops:
        return CostBlock.empty()
    profiles = {
        bin_id: span
        for bin_id, span in bin_set.profiles().items()
        if span is not None
    }
    if not profiles:
        # Degenerate: only zero-noncoverable ops; anchor at first op time.
        lo = min(op.time for op in ops)
        completion = max(op.completion for op in ops)
        return CostBlock(lo, lo, completion)
    lo = min(first for first, _ in profiles.values())
    occupied_hi = max(last for _, last in profiles.values()) + 1
    completion = max(occupied_hi, max(op.completion for op in ops))
    occupancy = {
        bin_id: count
        for bin_id, count in bin_set.occupancy().items()
        if count > 0
    }
    return CostBlock(lo, occupied_hi, completion, profiles, occupancy)
