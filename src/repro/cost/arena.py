"""Batch placement arena: multi-stream Tetris drops with prefix dedup.

A beam round of 64 sibling candidates, a router sub-batch, or a service
chunk places many *near-identical* instruction streams back to back:
siblings differ only where a transformation touched the program, so
their compiled streams share long common prefixes.  The per-stream
kernels (:mod:`repro.cost.columnar`) re-drop every shared prefix from
scratch; the arena doesn't.

A :class:`PlacementArena` is pinned to one (machine fingerprint, focus
span) pair and exposes two complementary paths:

* :meth:`PlacementArena.place_batch` -- the explicit batch API.  All
  candidate streams are lowered into one concatenated
  structure-of-arrays (op-id / dep / one-time ``array('q')`` columns
  with per-stream offsets, dep entries rebased to global positions),
  identical streams are deduped on their ``placement_digest``, and the
  remainder are sorted by token sequence so streams sharing a prefix
  become neighbours.  Placement then walks the sorted order with a
  stack of bin-state snapshots: each stream resumes from the deepest
  snapshot covered by its common prefix with the previous stream
  (the classic suffix-array LCP argument makes consecutive LCPs
  sufficient), re-dropping only its unshared suffix.
* :meth:`PlacementArena.drop` -- the sequential path behind
  ``kernel="arena"`` in :func:`repro.cost.placement.place_stream`.
  Beam rounds and worker chunks hand streams to the estimator one at a
  time, so the arena keeps a small pool of recent placement
  trajectories (token sequence + snapshots at geometric cut points and
  at the final state); a new stream probes the pool for its longest
  shared prefix and forks from the matching snapshot instead of
  starting at slot zero.

Both paths run the *same* fused drop loop as the per-stream kernel
(:func:`repro.cost.columnar.drop_range`), just over restored bin
state -- placement from an empty bin set is a pure function of the
instruction prefix (op ids + dependence structure), so resuming a
cloned snapshot and replaying the suffix is bit-identical to an
uninterrupted drop.  ``tests/cost/test_arena_property.py`` enforces
this element-wise against both the columnar kernel and the legacy
``BinSet.place`` oracle, including the full bin grids.

Tokens are interned ids of ``(op id, resolved dep positions)`` -- the
exact pair the drop loop consumes.  ``one_time`` flags and original
instruction indices are deliberately *excluded*: placement never reads
them, so excluding them lets streams that differ only there still share
prefix state (their digests differ, their placements don't).

numpy, when importable (``pip install repro[fast]``), lowers the
prefix-analysis machinery -- the token mismatch scans behind every LCP
query run as one vectorized compare instead of a chunked walk.  The
drop loop itself stays in the shared pure-Python kernel on both paths:
bit-identity with the legacy oracle is the contract, and at these
stream sizes a dense ndarray lowering of the signed-block walk loses
to the block-skipping list kernel anyway.  ``REPRO_ARENA_NUMPY=0``
forces the pure-``array`` fallback for A/B runs and tests.
"""

from __future__ import annotations

import os
import threading
from array import array
from collections import OrderedDict
from typing import Sequence

from ..machine.compiled import compile_ops
from ..machine.machine import Machine
from ..obs import trace_span
from ..translate.stream import InstrStream
from .bins import BinSet
from .columnar import CompiledStream, _resolve, compile_stream, drop_range
from .placement import (
    DEFAULT_FOCUS_SPAN,
    PlacedBlock,
    _LazyOps,
    _machine_fingerprint,
    _memo_probe,
    _memo_store,
    _share,
    _summarize,
)

__all__ = [
    "ARENA_POOL_LIMIT",
    "HAVE_NUMPY",
    "PlacementArena",
    "arena_cache_stats",
    "arena_numpy_enabled",
    "get_arena",
    "place_batch",
    "reset_arenas",
    "set_arena_numpy",
]

try:  # pragma: no cover - exercised via both-path tests either way
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when numpy is importable (the ``repro[fast]`` extra).
HAVE_NUMPY = _np is not None

_numpy_on = HAVE_NUMPY and os.environ.get("REPRO_ARENA_NUMPY", "1") != "0"


def arena_numpy_enabled() -> bool:
    """Is the numpy lowering of the prefix machinery active?"""
    return _numpy_on


def set_arena_numpy(enabled: bool) -> bool:
    """Toggle the numpy lowering (tests exercise both paths); returns
    the previous setting.  Enabling without numpy installed raises."""
    global _numpy_on
    if enabled and not HAVE_NUMPY:
        raise RuntimeError(
            "numpy is not installed; pip install 'repro[fast]'")
    previous = _numpy_on
    _numpy_on = bool(enabled)
    return previous


# ----------------------------------------------------------------------
# Prefix tokens

#: Intern-table bound; past it the arena's token world is flushed
#: wholesale (tokens, pool, intern ids) so ids can never be reused with
#: a different meaning.
_INTERN_LIMIT = 65536

#: Cached token sequences per stream digest (per arena).
_TOKEN_CACHE_LIMIT = 4096

#: Pure-python LCP scan granularity: ``array`` slice equality is a
#: C-level memcmp, so comparing 64 tokens at a time costs ~one Python
#: bytecode per 64 tokens on the (overwhelmingly common) equal chunks.
_LCP_CHUNK = 64


def _lcp(a: array, b: array, limit: int) -> int:
    """Length of the longest common prefix of ``a`` and ``b`` (<= limit)."""
    if limit <= 0:
        return 0
    if _numpy_on:
        mismatch = _np.flatnonzero(
            _np.frombuffer(a, _np.int64, limit)
            != _np.frombuffer(b, _np.int64, limit))
        return limit if mismatch.size == 0 else int(mismatch[0])
    pos = 0
    while pos < limit:
        step = limit - pos
        if step > _LCP_CHUNK:
            step = _LCP_CHUNK
        if a[pos:pos + step] == b[pos:pos + step]:
            pos += step
            continue
        for k in range(pos, pos + step):
            if a[k] != b[k]:
                return k
    return limit


# ----------------------------------------------------------------------
# Snapshots and trajectories


class _Snapshot:
    """Frozen placement state after the first ``pos`` instructions.

    Immutable once constructed: the bins are cloned again on every
    restore, so one snapshot can seed any number of forks (including
    concurrently from several threads).
    """

    __slots__ = ("pos", "bins", "times", "completions")

    def __init__(self, pos: int, bins: BinSet,
                 times: list[int], completions: list[int]):
        self.pos = pos
        self.bins = bins
        self.times = times
        self.completions = completions


class _Trajectory:
    """One pooled placement: its token sequence plus resume points."""

    __slots__ = ("tokens", "snaps")

    def __init__(self, tokens: array, snaps: list[_Snapshot]):
        self.tokens = tokens
        self.snaps = snaps          # ascending pos; last is the final state


#: Sequential-path trajectory pool bound (per arena).
ARENA_POOL_LIMIT = 16

#: Geometric snapshot cut points for pooled trajectories: cheap shallow
#: resume points plus deeper ones for long streams, without cloning the
#: bins at every instruction.
_SNAP_CUTS = (16, 32, 64, 128, 256, 512)

#: Don't bother forking for prefixes shorter than this: the clone costs
#: more than re-dropping a handful of instructions.
_MIN_RESUME = 8


# ----------------------------------------------------------------------
# Aggregate counters (exported as repro_arena_* gauges on /metrics)

_stats_lock = threading.Lock()


def _zero_stats() -> dict[str, int]:
    return {
        "batches": 0,          # place_batch calls
        "streams": 0,          # streams handed to either path
        "dedup": 0,            # duplicate-digest streams answered by a sibling
        "memo_hits": 0,        # streams answered by the placement memo
        "prefix_reuses": 0,    # streams resumed from a prefix snapshot
        "prefix_ops_saved": 0,  # instructions not re-dropped thanks to resume
        "placed": 0,           # streams that ran the drop loop
        "drops": 0,            # instructions actually dropped
    }


_stats = _zero_stats()


def _bump(**deltas: int) -> None:
    with _stats_lock:
        for key, value in deltas.items():
            _stats[key] += value


def arena_cache_stats() -> dict[str, int]:
    """Snapshot of the arena counters plus registry/pool occupancy."""
    with _stats_lock:
        out = dict(_stats)
    with _arenas_lock:
        out["arenas"] = len(_arenas)
        out["pool_entries"] = sum(
            len(arena._pool) for arena in _arenas.values())
    return out


# ----------------------------------------------------------------------


class PlacementArena:
    """Batch/prefix-sharing placement for one (machine, focus span).

    All state is guarded by one lock; snapshots are immutable and bins
    are cloned on restore, so the drop loops themselves run unlocked.
    """

    def __init__(self, machine: Machine, focus_span: int = DEFAULT_FOCUS_SPAN):
        if focus_span < 1:
            raise ValueError("focus span must be at least 1")
        self.machine = machine
        self.focus_span = focus_span
        self.fingerprint = _machine_fingerprint(machine)
        self.ops = compile_ops(machine, self.fingerprint)
        self._lock = threading.Lock()
        self._intern: dict[tuple, int] = {}
        self._tokens: OrderedDict[str, array] = OrderedDict()
        self._pool: OrderedDict[str, _Trajectory] = OrderedDict()

    # -- tokens ---------------------------------------------------------
    def _flush_locked(self) -> None:
        """Drop every structure that embeds intern ids (see _INTERN_LIMIT)."""
        self._intern.clear()
        self._tokens.clear()
        self._pool.clear()

    def _tokenize_locked(self, stream: CompiledStream) -> array:
        tokens = self._tokens.get(stream.digest)
        if tokens is not None:
            self._tokens.move_to_end(stream.digest)
            return tokens
        if len(self._intern) > _INTERN_LIMIT:
            self._flush_locked()
        intern = self._intern
        op_ids = stream.op_ids
        dep_ptr = stream.dep_ptr
        deps = stream.deps
        tokens = array("q", bytes(0))
        for i in range(len(op_ids)):
            key = (op_ids[i], tuple(deps[dep_ptr[i]:dep_ptr[i + 1]]))
            token = intern.get(key)
            if token is None:
                token = len(intern)
                intern[key] = token
            tokens.append(token)
        self._tokens[stream.digest] = tokens
        while len(self._tokens) > _TOKEN_CACHE_LIMIT:
            self._tokens.popitem(last=False)
        return tokens

    def _compile(self, stream) -> CompiledStream:
        """Normalize one batch entry to a CompiledStream on this machine."""
        if isinstance(stream, CompiledStream):
            if stream.fingerprint != self.fingerprint:
                raise ValueError(
                    "compiled stream belongs to a different machine "
                    f"({stream.fingerprint[:12]} != {self.fingerprint[:12]})")
            return stream
        if isinstance(stream, InstrStream):
            return compile_stream(self.machine, stream.instrs,
                                  stream.digest(),
                                  fingerprint=self.fingerprint)
        return compile_stream(self.machine, stream,
                              fingerprint=self.fingerprint)

    # -- the sequential path (kernel="arena") ---------------------------
    def drop(self, stream: CompiledStream
             ) -> tuple[list[int], list[int], BinSet]:
        """Place one stream, forking from the pool's best shared prefix.

        Returns ``(times, completions, bins)`` exactly as an
        uninterrupted :func:`~repro.cost.columnar.drop_columns` over
        fresh bins would.  The returned bins are shared with the pooled
        final-state snapshot and must not be mutated by the caller.
        """
        n = len(stream)
        with trace_span("arena.compile") as span:
            best: _Snapshot | None = None
            with self._lock:
                tokens = self._tokenize_locked(stream)
                for traj in self._pool.values():
                    limit = min(n, len(traj.tokens))
                    if limit < _MIN_RESUME:
                        continue
                    if best is not None and limit <= best.pos:
                        continue   # cannot beat the fork we already have
                    shared = _lcp(tokens, traj.tokens, limit)
                    if shared < _MIN_RESUME:
                        continue
                    for snap in reversed(traj.snaps):
                        if snap.pos <= shared:
                            if best is None or snap.pos > best.pos:
                                best = snap
                            break
            if span.recording:
                span.set(ops=n, resume=0 if best is None else best.pos,
                         pool=len(self._pool))

        with trace_span("arena.drop") as span:
            if best is not None and best.pos >= _MIN_RESUME:
                resume = best.pos
                bin_set = best.bins.clone()
                times = list(best.times)
                completions = list(best.completions)
                times.extend([0] * (n - resume))
                completions.extend([0] * (n - resume))
            else:
                resume = 0
                bin_set = BinSet(self.machine)
                times = [0] * n
                completions = [0] * n
            resolved = _resolve(self.ops, bin_set)
            op_ids, dep_ptr, dep_col = (
                stream.op_ids, stream.dep_ptr, stream.deps)
            snaps: list[_Snapshot] = []
            pos = resume
            for cut in _SNAP_CUTS:
                if cut <= pos or cut >= n:
                    continue
                drop_range(op_ids, dep_ptr, dep_col, self.ops, resolved,
                           bin_set, self.focus_span, times, completions,
                           pos, cut)
                snaps.append(_Snapshot(cut, bin_set.clone(),
                                       times[:cut], completions[:cut]))
                pos = cut
            drop_range(op_ids, dep_ptr, dep_col, self.ops, resolved,
                       bin_set, self.focus_span, times, completions, pos, n)
            # The final state rides along for free: the live bins are
            # shared (cloned only if someone later forks from them).
            snaps.append(_Snapshot(n, bin_set, times[:], completions[:]))
            with self._lock:
                self._pool[stream.digest] = _Trajectory(tokens, snaps)
                self._pool.move_to_end(stream.digest)
                while len(self._pool) > ARENA_POOL_LIMIT:
                    self._pool.popitem(last=False)
            if span.recording:
                span.set(ops=n, dropped=n - resume)
        _bump(streams=1, placed=1, drops=n - resume,
              **({"prefix_reuses": 1, "prefix_ops_saved": resume}
                 if resume else {}))
        return times, completions, bin_set

    # -- the batch path -------------------------------------------------
    def place_batch(self, streams: Sequence, *,
                    use_memo: bool = True) -> list[PlacedBlock]:
        """Place many streams in one pass; results in input order.

        ``streams`` may mix :class:`CompiledStream`,
        :class:`~repro.translate.stream.InstrStream`, and plain
        ``Instr`` sequences.  Identical streams (same
        ``placement_digest``) are placed once; distinct streams sorted
        into prefix-adjacency each re-drop only their unshared suffix.
        With ``use_memo`` the shared placement LRU is probed first and
        fresh results are stored back.
        """
        machine = self.machine
        results: list[PlacedBlock | None] = [None] * len(streams)
        with trace_span("arena.compile") as span:
            compiled = [self._compile(s) for s in streams]
            # Full-stream dedup, then memo probe once per unique digest.
            unique: OrderedDict[str, list[int]] = OrderedDict()
            by_digest: dict[str, CompiledStream] = {}
            for idx, stream in enumerate(compiled):
                unique.setdefault(stream.digest, []).append(idx)
                by_digest.setdefault(stream.digest, stream)
            dedup = len(compiled) - len(unique)
            memo_hits = 0
            need: list[CompiledStream] = []
            for digest, slots in unique.items():
                hit = (_memo_probe(self.fingerprint, digest, self.focus_span)
                       if use_memo else None)
                if hit is not None:
                    memo_hits += 1
                    results[slots[0]] = hit
                    for slot in slots[1:]:
                        results[slot] = _share(hit)
                    continue
                need.append(by_digest[digest])
            with self._lock:
                tokens = [self._tokenize_locked(s) for s in need]
            order = sorted(range(len(need)),
                           key=lambda k: tokens[k].tobytes())
            # Consecutive LCPs in sorted order; lcp(i, j) for any i < j
            # is their running minimum, which is all the stack needs.
            lcps = [0] * (len(order) + 1)
            for p in range(1, len(order)):
                a = tokens[order[p - 1]]
                b = tokens[order[p]]
                lcps[p] = _lcp(a, b, min(len(a), len(b)))
            # One structure-of-arrays over every candidate: concatenated
            # columns, dep entries rebased to global stream positions.
            offsets = []
            if _numpy_on and order:
                # Vectorized lowering: rebase per-stream columns with
                # ndarray adds, concatenate once, and convert back to
                # array('q') so the drop loop's indexing stays on the
                # fast pure-python representation.
                op_parts, dep_parts, one_parts = [], [], []
                ptr_parts = [_np.zeros(1, _np.int64)]
                off = dep_base = 0
                for k in order:
                    stream = need[k]
                    offsets.append(off)
                    op_parts.append(_np.frombuffer(stream.op_ids, _np.int64))
                    if len(stream.deps):
                        dep_parts.append(
                            _np.frombuffer(stream.deps, _np.int64) + off)
                    ptr_parts.append(
                        _np.frombuffer(stream.dep_ptr, _np.int64)[1:]
                        + dep_base)
                    one_parts.append(
                        _np.frombuffer(stream.one_time, _np.int8))
                    off += len(stream)
                    dep_base += len(stream.deps)
                g_op = array("q", _np.concatenate(op_parts).tobytes())
                g_ptr = array("q", _np.concatenate(ptr_parts).tobytes())
                g_dep = array("q", _np.concatenate(dep_parts).tobytes()
                              if dep_parts else b"")
                g_one = array("b", _np.concatenate(one_parts).tobytes())
            else:
                g_op = array("q", bytes(0))
                g_ptr = array("q", [0])
                g_dep = array("q", bytes(0))
                g_one = array("b", bytes(0))
                for k in order:
                    stream = need[k]
                    off = len(g_op)
                    offsets.append(off)
                    g_op.extend(stream.op_ids)
                    dep_base = len(g_dep)
                    g_dep.extend(d + off for d in stream.deps)
                    g_ptr.extend(v + dep_base for v in stream.dep_ptr[1:])
                    g_one.extend(stream.one_time)
            if span.recording:
                span.set(streams=len(streams), unique=len(need),
                         dedup=dedup, memo_hits=memo_hits,
                         ops=len(g_op))

        reuses = saved = dropped = 0
        with trace_span("arena.drop") as span:
            total = len(g_op)
            times = [0] * total
            completions = [0] * total
            stack: list[_Snapshot] = []
            # One *working* bin set for the whole batch, restored in
            # place per stream: the resolved component bindings refer
            # to its SlotArray objects, so resolving once here replaces
            # a per-stream _resolve against a fresh clone.
            work = BinSet(machine)
            resolved = _resolve(self.ops, work)
            for p, k in enumerate(order):
                stream = need[k]
                n = len(stream)
                off = offsets[p]
                shared = lcps[p]
                while stack and stack[-1].pos > shared:
                    stack.pop()
                if stack:
                    snap = stack[-1]
                    resume = snap.pos
                    work.restore_from(snap.bins)
                    times[off:off + resume] = snap.times
                    completions[off:off + resume] = snap.completions
                    reuses += 1
                    saved += resume
                else:
                    resume = 0
                    if p:
                        work.reset()
                pos = resume
                cut = lcps[p + 1]
                if cut > pos:
                    # The next stream shares [0, cut): snapshot there so
                    # it (and any deeper siblings) fork instead of
                    # replaying this prefix.
                    drop_range(g_op, g_ptr, g_dep, self.ops, resolved,
                               work, self.focus_span, times, completions,
                               off + pos, off + cut)
                    stack.append(_Snapshot(cut, work.clone(),
                                           times[off:off + cut],
                                           completions[off:off + cut]))
                    pos = cut
                drop_range(g_op, g_ptr, g_dep, self.ops, resolved,
                           work, self.focus_span, times, completions,
                           off + pos, off + n)
                dropped += n - resume
                t_col = times[off:off + n]
                c_col = completions[off:off + n]
                placed = PlacedBlock(
                    machine_name=machine.name,
                    lazy=_LazyOps(stream.instrs, t_col, c_col))
                placed.block = _summarize(work, (), t_col, c_col)
                if use_memo:
                    _memo_store(self.fingerprint, stream.digest,
                                self.focus_span, placed)
                slots = unique[stream.digest]
                results[slots[0]] = placed
                for slot in slots[1:]:
                    results[slot] = _share(placed)
            if span.recording:
                span.set(placed=len(order), dropped=dropped,
                         prefix_reuses=reuses, prefix_ops_saved=saved)
        _bump(batches=1, streams=len(streams), dedup=dedup,
              memo_hits=memo_hits, prefix_reuses=reuses,
              prefix_ops_saved=saved, placed=len(order), drops=dropped)
        return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Registry

#: Arenas kept alive at once; keyed (machine fingerprint, focus span).
_ARENA_LIMIT = 8

_arenas: OrderedDict[tuple[str, int], PlacementArena] = OrderedDict()
_arenas_lock = threading.Lock()


def get_arena(machine: Machine,
              focus_span: int = DEFAULT_FOCUS_SPAN) -> PlacementArena:
    """The shared arena for ``(machine fingerprint, focus_span)``."""
    key = (_machine_fingerprint(machine), focus_span)
    with _arenas_lock:
        arena = _arenas.get(key)
        if arena is not None:
            _arenas.move_to_end(key)
            return arena
    arena = PlacementArena(machine, focus_span)   # compile_ops outside lock
    with _arenas_lock:
        existing = _arenas.get(key)
        if existing is not None:
            return existing
        _arenas[key] = arena
        while len(_arenas) > _ARENA_LIMIT:
            _arenas.popitem(last=False)
    return arena


def reset_arenas() -> None:
    """Drop every arena (pools, tokens, intern ids) and zero the counters."""
    global _stats
    with _arenas_lock:
        _arenas.clear()
    with _stats_lock:
        _stats = _zero_stats()


def place_batch(
    machine: Machine,
    streams: Sequence,
    focus_span: int = DEFAULT_FOCUS_SPAN,
    *,
    use_memo: bool = True,
) -> list[PlacedBlock]:
    """Place ``streams`` through the shared arena; results in input order.

    Convenience wrapper over
    :meth:`PlacementArena.place_batch` -- see there for semantics.
    """
    return get_arena(machine, focus_span).place_batch(
        streams, use_memo=use_memo)
