"""Inter-block overlap estimation (paper Figure 9).

"Overlapping between basic blocks or iterations of a loop can be
estimated by matching the top and bottom of the geometry shape of the
cost block."

Given blocks A then B, the overlap is the largest upward shift of B
into A's top region such that, in every bin both blocks use, B's first
occupied slot still lands strictly above A's last occupied slot.  The
caller is responsible for dependence legality (the aggregator only
applies iteration overlap when the loop body carries no loop-carried
flow dependence on the critical path).
"""

from __future__ import annotations

from .costblock import CostBlock

__all__ = ["max_overlap", "combined_cycles", "steady_state_cycles"]


def max_overlap(first: CostBlock, second: CostBlock) -> int:
    """Maximal legal shape overlap (in cycles) between two cost blocks."""
    if first.is_empty or second.is_empty:
        return 0
    limit = min(first.occupied_cycles, second.occupied_cycles)
    shared = first.used_bins() & second.used_bins()
    best = limit
    for bin_id in shared:
        top_gap = first.top_gap(bin_id)
        bottom_gap = second.bottom_gap(bin_id)
        assert top_gap is not None and bottom_gap is not None
        # B may rise until its first slot in this bin would collide with
        # A's last: that allows (top gap of A) + (bottom gap of B) slots.
        best = min(best, top_gap + bottom_gap)
    # The latency tail of A (completion beyond occupancy) does not block
    # independent work, so it never reduces shape overlap.
    return max(0, best)


def combined_cycles(first: CostBlock, second: CostBlock) -> int:
    """Cycles of A followed by B with shape overlap (Figure 9's example)."""
    if first.is_empty:
        return second.cycles
    if second.is_empty:
        return first.cycles
    overlap = max_overlap(first, second)
    start_b = first.occupied_hi - overlap
    end = max(first.completion, start_b + second.completion - second.lo)
    return end - first.lo


def steady_state_cycles(block: CostBlock) -> int:
    """Per-iteration cost of a loop body in steady state.

    Overlapping an iteration's cost block with itself: each iteration
    costs the full block the first time, and ``occupied - overlap``
    thereafter (never less than the critical bin's occupancy, which is a
    hard throughput floor).
    """
    if block.is_empty:
        return 0
    self_overlap = max_overlap(block, block)
    floor = max(block.bin_occupancy.values(), default=0)
    return max(block.occupied_cycles - self_overlap, floor, 1)
