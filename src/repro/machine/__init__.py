"""Architecture descriptions: units, atomic ops, cost tables, machines."""

from .alpha import alpha_machine
from .atomic import AtomicCostTable, AtomicOp
from .compiled import CompiledOps, compile_ops, reset_compiled_ops
from .family import (
    DEFAULT_WIDTH_LADDER,
    MechanisticTerms,
    family_machine,
    family_width_ladder,
    mechanistic_cycles,
    penalty_branch_miss,
    penalty_cache_miss,
)
from .machine import Machine, MemoryGeometry
from .power import POWER_ATOMIC_MAPPING, build_power_table, power_machine
from .registry import (
    cached_machine,
    get_machine,
    machine_fingerprint,
    machine_names,
    register_machine,
)
from .scalar import scalar_machine
from .training import TrainingProbe, calibrate, make_probes
from .units import FunctionalUnit, UnitCost, UnitKind
from .wide import wide_machine

__all__ = [
    "AtomicCostTable", "AtomicOp", "CompiledOps", "DEFAULT_WIDTH_LADDER",
    "FunctionalUnit",
    "Machine", "MechanisticTerms", "MemoryGeometry",
    "POWER_ATOMIC_MAPPING", "UnitCost",
    "UnitKind", "build_power_table", "cached_machine", "compile_ops",
    "family_machine", "family_width_ladder",
    "get_machine", "machine_fingerprint",
    "machine_names", "mechanistic_cycles", "penalty_branch_miss",
    "penalty_cache_miss", "power_machine", "register_machine",
    "reset_compiled_ops", "scalar_machine", "wide_machine",
    "TrainingProbe", "alpha_machine", "calibrate", "make_probes",
]
