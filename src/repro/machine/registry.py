"""Machine registry: look up architecture descriptions by name.

"Adding a new architecture to the cost model is a matter of defining
the atomic operation mapping and the atomic operation cost table"
(section 2.2.1); register the resulting factory here to make it
reachable from the CLI-facing API.
"""

from __future__ import annotations

from typing import Callable

from .alpha import alpha_machine
from .machine import Machine
from .power import power_machine
from .scalar import scalar_machine
from .wide import wide_machine

__all__ = [
    "cached_machine", "get_machine", "machine_fingerprint",
    "machine_names", "register_machine",
]

_FACTORIES: dict[str, Callable[[], Machine]] = {
    "alpha": alpha_machine,
    "power": power_machine,
    "scalar": scalar_machine,
    "wide": wide_machine,
}

#: name -> (factory that built it, Machine) / (factory, fingerprint).
#: Factories are deterministic (the preset machines are literal
#: constructions), so the memo is valid as long as the registered
#: factory object is unchanged; registering a different factory under
#: the same name -- what recalibration does -- invalidates by identity.
_MACHINE_MEMO: dict[str, tuple[Callable[[], Machine], Machine]] = {}
_FINGERPRINT_MEMO: dict[str, tuple[Callable[[], Machine], str]] = {}


def register_machine(
    name: str,
    factory: Callable[[], Machine],
    *,
    replace: bool = False,
) -> None:
    """Register a new architecture factory.

    Overwriting is an error unless ``replace=True`` -- the path
    recalibration uses to swap in a freshly fitted cost table.  The
    memos invalidate by factory identity, so a replacement factory is
    picked up (and its new fingerprint recomputed) on the next lookup.
    """
    if name in _FACTORIES and not replace:
        raise ValueError(f"machine {name!r} already registered")
    _FACTORIES[name] = factory


def machine_names() -> list[str]:
    return sorted(_FACTORIES)


def get_machine(name: str) -> Machine:
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {', '.join(machine_names())}"
        ) from None


def cached_machine(name: str) -> Machine:
    """Like :func:`get_machine`, but reuses one instance per factory.

    ``Machine`` is a frozen dataclass, so sharing an instance across
    requests is safe; serving hot paths use this to avoid rebuilding
    the full cost table per request.
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        return get_machine(name)    # raises the uniform KeyError
    memo = _MACHINE_MEMO.get(name)
    if memo is not None and memo[0] is factory:
        return memo[1]
    machine = factory()
    _MACHINE_MEMO[name] = (factory, machine)
    return machine


def machine_fingerprint(name: str) -> str:
    """Cost-table fingerprint of ``name`` without rebuilding the machine.

    ``Machine.fingerprint()`` hashes the whole cost table; computing it
    (and the machine itself) once per registered factory instead of per
    request keeps it off the serving hot path while still recomputing
    when recalibration registers a retrained factory under the name.
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        get_machine(name)           # raises the uniform KeyError
    memo = _FINGERPRINT_MEMO.get(name)
    if memo is not None and memo[0] is factory:
        return memo[1]
    fingerprint = cached_machine(name).fingerprint()
    _FINGERPRINT_MEMO[name] = (factory, fingerprint)
    return fingerprint
