"""Machine registry: look up architecture descriptions by name.

"Adding a new architecture to the cost model is a matter of defining
the atomic operation mapping and the atomic operation cost table"
(section 2.2.1); register the resulting factory here to make it
reachable from the CLI-facing API.
"""

from __future__ import annotations

from typing import Callable

from .alpha import alpha_machine
from .machine import Machine
from .power import power_machine
from .scalar import scalar_machine
from .wide import wide_machine

__all__ = ["get_machine", "register_machine", "machine_names"]

_FACTORIES: dict[str, Callable[[], Machine]] = {
    "alpha": alpha_machine,
    "power": power_machine,
    "scalar": scalar_machine,
    "wide": wide_machine,
}


def register_machine(name: str, factory: Callable[[], Machine]) -> None:
    """Register a new architecture factory (overwriting is an error)."""
    if name in _FACTORIES:
        raise ValueError(f"machine {name!r} already registered")
    _FACTORIES[name] = factory


def machine_names() -> list[str]:
    return sorted(_FACTORIES)


def get_machine(name: str) -> Machine:
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {', '.join(machine_names())}"
        ) from None
