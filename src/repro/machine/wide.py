"""A wider superscalar variant (POWER2-flavoured) for ablations.

Doubles the FXU, FPU, and load/store pipelines relative to the POWER
description ("for architectures with multiple operation pipes, more
bins can be added", section 2.1).  Used by the ablation benches to show
that the cost model tracks added machine parallelism while an
operation-count model cannot.
"""

from __future__ import annotations

from .machine import Machine, MemoryGeometry
from .power import POWER_ATOMIC_MAPPING, build_power_table
from .units import FunctionalUnit, UnitKind

__all__ = ["wide_machine"]


def wide_machine() -> Machine:
    """POWER with two pipelines in each of FXU, FPU, and LSU."""
    return Machine(
        name="wide",
        units=(
            FunctionalUnit(UnitKind.FXU, 2),
            FunctionalUnit(UnitKind.FPU, 2),
            FunctionalUnit(UnitKind.BRANCH, 1),
            FunctionalUnit(UnitKind.CRLOGIC, 1),
            FunctionalUnit(UnitKind.LSU, 2),
        ),
        table=build_power_table(),
        atomic_mapping=dict(POWER_ATOMIC_MAPPING),
        supports_fma=True,
        dispatch_width=6,
        fp_registers=32,
        int_registers=32,
        memory=MemoryGeometry(
            cache_line_bytes=128,
            cache_size_bytes=256 * 1024,
            cache_associativity=4,
            cache_miss_cycles=10,
        ),
    )
