"""Single-issue scalar baseline machine.

A "traditional processor" in the paper's sense: one do-everything unit,
no overlap, every operation blocks for its full latency (all cost is
noncoverable).  On this machine an operation-count model and the Tetris
model agree -- the gap between them opens up only on the superscalar
targets, which is exactly the paper's "off by a factor of ten" argument
(section 1.2) that bench ``E-OPC`` reproduces.
"""

from __future__ import annotations

from .atomic import AtomicCostTable, AtomicOp
from .machine import Machine, MemoryGeometry
from .units import FunctionalUnit, UnitCost, UnitKind

__all__ = ["scalar_machine"]

#: name -> blocking latency of the single ALU.
_LATENCIES = {
    "alu_add": 1,
    "alu_mul": 4,
    "alu_imul": 5,
    "alu_div": 20,
    "alu_fadd": 2,
    "alu_fmul": 3,
    "alu_fdiv": 20,
    "alu_sqrt": 30,
    "alu_load": 2,
    "alu_store": 2,
    "alu_cmp": 1,
    "alu_branch": 2,
    "alu_call": 4,
}


def _build_table() -> AtomicCostTable:
    table = AtomicCostTable()
    for name, latency in _LATENCIES.items():
        table.define(AtomicOp(
            name,
            (UnitCost(UnitKind.ALU, latency),),
            f"scalar {name.removeprefix('alu_')}: {latency} blocking cycles",
        ))
    return table


_MAPPING: dict[str, tuple[str, ...]] = {
    "iadd": ("alu_add",), "isub": ("alu_add",), "ineg": ("alu_add",),
    "imul": ("alu_imul",), "imul_small": ("alu_imul",), "idiv": ("alu_div",),
    "land": ("alu_add",), "lor": ("alu_add",), "lnot": ("alu_add",),
    "fadd": ("alu_fadd",), "fsub": ("alu_fadd",), "fneg": ("alu_fadd",),
    "fmul": ("alu_fmul",), "fdiv": ("alu_fdiv",), "fsqrt": ("alu_sqrt",),
    "dadd": ("alu_fadd",), "dsub": ("alu_fadd",), "dneg": ("alu_fadd",),
    "dmul": ("alu_fmul",), "ddiv": ("alu_fdiv",), "dsqrt": ("alu_sqrt",),
    # No fused multiply-add: the translator falls back to fmul + fadd.
    "iload": ("alu_load",), "fload": ("alu_load",), "dload": ("alu_load",),
    "istore": ("alu_store",), "fstore": ("alu_store",), "dstore": ("alu_store",),
    "icmp": ("alu_cmp",), "fcmp": ("alu_cmp",), "dcmp": ("alu_cmp",),
    "br": ("alu_branch",), "jmp": ("alu_branch",),
    "cvt_if": ("alu_fadd",), "cvt_fi": ("alu_fadd",),
    "cvt_fd": ("alu_fadd",), "cvt_df": ("alu_fadd",),
    "iabs": ("alu_add",), "fabs": ("alu_fadd",), "dabs": ("alu_fadd",),
    "fmin": ("alu_cmp", "alu_fadd"), "fmax": ("alu_cmp", "alu_fadd"),
    "imin": ("alu_cmp", "alu_add"), "imax": ("alu_cmp", "alu_add"),
    "call": ("alu_call",),
}


def scalar_machine() -> Machine:
    """A single-issue, non-overlapping scalar processor."""
    return Machine(
        name="scalar",
        units=(FunctionalUnit(UnitKind.ALU, 1),),
        table=_build_table(),
        atomic_mapping=dict(_MAPPING),
        supports_fma=False,
        dispatch_width=1,
        fp_registers=16,
        int_registers=16,
        memory=MemoryGeometry(
            cache_line_bytes=32,
            cache_size_bytes=32 * 1024,
            cache_associativity=2,
            cache_miss_cycles=20,
        ),
    )
