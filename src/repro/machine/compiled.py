"""Per-machine op-cost compilation for the placement fast path.

The placement kernel (``repro.cost.columnar``) must not pay a
``machine.atomic(name)`` dict lookup, a ``cost.noncoverable > 0``
filter, or a ``result_latency`` property walk per instruction: all of
those are invariants of the *machine*, not of the stream being placed.
This module interns every atomic op of a machine into a dense integer
id once per cost-table fingerprint and precomputes, per id:

* the tuple of nonzero-noncoverable components as ``(kind_slot,
  length)`` pairs, in cost-table order (the order legacy
  ``BinSet.place`` fills them in);
* the result latency (``max(noncoverable + coverable)`` over units);

plus, per unit-kind slot, the list of ``(kind, pipe)`` bin ids in
machine order -- the pipe tie-break order of the legacy path.

Compilation is cached by :meth:`Machine.fingerprint`, with an identity
memo in front so the hot path never re-hashes the cost table; training
(:mod:`repro.machine.training`) produces a machine with a new
fingerprint and therefore a fresh compilation.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from .machine import Machine
from .units import UnitKind

__all__ = ["CompiledOps", "compile_ops", "reset_compiled_ops"]


@dataclass(frozen=True)
class CompiledOps:
    """Dense-id view of one machine's atomic operation cost table."""

    fingerprint: str
    #: atomic op name -> dense id (ids are assigned in sorted-name order,
    #: so equal fingerprints always intern identically).
    index_of: dict[str, int]
    names: tuple[str, ...]
    #: per id: result latency in cycles.
    latency: array
    #: per id: ((kind_slot, noncoverable), ...) for each component with
    #: nonzero noncoverable cost, in cost-table order -- or None when a
    #: noncoverable component needs a unit this machine lacks (placing
    #: such an op raises, exactly as the legacy path's pipe lookup did).
    components: tuple[tuple[tuple[int, int], ...] | None, ...]
    #: unit kinds in machine order; ``kind_slot`` indexes this.
    kinds: tuple[UnitKind, ...]
    #: per kind slot: the (kind, pipe) bin ids, in machine pipe order.
    pipes: tuple[tuple[tuple[UnitKind, int], ...], ...]

    def __len__(self) -> int:
        return len(self.names)


#: fingerprint -> compilation (never stale: the fingerprint covers the
#: whole cost table, unit inventory, and mapping).
_BY_FINGERPRINT: dict[str, CompiledOps] = {}
#: id(machine) -> (machine, compilation) fast path, so the common case
#: (the same registry-singleton machine over and over) costs one dict
#: lookup instead of a cost-table hash.
_BY_IDENTITY: dict[int, tuple[Machine, CompiledOps]] = {}


def reset_compiled_ops() -> None:
    """Drop all cached compilations (tests)."""
    _BY_FINGERPRINT.clear()
    _BY_IDENTITY.clear()


def compile_ops(machine: Machine, fingerprint: str | None = None) -> CompiledOps:
    """The per-machine compilation, memoized by cost-table fingerprint."""
    memo = _BY_IDENTITY.get(id(machine))
    if memo is not None and memo[0] is machine:
        return memo[1]
    if fingerprint is None:
        fingerprint = machine.fingerprint()
    compiled = _BY_FINGERPRINT.get(fingerprint)
    if compiled is None:
        compiled = _compile(machine, fingerprint)
        # Real processes see a handful of machines; randomized test
        # suites see thousands.  Flush wholesale rather than LRU: a
        # re-compile is cheap and the identity memo still short-circuits
        # the common case.
        if len(_BY_FINGERPRINT) > 256:
            _BY_FINGERPRINT.clear()
        _BY_FINGERPRINT[fingerprint] = compiled
    if len(_BY_IDENTITY) > 64:
        _BY_IDENTITY.clear()
    _BY_IDENTITY[id(machine)] = (machine, compiled)
    return compiled


def _compile(machine: Machine, fingerprint: str) -> CompiledOps:
    kinds = tuple(u.kind for u in machine.units)
    kind_slot = {kind: slot for slot, kind in enumerate(kinds)}
    pipes = tuple(
        tuple((u.kind, i) for i in range(u.count)) for u in machine.units
    )
    names = tuple(machine.table.names())
    index_of = {name: i for i, name in enumerate(names)}
    latency = array("q", bytes(0))
    components: list[tuple[tuple[int, int], ...] | None] = []
    for name in names:
        op = machine.table[name]
        latency.append(op.result_latency)
        needed = [c for c in op.costs if c.noncoverable > 0]
        if any(c.unit not in kind_slot for c in needed):
            components.append(None)
        else:
            components.append(tuple(
                (kind_slot[c.unit], c.noncoverable) for c in needed
            ))
    return CompiledOps(
        fingerprint=fingerprint,
        index_of=index_of,
        names=names,
        latency=latency,
        components=tuple(components),
        kinds=kinds,
        pipes=pipes,
    )
