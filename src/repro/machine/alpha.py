"""Alpha 21064-flavoured machine description.

The paper's motivating trend names "Cray T3Ds that use Alpha Chips"
alongside the IBM SP machines.  The 21064 is a dual-issue superscalar
without fused multiply-add, with deeper FP latencies than POWER
(6-cycle pipelined FP add/multiply) and a 3-cycle load.  Latencies
follow the published 21064 hardware reference; as with the POWER
description, only the atomic mapping and the cost table are new --
"adding a new architecture to the cost model is a matter of defining
the atomic operation mapping and the atomic operation cost table".
"""

from __future__ import annotations

from .atomic import AtomicCostTable, AtomicOp
from .machine import Machine, MemoryGeometry
from .units import FunctionalUnit, UnitCost, UnitKind

__all__ = ["alpha_machine"]


def _build_table() -> AtomicCostTable:
    table = AtomicCostTable()
    define = table.define
    define(AtomicOp(
        "ebox_op", (UnitCost(UnitKind.FXU, 1),),
        "integer operate (EBOX): single-cycle",
    ))
    define(AtomicOp(
        "ebox_mul", (UnitCost(UnitKind.FXU, 1, 20),),
        "integer multiply: 21-cycle latency, partially pipelined",
    ))
    define(AtomicOp(
        "fbox_op", (UnitCost(UnitKind.FPU, 1, 5),),
        "FP add/sub/mul (FBOX): 6-cycle latency, fully pipelined",
    ))
    define(AtomicOp(
        "fbox_div", (UnitCost(UnitKind.FPU, 30, 4),),
        "FP divide: ~34 cycles, blocking",
    ))
    define(AtomicOp(
        "fbox_sqrt", (UnitCost(UnitKind.FPU, 60, 8),),
        "FP square root (software sequence)",
    ))
    define(AtomicOp(
        "abox_load", (UnitCost(UnitKind.LSU, 1, 2),),
        "D-cache load (ABOX): 3-cycle latency",
    ))
    define(AtomicOp(
        "abox_store", (UnitCost(UnitKind.LSU, 1),),
        "store: one ABOX slot (write buffer absorbs latency)",
    ))
    define(AtomicOp(
        "ebox_cmp", (UnitCost(UnitKind.FXU, 1),),
        "integer compare into a register",
    ))
    define(AtomicOp(
        "fbox_cmp", (UnitCost(UnitKind.FPU, 1, 5),),
        "FP compare",
    ))
    define(AtomicOp(
        "ibox_br", (UnitCost(UnitKind.BRANCH, 1),),
        "conditional branch (IBOX predicts)",
    ))
    define(AtomicOp(
        "call_linkage",
        (UnitCost(UnitKind.BRANCH, 1), UnitCost(UnitKind.FXU, 2)),
        "jsr linkage overhead",
    ))
    return table


_MAPPING: dict[str, tuple[str, ...]] = {
    "iadd": ("ebox_op",), "isub": ("ebox_op",), "ineg": ("ebox_op",),
    "imul": ("ebox_mul",), "imul_small": ("ebox_mul",), "idiv": ("fbox_div",),
    "land": ("ebox_op",), "lor": ("ebox_op",), "lnot": ("ebox_op",),
    "fadd": ("fbox_op",), "fsub": ("fbox_op",), "fneg": ("fbox_op",),
    "fmul": ("fbox_op",), "fdiv": ("fbox_div",), "fsqrt": ("fbox_sqrt",),
    "dadd": ("fbox_op",), "dsub": ("fbox_op",), "dneg": ("fbox_op",),
    "dmul": ("fbox_op",), "ddiv": ("fbox_div",), "dsqrt": ("fbox_sqrt",),
    # No multiply-and-add on Alpha: the translator decomposes fma.
    "iload": ("abox_load",), "fload": ("abox_load",), "dload": ("abox_load",),
    "istore": ("abox_store",), "fstore": ("abox_store",), "dstore": ("abox_store",),
    "icmp": ("ebox_cmp",), "fcmp": ("fbox_cmp",), "dcmp": ("fbox_cmp",),
    "br": ("ibox_br",), "jmp": ("ibox_br",),
    "cvt_if": ("fbox_op",), "cvt_fi": ("fbox_op",),
    "cvt_fd": ("fbox_op",), "cvt_df": ("fbox_op",),
    "iabs": ("ebox_op",), "fabs": ("fbox_op",), "dabs": ("fbox_op",),
    "fmin": ("fbox_cmp", "fbox_op"), "fmax": ("fbox_cmp", "fbox_op"),
    "imin": ("ebox_cmp", "ebox_op"), "imax": ("ebox_cmp", "ebox_op"),
    "call": ("call_linkage",),
}


def alpha_machine() -> Machine:
    """A dual-issue Alpha-like target (T3D node processor)."""
    return Machine(
        name="alpha",
        units=(
            FunctionalUnit(UnitKind.FXU, 1),
            FunctionalUnit(UnitKind.FPU, 1),
            FunctionalUnit(UnitKind.BRANCH, 1),
            FunctionalUnit(UnitKind.LSU, 1),
        ),
        table=_build_table(),
        atomic_mapping=dict(_MAPPING),
        supports_fma=False,
        dispatch_width=2,
        fp_registers=32,
        int_registers=32,
        memory=MemoryGeometry(
            cache_line_bytes=32,
            cache_size_bytes=8 * 1024,   # the 21064's small D-cache
            cache_associativity=1,
            cache_miss_cycles=25,
        ),
    )
