"""Training-set calibration of atomic operation costs (section 2.2.1).

"When low level cost information is not available, a training-set like
approach can be used" -- instead of reading latencies off the
manufacturer's data sheet, time a set of probe blocks on the real
machine (here: on any cycle oracle) and solve for per-operation costs.

The calibrator builds *serial* probe blocks (dependence chains), so
each measured time is the sum of the chain's result latencies; the
least-squares solution of the resulting linear system recovers each
atomic operation's latency.  Recovered latencies update (a copy of)
the cost table's noncoverable components, preserving each operation's
coverable share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..translate.stream import Instr
from .atomic import AtomicCostTable, AtomicOp
from .machine import Machine
from .units import UnitCost

__all__ = ["TrainingProbe", "make_probes", "calibrate"]

#: A cycle oracle: given an instruction chain, how many cycles does it
#: take?  In the benches this is the reference simulator; on real
#: hardware it would be a timer.
CycleOracle = Callable[[list[Instr]], int]


@dataclass(frozen=True)
class TrainingProbe:
    """One probe block: a serial chain mixing atomic operations."""

    name: str
    ops: tuple[str, ...]

    def chain(self) -> list[Instr]:
        return [
            Instr(i, op, deps=(i - 1,) if i else ())
            for i, op in enumerate(self.ops)
        ]


def make_probes(
    machine: Machine,
    ops: Sequence[str] | None = None,
    chain_length: int = 8,
) -> list[TrainingProbe]:
    """A probe set that isolates each operation plus mixed chains.

    One homogeneous chain per operation (determines its latency
    directly) and pairwise mixed chains (over-determination guards
    against measurement noise in the least-squares solve).
    """
    names = list(ops) if ops is not None else machine.table.names()
    probes = [
        TrainingProbe(f"homo_{op}", (op,) * chain_length) for op in names
    ]
    for i, a in enumerate(names):
        b = names[(i + 1) % len(names)]
        if a != b:
            probes.append(TrainingProbe(
                f"mixed_{a}_{b}", ((a, b) * (chain_length // 2))[:chain_length]
            ))
    return probes


def calibrate(
    machine: Machine,
    oracle: CycleOracle,
    ops: Sequence[str] | None = None,
    chain_length: int = 8,
) -> AtomicCostTable:
    """Fit per-operation latencies from probe timings.

    Returns a new cost table whose operations have the fitted total
    latency, split between noncoverable and coverable in the same
    proportion as the original table (a data sheet may be wrong about
    magnitudes but usually right about which part of a latency is
    pipelineable).
    """
    import numpy as np

    names = list(ops) if ops is not None else machine.table.names()
    index = {name: i for i, name in enumerate(names)}
    probes = make_probes(machine, names, chain_length)
    rows = []
    measured = []
    for probe in probes:
        counts = [0.0] * len(names)
        for op in probe.ops:
            counts[index[op]] += 1.0
        rows.append(counts)
        measured.append(float(oracle(probe.chain())))
    solution, *_ = np.linalg.lstsq(
        np.array(rows), np.array(measured), rcond=None
    )

    calibrated = AtomicCostTable()
    for name in machine.table.names():
        op = machine.table[name]
        if name not in index:
            calibrated.define(op)
            continue
        fitted_total = max(1, round(float(solution[index[name]])))
        calibrated.define(_rescale(op, fitted_total))
    return calibrated


def _rescale(op: AtomicOp, fitted_total: int) -> AtomicOp:
    """Scale the op's costs so its result latency equals the fit."""
    original_total = op.result_latency
    if original_total == fitted_total:
        return op
    new_costs = []
    for cost in op.costs:
        if cost.total != original_total:
            # Secondary-unit cost (e.g. the store's FXU cycle): keep.
            new_costs.append(cost)
            continue
        if original_total == 0:
            # Degenerate zero-cost component (can only arrive via a
            # hand-built table that bypassed UnitCost validation):
            # assign the whole fitted latency as noncoverable rather
            # than dividing by zero.
            coverable = 0
        else:
            coverable = round(fitted_total * cost.coverable / original_total)
        noncoverable = max(fitted_total - coverable, 0)
        if noncoverable == 0 and coverable == 0:
            coverable = 1
        new_costs.append(UnitCost(cost.unit, noncoverable, coverable))
    return AtomicOp(op.name, tuple(new_costs), op.description + " [calibrated]")
