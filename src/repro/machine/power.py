"""IBM POWER (RS/6000) style machine description.

All headline numbers come from the paper's own text:

* a floating-point add has one cycle noncoverable + one cycle coverable
  on the FPU;
* a floating-point store occupies the FPU for two cycles (one
  coverable) and an integer unit for one cycle;
* integer multiply takes three cycles when the multiplier is in
  [-128, 127] and five cycles for general values (section 2.2.1);
* the unit bins of Figure 3: FXU, FPU, BranchU, CR-LogicU, Load/StoreU;
* multiply-and-add is a single FPU operation (the Matmul kernel packs
  16 FMAs into one basic block).

Latencies not stated in the paper (divide, sqrt) use published RS/6000
POWER1 figures.
"""

from __future__ import annotations

from .atomic import AtomicCostTable, AtomicOp
from .machine import Machine, MemoryGeometry
from .units import FunctionalUnit, UnitCost, UnitKind

__all__ = ["power_machine", "POWER_ATOMIC_MAPPING", "build_power_table"]


def build_power_table() -> AtomicCostTable:
    """Atomic operation cost table for the POWER-like target."""
    table = AtomicCostTable()
    define = table.define
    define(AtomicOp(
        "fxu_add", (UnitCost(UnitKind.FXU, 1),),
        "integer add/subtract/logical; one busy FXU cycle",
    ))
    define(AtomicOp(
        "fxu_mul3", (UnitCost(UnitKind.FXU, 3),),
        "integer multiply, small multiplier in [-128,127] (paper: 3 cycles)",
    ))
    define(AtomicOp(
        "fxu_mul5", (UnitCost(UnitKind.FXU, 5),),
        "integer multiply, general multiplier (paper: 5 cycles)",
    ))
    define(AtomicOp(
        "fxu_div", (UnitCost(UnitKind.FXU, 19),),
        "integer divide (POWER1: 19 cycles, blocking)",
    ))
    define(AtomicOp(
        "fpu_arith", (UnitCost(UnitKind.FPU, 1, 1),),
        "FP add/sub/mul/fma: 1 noncoverable + 1 coverable FPU cycle (paper)",
    ))
    define(AtomicOp(
        "fpu_div", (UnitCost(UnitKind.FPU, 16, 3),),
        "FP divide (POWER1: ~19 cycle latency, mostly blocking)",
    ))
    define(AtomicOp(
        "fpu_sqrt", (UnitCost(UnitKind.FPU, 25, 2),),
        "FP square root (software-assisted on POWER1)",
    ))
    define(AtomicOp(
        "lsu_load", (UnitCost(UnitKind.LSU, 1, 1),),
        "cache-hit load: 1 busy cycle, result after 2",
    ))
    define(AtomicOp(
        "fpu_store",
        (UnitCost(UnitKind.FPU, 1, 1), UnitCost(UnitKind.FXU, 1)),
        "FP store: FPU 2 cycles (1 coverable) + 1 FXU cycle (paper example)",
    ))
    define(AtomicOp(
        "fxu_store",
        (UnitCost(UnitKind.FXU, 1), UnitCost(UnitKind.LSU, 1)),
        "integer store: address generation + store-queue slot",
    ))
    define(AtomicOp(
        "fxu_cmp",
        (UnitCost(UnitKind.FXU, 1), UnitCost(UnitKind.CRLOGIC, 1, 1)),
        "integer compare setting a CR field",
    ))
    define(AtomicOp(
        "fpu_cmp",
        (UnitCost(UnitKind.FPU, 1, 1), UnitCost(UnitKind.CRLOGIC, 1, 1)),
        "FP compare setting a CR field",
    ))
    define(AtomicOp(
        "branch", (UnitCost(UnitKind.BRANCH, 1),),
        "conditional or unconditional branch; often zero-visible-cost "
        "when covered (the estimator's shape matching decides)",
    ))
    define(AtomicOp(
        "cr_logic", (UnitCost(UnitKind.CRLOGIC, 1),),
        "condition-register logical operation",
    ))
    define(AtomicOp(
        "fpu_cvt", (UnitCost(UnitKind.FPU, 1, 1),),
        "int<->float or single<->double conversion",
    ))
    define(AtomicOp(
        "call_overhead",
        (UnitCost(UnitKind.BRANCH, 1), UnitCost(UnitKind.FXU, 2)),
        "linkage cost of an external call (excluding the callee body)",
    ))
    return table


#: Architecture-dependent level-2 mapping: basic op -> atomic ops.
POWER_ATOMIC_MAPPING: dict[str, tuple[str, ...]] = {
    "iadd": ("fxu_add",), "isub": ("fxu_add",), "ineg": ("fxu_add",),
    "imul_small": ("fxu_mul3",), "imul": ("fxu_mul5",), "idiv": ("fxu_div",),
    "land": ("fxu_add",), "lor": ("fxu_add",), "lnot": ("fxu_add",),
    # POWER's FPU computes in double precision; single ops cost the same.
    "fadd": ("fpu_arith",), "fsub": ("fpu_arith",), "fmul": ("fpu_arith",),
    "fneg": ("fpu_arith",), "fdiv": ("fpu_div",), "fsqrt": ("fpu_sqrt",),
    "dadd": ("fpu_arith",), "dsub": ("fpu_arith",), "dmul": ("fpu_arith",),
    "dneg": ("fpu_arith",), "ddiv": ("fpu_div",), "dsqrt": ("fpu_sqrt",),
    "fma": ("fpu_arith",), "dfma": ("fpu_arith",),
    "iload": ("lsu_load",), "fload": ("lsu_load",), "dload": ("lsu_load",),
    "istore": ("fxu_store",), "fstore": ("fpu_store",), "dstore": ("fpu_store",),
    "icmp": ("fxu_cmp",), "fcmp": ("fpu_cmp",), "dcmp": ("fpu_cmp",),
    "br": ("branch",), "jmp": ("branch",),
    "cvt_if": ("fpu_cvt",), "cvt_fi": ("fpu_cvt",),
    "cvt_fd": ("fpu_cvt",), "cvt_df": ("fpu_cvt",),
    "iabs": ("fxu_add",), "fabs": ("fpu_arith",), "dabs": ("fpu_arith",),
    "fmin": ("fpu_cmp", "fpu_arith"), "fmax": ("fpu_cmp", "fpu_arith"),
    "imin": ("fxu_cmp", "fxu_add"), "imax": ("fxu_cmp", "fxu_add"),
    "call": ("call_overhead",),
}


def power_machine() -> Machine:
    """The POWER-like superscalar: one pipeline of each unit of Figure 3."""
    return Machine(
        name="power",
        units=(
            FunctionalUnit(UnitKind.FXU, 1),
            FunctionalUnit(UnitKind.FPU, 1),
            FunctionalUnit(UnitKind.BRANCH, 1),
            FunctionalUnit(UnitKind.CRLOGIC, 1),
            FunctionalUnit(UnitKind.LSU, 1),
        ),
        table=build_power_table(),
        atomic_mapping=dict(POWER_ATOMIC_MAPPING),
        supports_fma=True,
        dispatch_width=4,
        fp_registers=32,
        int_registers=32,
        memory=MemoryGeometry(
            cache_line_bytes=64,
            cache_size_bytes=64 * 1024,
            cache_associativity=4,
            cache_miss_cycles=12,
            page_bytes=4096,
            tlb_entries=128,
            tlb_miss_cycles=36,
        ),
    )
