"""Functional units and per-unit operation costs.

The heart of the paper's cost model (section 2.1) is the split of each
atomic operation's cost on each functional unit into:

* **noncoverable cost** -- cycles the unit is exclusively dedicated to
  the operation (a *solid* Tetris object: no other operation may occupy
  those slots of that unit);
* **coverable cost** -- additional cycles before the *result* is
  available.  Independent operations may execute during these slots
  (a *transparent* object), but operations that use the result must
  wait for them.

Example from the paper: on IBM POWER a floating-point add has one cycle
of noncoverable and one cycle of coverable cost on the FPU; a
floating-point store occupies the FPU for two cycles (one coverable)
and an integer unit for one cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["UnitKind", "FunctionalUnit", "UnitCost"]


class UnitKind(enum.Enum):
    """Classes of functional units found in the modeled machines.

    The names follow the paper's Figure 3 bins: FXU (fixed point), FPU
    (floating point), Branch, CR-Logic (condition register), and
    Load/Store.
    """

    FXU = "fxu"
    FPU = "fpu"
    BRANCH = "branch"
    CRLOGIC = "crlogic"
    LSU = "lsu"
    ALU = "alu"  # the single do-everything unit of the scalar baseline

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FunctionalUnit:
    """A functional unit class with ``count`` identical pipelines (bins)."""

    kind: UnitKind
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"unit {self.kind} needs count >= 1")

    def __str__(self) -> str:
        return f"{self.kind}x{self.count}"


@dataclass(frozen=True)
class UnitCost:
    """Cost of one atomic operation on one unit kind.

    ``noncoverable`` slots are exclusively occupied; ``coverable`` slots
    delay dependents but are shareable with other operations.
    """

    unit: UnitKind
    noncoverable: int
    coverable: int = 0

    def __post_init__(self) -> None:
        if self.noncoverable < 0 or self.coverable < 0:
            raise ValueError("costs must be non-negative")
        if self.noncoverable == 0 and self.coverable == 0:
            raise ValueError("a unit cost must consume at least one cycle")

    @property
    def total(self) -> int:
        """Cycles until the result contribution of this unit is complete."""
        return self.noncoverable + self.coverable

    def __str__(self) -> str:
        return f"{self.unit}:{self.noncoverable}+{self.coverable}c"
