"""Width-parameterized superscalar machine family.

``family_machine(width)`` builds a POWER-derived machine whose
fetch/issue/commit width is the single free parameter: the dispatch
width *is* ``width`` and the FXU/FPU/LSU pipe counts scale with it
(one pipe per two slots of width, minimum one), while the BRANCH and
CRLOGIC units stay single-piped — mirroring how real wide cores
replicate arithmetic and memory pipes but keep one branch unit.  The
same cost table and atomic mapping are shared across the whole ladder,
so the only thing that changes between widths is machine parallelism;
``Machine.fingerprint()`` then differs deterministically per
configuration (the width is folded into the name and the unit list).

The module also carries the Charm-style mechanistic in-order model

    T = N/W + pmisses + pll + pdeps

used by the ``/sweep`` endpoint to add branch-misprediction and
cache-miss penalty terms on top of the placement-based cycle count.
Each penalty accounts for the half-window of issue slots lost around
the disrupting instruction:

    penalty_branch_miss = D + (W - 1) / (2W)
    penalty_cache_miss  = miss_latency - (W - 1) / (2W)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .machine import Machine
from .units import FunctionalUnit, UnitKind

__all__ = [
    "DEFAULT_WIDTH_LADDER",
    "family_machine",
    "family_width_ladder",
    "mechanistic_cycles",
    "penalty_branch_miss",
    "penalty_cache_miss",
    "MechanisticTerms",
]

#: The ladder a sweep walks when the caller does not pick widths.
DEFAULT_WIDTH_LADDER = (1, 2, 4, 6, 8)

#: Branch mispredict redirect depth (front-end pipeline stages squashed).
BRANCH_REDIRECT_DEPTH = 5

MAX_FAMILY_WIDTH = 64


def _pipes_for(width: int) -> int:
    """Arithmetic/memory pipe count for a given dispatch width."""
    return max(1, width // 2)


#: Unit kinds that never gain pipes with width (one branch/condition
#: unit per core, however wide).
_SINGLETON_KINDS = frozenset({UnitKind.BRANCH, UnitKind.CRLOGIC})

#: (base identity, width) -> (base, member).  Stable member identity
#: matters beyond construction cost: the placement layer's
#: fingerprint memo and the compiled-op memo are keyed by machine
#: identity, so handing back the same object per (base, width) keeps
#: repeated sweeps off the sha256 path entirely.
_MEMBER_MEMO: dict[tuple[int, int], tuple[Machine, Machine]] = {}


def family_machine(
    width: int,
    *,
    base: str | Machine = "power",
    pipe_counts: dict | None = None,
) -> Machine:
    """A ``{base}-w{width}`` machine with width-scaled pipe counts.

    ``base`` names a registered machine (or is one) whose cost table,
    atomic mapping, and memory geometry the family member shares --
    only the unit pipe counts and the dispatch width vary, so a
    calibrated machine gets a width ladder for free.  Each non-
    branch/CRLOGIC unit gets ``max(1, width // 2)`` pipes unless
    ``pipe_counts`` pins a kind explicitly (keys are
    :class:`UnitKind` members or their string values).
    """
    if not isinstance(width, int) or isinstance(width, bool):
        raise ValueError(f"family width must be an int, got {width!r}")
    if not 1 <= width <= MAX_FAMILY_WIDTH:
        raise ValueError(
            f"family width must be in 1..{MAX_FAMILY_WIDTH}, got {width}")
    if isinstance(base, Machine):
        machine = base
    else:
        from .registry import cached_machine

        machine = cached_machine(base)
    key = None
    if not pipe_counts:
        key = (id(machine), width)
        memo = _MEMBER_MEMO.get(key)
        if memo is not None and memo[0] is machine:
            return memo[1]
    pins = {}
    for kind, count in (pipe_counts or {}).items():
        kind = UnitKind(kind) if not isinstance(kind, UnitKind) else kind
        if not isinstance(count, int) or count < 1:
            raise ValueError(f"pipe count for {kind} must be >= 1")
        pins[kind] = count
    default = _pipes_for(width)
    units = tuple(
        unit if unit.kind in _SINGLETON_KINDS and unit.kind not in pins
        else FunctionalUnit(unit.kind, pins.get(unit.kind, default))
        for unit in machine.units
    )
    member = dataclasses.replace(
        machine,
        name=f"{machine.name}-w{width}",
        units=units,
        dispatch_width=width,
    )
    if key is not None:
        if len(_MEMBER_MEMO) > 256:
            _MEMBER_MEMO.clear()
        _MEMBER_MEMO[key] = (machine, member)
    return member


def family_width_ladder(widths=None) -> tuple[int, ...]:
    """Validate and normalise a width ladder (sorted, deduplicated)."""
    raw = tuple(widths) if widths else DEFAULT_WIDTH_LADDER
    out = []
    for width in raw:
        if not isinstance(width, int) or isinstance(width, bool):
            raise ValueError(f"sweep widths must be ints, got {width!r}")
        if not 1 <= width <= MAX_FAMILY_WIDTH:
            raise ValueError(
                f"sweep width must be in 1..{MAX_FAMILY_WIDTH}, got {width}")
        out.append(width)
    return tuple(sorted(set(out)))


def penalty_branch_miss(width: int,
                        depth: int = BRANCH_REDIRECT_DEPTH) -> float:
    """Cycles lost per mispredicted branch on a W-wide in-order core."""
    return depth + (width - 1) / (2 * width)


def penalty_cache_miss(width: int, miss_latency: int) -> float:
    """Cycles lost per cache miss (the half-window overlaps the stall)."""
    return max(0.0, miss_latency - (width - 1) / (2 * width))


@dataclass(frozen=True)
class MechanisticTerms:
    """The additive terms of ``T = N/W + pmisses + pll + pdeps``."""

    base: float
    branch_penalty: float
    miss_penalty: float

    @property
    def total(self) -> float:
        return self.base + self.branch_penalty + self.miss_penalty


def mechanistic_cycles(
    machine: Machine,
    instructions: float,
    base_cycles: float,
    *,
    branch_miss_rate: float = 0.0,
    cache_miss_rate: float = 0.0,
) -> MechanisticTerms:
    """Charm-style penalty terms on top of a placement-based estimate.

    ``base_cycles`` already accounts for the N/W term plus dependence
    stalls (the placement covers both); this adds the probabilistic
    branch-misprediction and cache-miss penalties for an instruction
    mix where ``branch_miss_rate`` / ``cache_miss_rate`` are per-
    instruction event rates.
    """
    width = machine.dispatch_width
    branch = instructions * branch_miss_rate * penalty_branch_miss(width)
    miss = instructions * cache_miss_rate * penalty_cache_miss(
        width, machine.memory.cache_miss_cycles)
    return MechanisticTerms(base_cycles, branch, miss)
