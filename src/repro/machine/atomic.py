"""Atomic operations and the atomic operation cost table.

"Cost of operations is assigned based on operation units that we called
atomic operations.  Atomic operations are specific low level
instructions supported by the processor architecture." (section 2.1)

The *atomic operation cost table* (section 2.2.1) maps each atomic
operation name to its per-unit cost objects; it is one of the two
architecture-dependent tables, set up "based on manufacturer's
specifications".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .units import UnitCost, UnitKind

__all__ = ["AtomicOp", "AtomicCostTable"]


@dataclass(frozen=True)
class AtomicOp:
    """A machine-level operation with costs on one or more units."""

    name: str
    costs: tuple[UnitCost, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.costs:
            raise ValueError(f"atomic op {self.name} has no unit costs")
        kinds = [c.unit for c in self.costs]
        if len(kinds) != len(set(kinds)):
            raise ValueError(f"atomic op {self.name} lists a unit twice")

    @property
    def result_latency(self) -> int:
        """Cycles from issue until the result is usable by a dependent."""
        return max(cost.total for cost in self.costs)

    @property
    def units(self) -> tuple[UnitKind, ...]:
        return tuple(cost.unit for cost in self.costs)

    def cost_on(self, unit: UnitKind) -> UnitCost | None:
        for cost in self.costs:
            if cost.unit is unit:
                return cost
        return None

    def __str__(self) -> str:
        return f"{self.name}[{', '.join(str(c) for c in self.costs)}]"


@dataclass
class AtomicCostTable:
    """Name -> :class:`AtomicOp` lookup with helpful diagnostics."""

    ops: dict[str, AtomicOp] = field(default_factory=dict)

    def define(self, op: AtomicOp) -> None:
        if op.name in self.ops:
            raise ValueError(f"atomic op {op.name} already defined")
        self.ops[op.name] = op

    def __contains__(self, name: str) -> bool:
        return name in self.ops

    def __getitem__(self, name: str) -> AtomicOp:
        try:
            return self.ops[name]
        except KeyError:
            known = ", ".join(sorted(self.ops))
            raise KeyError(f"unknown atomic op {name!r}; known: {known}") from None

    def names(self) -> list[str]:
        return sorted(self.ops)

    def __len__(self) -> int:
        return len(self.ops)
