"""Complete machine descriptions.

A :class:`Machine` bundles everything the predictor needs to know about
a target: its functional units, its atomic operation cost table, the
architecture-dependent *atomic operation mapping* (basic operation ->
atomic operations, section 2.2.1), register counts for the
register-pressure heuristic, a dispatch model for the reference
back-end, and memory geometry for the cache cost model.

Porting the cost model to a new architecture "is a matter of defining
the atomic operation mapping and the atomic operation cost table" --
that is literally the constructor signature here.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .atomic import AtomicCostTable, AtomicOp
from .units import FunctionalUnit, UnitKind

__all__ = ["MemoryGeometry", "Machine", "cost_table_fingerprint"]


@dataclass(frozen=True)
class MemoryGeometry:
    """Cache/TLB/page parameters consumed by the memory cost model."""

    cache_line_bytes: int = 64
    cache_size_bytes: int = 64 * 1024
    cache_associativity: int = 4
    cache_miss_cycles: int = 12
    page_bytes: int = 4096
    tlb_entries: int = 128
    tlb_miss_cycles: int = 30
    page_fault_cycles: int = 200_000


@dataclass(frozen=True)
class Machine:
    """An architecture description (paper sections 2.1-2.2).

    ``atomic_mapping`` maps each *basic operation* name (language
    independent, see :mod:`repro.translate.basic_ops`) to the sequence
    of atomic operations it expands to on this machine.  A basic
    operation absent from the mapping is unsupported and expands via
    the translator's fallback decompositions (e.g. ``fma`` on a machine
    without multiply-and-add becomes ``fmul`` then ``fadd``).
    """

    name: str
    units: tuple[FunctionalUnit, ...]
    table: AtomicCostTable
    atomic_mapping: dict[str, tuple[str, ...]]
    supports_fma: bool = False
    dispatch_width: int = 4
    fp_registers: int = 32
    int_registers: int = 32
    memory: MemoryGeometry = field(default_factory=MemoryGeometry)

    def __post_init__(self) -> None:
        kinds = [u.kind for u in self.units]
        if len(kinds) != len(set(kinds)):
            raise ValueError(f"machine {self.name} lists a unit kind twice")
        available = set(kinds)
        for name, atomics in self.atomic_mapping.items():
            for atomic_name in atomics:
                op = self.table[atomic_name]  # raises on unknown
                for unit in op.units:
                    if unit not in available:
                        raise ValueError(
                            f"{self.name}: atomic {atomic_name} (for basic op "
                            f"{name}) needs unit {unit} which the machine lacks"
                        )

    # -- unit structure ---------------------------------------------------
    def unit(self, kind: UnitKind) -> FunctionalUnit:
        for u in self.units:
            if u.kind is kind:
                return u
        raise KeyError(f"machine {self.name} has no {kind} unit")

    def has_unit(self, kind: UnitKind) -> bool:
        return any(u.kind is kind for u in self.units)

    def bins(self) -> list[tuple[UnitKind, int]]:
        """All (kind, pipeline index) bins, e.g. [(FPU,0), (FPU,1), ...]."""
        out: list[tuple[UnitKind, int]] = []
        for u in self.units:
            out.extend((u.kind, i) for i in range(u.count))
        return out

    # -- op lookup -----------------------------------------------------------
    def atomics_for(self, basic_op: str) -> tuple[AtomicOp, ...] | None:
        """Atomic expansion of a basic operation, or None if unmapped."""
        names = self.atomic_mapping.get(basic_op)
        if names is None:
            return None
        return tuple(self.table[n] for n in names)

    def atomic(self, name: str) -> AtomicOp:
        return self.table[name]

    def __str__(self) -> str:
        units = ", ".join(str(u) for u in self.units)
        return f"Machine({self.name}: {units}; {len(self.table)} atomic ops)"

    def fingerprint(self) -> str:
        """Content hash of everything that affects predicted costs.

        Covers the atomic cost table (per-unit coverable/noncoverable
        cycles), the atomic operation mapping, the unit inventory, and
        the scalar capability knobs -- so recalibration via
        :mod:`repro.machine.training` (which rewrites table latencies)
        changes the fingerprint even though the machine *name* stays
        the same.  The prediction service folds this into its cache
        keys: persisted entries computed against a stale cost table can
        never be served again.
        """
        return cost_table_fingerprint(self)


def cost_table_fingerprint(machine: Machine) -> str:
    """Short stable hash of a machine's cost-relevant definition."""
    parts = [
        machine.name,
        f"dw={machine.dispatch_width}",
        f"fma={int(machine.supports_fma)}",
        f"fpr={machine.fp_registers}",
        f"ir={machine.int_registers}",
        ";".join(str(u) for u in machine.units),
    ]
    for name in machine.table.names():
        op = machine.table[name]
        costs = ",".join(
            f"{c.unit.value}:{c.noncoverable}+{c.coverable}" for c in op.costs
        )
        parts.append(f"{name}=[{costs}]")
    for basic_op in sorted(machine.atomic_mapping):
        parts.append(f"{basic_op}->{'/'.join(machine.atomic_mapping[basic_op])}")
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]
