"""Hierarchical spans for the prediction pipeline.

A :class:`Tracer` collects finished :class:`Span` records; the *active*
tracer lives in a :mod:`contextvars` variable, so concurrent server
requests (one thread each) trace independently.  Instrumented code
calls :func:`trace_span` -- when no tracer is active, that returns a
shared no-op span whose ``with`` protocol does nothing, keeping the
disabled-mode cost of an instrumented call site to one context-variable
read (the ``bench_tracing`` bench holds this under 5% of the
prediction hot path).

Span parentage normally follows the current-span context variable;
work handed to another thread passes the parent explicitly
(``trace_span(name, parent=span)``) or runs inside
``contextvars.copy_context()``.  Spans record wall-clock start times
(comparable across worker processes) and monotonic durations.

When a tracer is given a metrics registry, every finished span whose
name is a known pipeline phase feeds the ``repro_phase_seconds``
histogram, so ``GET /metrics`` exposes per-phase latency without a
separate instrumentation pass.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import os
import threading
import time
import uuid
from typing import Any, Iterable, Mapping

__all__ = [
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "PIPELINE_PHASES",
    "PHASE_BUCKETS",
    "PHASE_HISTOGRAM",
    "trace_span",
    "current_tracer",
    "current_span",
]

#: Span names whose durations feed the per-phase latency histogram.
#: A closed set keeps the metric's label cardinality bounded.
PIPELINE_PHASES = frozenset({
    "server.handle",
    "engine.execute",
    "predict", "compare", "restructure", "kernels",
    "translate.specialize", "translate.atomic_map",
    "cost.place",
    "aggregate.loop", "aggregate.program",
    "transform.search",
})

#: Phase durations span ~10us block placements to multi-second searches.
PHASE_BUCKETS = (
    0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005,
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)

PHASE_HISTOGRAM = "repro_phase_seconds"

#: Process-global so span ids never collide across tracers in one
#: process (a request-local worker tracer's spans get ingested next to
#: the server tracer's own; duplicate ids would corrupt the span tree).
_SPAN_IDS = itertools.count(1)

_ACTIVE_TRACER: contextvars.ContextVar["Tracer | None"] = \
    contextvars.ContextVar("repro_obs_tracer", default=None)
_CURRENT_SPAN: contextvars.ContextVar["Span | None"] = \
    contextvars.ContextVar("repro_obs_span", default=None)


class _NoopSpan:
    """The span handed out when tracing is off: every method is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def set_attribute(self, key: str, value: Any) -> "_NoopSpan":
        return self

    @property
    def recording(self) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed region of work, nested under a parent."""

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id", "attrs",
        "start_wall", "duration", "pid", "tid",
        "_start", "_token", "_explicit_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: "Span | None" = None,
        attrs: Mapping[str, Any] | None = None,
    ):
        self.tracer = tracer
        self.name = name
        self.trace_id = tracer.trace_id
        self.span_id = tracer._next_span_id()
        self._explicit_parent = parent
        self.parent_id: str | None = None
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.start_wall = 0.0
        self.duration = 0.0
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self._start = 0.0
        self._token: contextvars.Token | None = None

    @property
    def recording(self) -> bool:
        return True

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        parent = self._explicit_parent
        if parent is None:
            parent = _CURRENT_SPAN.get()
        if parent is not None and parent.recording:
            self.parent_id = parent.span_id
        elif self.tracer.remote_parent_id is not None:
            # Root span of a tracer seeded from a propagated trace
            # context: parent under the remote hop's span so the
            # stitched trace stays one tree across processes.
            self.parent_id = self.tracer.remote_parent_id
        self._token = _CURRENT_SPAN.set(self)
        self.start_wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._start
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._finish(self)
        return False

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start_wall,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects finished spans for one request, command, or test.

    ``metrics`` (optional) is a
    :class:`~repro.service.metrics.MetricsRegistry`-compatible object;
    finished spans named in :data:`PIPELINE_PHASES` observe the
    ``repro_phase_seconds`` histogram on it.  ``max_spans`` bounds
    memory on runaway workloads (a deep restructure search); spans past
    the bound are counted in :attr:`dropped`, not stored.

    ``trace_id`` / ``remote_parent_id`` seed the tracer from a
    propagated context (a ``traceparent`` header, or a trace-context
    tuple handed to a worker process): spans join the caller's trace
    id, and root spans parent under the remote span so the exported
    tree stitches across process boundaries.
    """

    def __init__(self, metrics: Any = None, max_spans: int = 20_000,
                 trace_id: str | None = None,
                 remote_parent_id: str | None = None):
        # W3C-shaped 32-hex trace id so it round-trips through a
        # ``traceparent`` header unchanged.
        self.trace_id = trace_id or uuid.uuid4().hex
        self.remote_parent_id = remote_parent_id
        self.max_spans = max_spans
        self.dropped = 0
        self._spans: list[Span] = []
        self._ingested: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._histogram = None
        if metrics is not None:
            self._histogram = metrics.histogram(
                PHASE_HISTOGRAM,
                "Pipeline phase latency from tracing spans.",
                buckets=PHASE_BUCKETS,
            )

    # -- span lifecycle -------------------------------------------------
    @staticmethod
    def _next_span_id() -> str:
        # itertools.count is atomic under the GIL; the pid prefix keeps
        # ids distinct across worker processes too.  16 hex chars so a
        # span id is a valid W3C ``traceparent`` parent id as-is.
        return (f"{os.getpid() & 0xFFFFFF:06x}"
                f"{next(_SPAN_IDS) & 0xFF_FFFF_FFFF:010x}")

    def span(self, name: str, parent: Span | None = None,
             **attrs: Any) -> Span:
        """Start a span (use as a context manager)."""
        return Span(self, name, parent=parent, attrs=attrs)

    def _finish(self, span: Span) -> None:
        if self._histogram is not None and span.name in PIPELINE_PHASES:
            self._histogram.observe(span.duration, phase=span.name)
        with self._lock:
            if len(self._spans) + len(self._ingested) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    def ingest(self, span_dicts: Iterable[Mapping[str, Any]]) -> None:
        """Adopt spans recorded elsewhere (a worker process).

        The dicts keep their own ids and pid, so a Chrome export shows
        worker activity on its own process track; phase metrics are
        observed here because worker registries die with the worker.
        """
        for record in span_dicts:
            record = dict(record)
            if (self._histogram is not None
                    and record.get("name") in PIPELINE_PHASES):
                self._histogram.observe(
                    float(record.get("duration", 0.0)),
                    phase=record["name"])
            with self._lock:
                if len(self._spans) + len(self._ingested) >= self.max_spans:
                    self.dropped += 1
                    continue
                self._ingested.append(record)

    # -- activation -----------------------------------------------------
    @contextlib.contextmanager
    def activate(self):
        """Make this the active tracer for the current context."""
        token = _ACTIVE_TRACER.set(self)
        try:
            yield self
        finally:
            _ACTIVE_TRACER.reset(token)

    # -- access ---------------------------------------------------------
    def export(self) -> list[dict[str, Any]]:
        """All finished spans as plain dicts, ordered by start time."""
        with self._lock:
            records = [s.to_dict() for s in self._spans] + list(self._ingested)
        records.sort(key=lambda r: r.get("start", 0.0))
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans) + len(self._ingested)


def current_tracer() -> Tracer | None:
    """The tracer active in this context, or None when tracing is off."""
    return _ACTIVE_TRACER.get()


def current_span() -> Span | None:
    """The innermost open span in this context (for thread handoff)."""
    return _CURRENT_SPAN.get()


def trace_span(name: str, parent: Span | None = None, **attrs: Any):
    """Start a span on the active tracer, or a no-op when none is active.

    This is the one call instrumented code makes; it must stay cheap
    when tracing is off (one context-variable read).
    """
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return NOOP_SPAN
    return Span(tracer, name, parent=parent, attrs=attrs or None)
