"""Structured JSON logging with request-id propagation.

The service logs one JSON object per line so log shippers need no
parsing rules: timestamp, level, logger, message, the request id from
the ambient context (set once per HTTP request by the server), and any
extra fields passed via ``logger.info(msg, extra={"fields": {...}})``.

The request id lives in a context variable, so every log record
emitted while handling a request -- in the handler thread or in code
it calls inline -- carries the same id without threading it through
call signatures.
"""

from __future__ import annotations

import contextvars
import json
import logging
import sys
import time
import uuid
from typing import Any, Mapping, TextIO

__all__ = [
    "JsonFormatter",
    "configure_json_logging",
    "new_request_id",
    "set_request_id",
    "get_request_id",
]

_REQUEST_ID: contextvars.ContextVar[str | None] = \
    contextvars.ContextVar("repro_request_id", default=None)


def new_request_id() -> str:
    """A fresh 12-hex-char request id."""
    return uuid.uuid4().hex[:12]


def set_request_id(request_id: str | None) -> contextvars.Token:
    """Bind the ambient request id; returns the token for reset."""
    return _REQUEST_ID.set(request_id)


def get_request_id() -> str | None:
    """The request id bound to the current context, if any."""
    return _REQUEST_ID.get()


class JsonFormatter(logging.Formatter):
    """One JSON object per record; ``extra={"fields": {...}}`` merges in."""

    def format(self, record: logging.LogRecord) -> str:
        out: dict[str, Any] = {
            "ts": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = get_request_id()
        if request_id is not None:
            out["request_id"] = request_id
        fields = getattr(record, "fields", None)
        if isinstance(fields, Mapping):
            for key, value in fields.items():
                if key not in out:
                    out[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            out["exception"] = self.formatException(record.exc_info)
        return json.dumps(out, sort_keys=True, default=str)


def configure_json_logging(
    logger_name: str = "repro",
    level: int = logging.INFO,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Install a JSON handler on ``logger_name`` (idempotent)."""
    logger = logging.getLogger(logger_name)
    logger.setLevel(level)
    for handler in logger.handlers:
        if isinstance(handler.formatter, JsonFormatter):
            return logger
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    logger.addHandler(handler)
    logger.propagate = False
    return logger
