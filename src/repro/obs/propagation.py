"""Cross-process trace context: W3C ``traceparent`` carry and storage.

One request that crosses the router, a shard server, its worker
processes, and a job-runner thread should yield *one* trace.  The
pieces here make that possible without any third-party tracing stack:

* :class:`TraceContext` + :func:`format_traceparent` /
  :func:`parse_traceparent` -- the W3C Trace Context header
  (``00-<32 hex trace id>-<16 hex parent span id>-<2 hex flags>``)
  carried on every router->shard HTTP hop and honored by the server's
  request scope, so a shard's root span parents under the router's
  ``router.forward`` span and shares its trace id;
* :func:`current_context` -- the propagation view of "where am I":
  the active tracer's trace id plus the innermost open span, ready to
  be serialized onto an outgoing hop or into a worker task;
* :class:`TraceBuffer` -- a bounded request-id -> spans ring each
  engine keeps, backing ``GET /debug/trace/<request_id>``;
* :class:`ExemplarRing` -- the router's bounded keep of *interesting*
  traces (every failed request, plus the slowest successes), so the
  operator can pull a stitched Chrome trace for exactly the requests
  worth looking at.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import heapq
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from .tracer import current_span, current_tracer

__all__ = [
    "TRACEPARENT_HEADER",
    "TraceContext",
    "format_traceparent",
    "parse_traceparent",
    "current_context",
    "TraceBuffer",
    "ExemplarRing",
]

#: Canonical header name (HTTP header lookup is case-insensitive).
TRACEPARENT_HEADER = "traceparent"

_TRACEPARENT = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of a trace: (trace id, parent span id)."""

    trace_id: str
    span_id: str | None
    sampled: bool = True


def format_traceparent(context: TraceContext) -> str | None:
    """Serialize a context to a ``traceparent`` header value.

    Returns ``None`` when the context has no span to parent under --
    the W3C format has no way to say "trace id only" (an all-zero
    parent id is defined as invalid), so such hops simply omit the
    header.
    """
    if not context.span_id:
        return None
    flags = "01" if context.sampled else "00"
    return f"00-{context.trace_id}-{context.span_id}-{flags}"


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header; tolerant of garbage (-> ``None``).

    A malformed header from an arbitrary client must never fail the
    request -- propagation is best-effort, so anything that does not
    match the format (bad lengths, uppercase hex, all-zero ids, the
    reserved ``ff`` version) yields ``None`` and the request starts a
    fresh trace.
    """
    if not header:
        return None
    match = _TRACEPARENT.match(header.strip())
    if match is None:
        return None
    version, trace_id, span_id, flags = match.groups()
    if version == "ff" or trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id, span_id, sampled=bool(int(flags, 16) & 1))


def current_context() -> TraceContext | None:
    """The context an outgoing hop (or worker task) should carry.

    ``None`` when tracing is off -- callers skip the header entirely,
    which keeps the disabled-mode cost of a hop to one context-variable
    read.  With a tracer but no open span (shouldn't happen on request
    paths), the remote parent the tracer itself was seeded with is
    passed through so the chain stays connected.
    """
    tracer = current_tracer()
    if tracer is None:
        return None
    span = current_span()
    if span is not None and span.recording:
        return TraceContext(tracer.trace_id, span.span_id)
    return TraceContext(tracer.trace_id, tracer.remote_parent_id)


class TraceBuffer:
    """Bounded request-id -> finished-spans ring (insertion-ordered).

    Each engine keeps one; the server deposits every traced request's
    spans and the job manager deposits job traces under the submitting
    request's id, so ``GET /debug/trace/<request_id>`` can answer for
    recent requests.  A second deposit under an existing key *extends*
    it -- that is exactly the async-job case, where the submit
    request's spans and the job run's spans belong to one trace.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = max(1, capacity)
        self._data: OrderedDict[str, list[dict[str, Any]]] = OrderedDict()
        self._lock = threading.Lock()

    def put(self, request_id: str,
            spans: Iterable[Mapping[str, Any]]) -> None:
        records = [dict(span) for span in spans]
        if not request_id or not records:
            return
        with self._lock:
            existing = self._data.get(request_id)
            if existing is not None:
                existing.extend(records)
                self._data.move_to_end(request_id)
            else:
                self._data[request_id] = records
                while len(self._data) > self.capacity:
                    self._data.popitem(last=False)

    def get(self, request_id: str) -> list[dict[str, Any]] | None:
        with self._lock:
            records = self._data.get(request_id)
            return list(records) if records is not None else None

    def request_ids(self) -> list[str]:
        with self._lock:
            return list(self._data)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class ExemplarRing:
    """The router's bounded keep of failed and slowest request traces.

    Two compartments, each capped at ``capacity``:

    * every *failed* (5xx) request's trace, oldest evicted first;
    * the *slowest* successful requests seen so far (a min-heap keyed
      on duration decides admission once full).

    ``get`` answers from either compartment, so
    ``GET /debug/trace/<request_id>`` works for exactly the requests an
    operator is likely to ask about.
    """

    def __init__(self, capacity: int = 32):
        self.capacity = max(1, capacity)
        self._failed: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._slow: dict[str, dict[str, Any]] = {}
        self._heap: list[tuple[float, int, str]] = []
        self._seq = 0
        self._lock = threading.Lock()

    def offer(self, request_id: str, spans: Iterable[Mapping[str, Any]],
              seconds: float, *, failed: bool = False) -> None:
        records = [dict(span) for span in spans]
        if not request_id or not records:
            return
        entry = {"request_id": request_id, "seconds": float(seconds),
                 "failed": bool(failed), "spans": records}
        with self._lock:
            if failed:
                self._failed[request_id] = entry
                self._failed.move_to_end(request_id)
                while len(self._failed) > self.capacity:
                    self._failed.popitem(last=False)
                return
            if request_id in self._slow:
                return      # one trace per request id
            if len(self._slow) < self.capacity:
                self._slow[request_id] = entry
                heapq.heappush(self._heap,
                               (entry["seconds"], self._seq, request_id))
                self._seq += 1
                return
            if self._heap and seconds > self._heap[0][0]:
                _, _, evicted = heapq.heapreplace(
                    self._heap, (entry["seconds"], self._seq, request_id))
                self._seq += 1
                self._slow.pop(evicted, None)
                self._slow[request_id] = entry

    def get(self, request_id: str) -> list[dict[str, Any]] | None:
        with self._lock:
            entry = (self._failed.get(request_id)
                     or self._slow.get(request_id))
            return list(entry["spans"]) if entry is not None else None

    def snapshot(self) -> list[dict[str, Any]]:
        """Summaries (id, seconds, failed) of everything retained."""
        with self._lock:
            entries = list(self._failed.values()) + list(self._slow.values())
        return [{k: entry[k] for k in ("request_id", "seconds", "failed")}
                for entry in sorted(entries, key=lambda e: -e["seconds"])]

    def __len__(self) -> int:
        with self._lock:
            return len(self._failed) + len(self._slow)
