"""Observability: tracing spans, exporters, and structured logging.

Dependency-free (stdlib only) and import-light: nothing here imports
the rest of :mod:`repro`, so every pipeline package can instrument
itself without cycles.  See :mod:`repro.obs.tracer` for the span
model, :mod:`repro.obs.export` for the Chrome ``trace_event`` and
span-tree renderings, :mod:`repro.obs.logs` for JSON logging with
request-id propagation, and :mod:`repro.obs.propagation` for the W3C
``traceparent`` context that stitches traces across processes.

Two modules are deliberately *not* re-exported here:
:mod:`repro.obs.aggregate` (cluster metrics merging) and
:mod:`repro.obs.slo` (objective tracking) depend on
:mod:`repro.service.metrics` and are imported directly by the service
layer, keeping this package import-light for pipeline code.
"""

from .export import chrome_trace, render_tree, write_chrome_trace
from .propagation import (
    TRACEPARENT_HEADER,
    ExemplarRing,
    TraceBuffer,
    TraceContext,
    current_context,
    format_traceparent,
    parse_traceparent,
)
from .logs import (
    JsonFormatter,
    configure_json_logging,
    get_request_id,
    new_request_id,
    set_request_id,
)
from .tracer import (
    NOOP_SPAN,
    PHASE_BUCKETS,
    PHASE_HISTOGRAM,
    PIPELINE_PHASES,
    Span,
    Tracer,
    current_span,
    current_tracer,
    trace_span,
)

__all__ = [
    "Span", "Tracer", "NOOP_SPAN",
    "PIPELINE_PHASES", "PHASE_BUCKETS", "PHASE_HISTOGRAM",
    "trace_span", "current_tracer", "current_span",
    "chrome_trace", "write_chrome_trace", "render_tree",
    "JsonFormatter", "configure_json_logging",
    "new_request_id", "set_request_id", "get_request_id",
    "TRACEPARENT_HEADER", "TraceContext",
    "format_traceparent", "parse_traceparent", "current_context",
    "TraceBuffer", "ExemplarRing",
]
