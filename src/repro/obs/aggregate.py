"""Cluster-wide metrics aggregation for ``GET /metrics/cluster``.

The router scrapes every live shard's ``/metrics`` text and merges the
snapshots into a single exposition where each sample gains a ``shard``
label naming its origin:

    repro_http_requests_total{endpoint="predict",shard="http://h:1"} 42
    repro_http_requests_total{endpoint="predict",shard="http://h:2"} 17

Counters and histogram series keep their per-shard values -- summing
over the ``shard`` label (what PromQL's ``sum without(shard)`` would
do, and what :func:`summarize_cluster` does here) equals the sum of
the individual scrapes by construction, which is the invariant the
integration tests pin.  Gauges additionally gain synthetic
``shard="max"`` / ``shard="min"`` aggregate samples, since a fleet
operator usually wants the extremes of e.g. cache size, not a sum.

Unlike the rest of :mod:`repro.obs`, this module (and :mod:`.slo`)
depends on :mod:`repro.service.metrics` for the exposition parser; it
is imported by the service layer, never by pipeline code.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from ..service.metrics import (
    MetricFamily,
    MetricSample,
    parse_exposition,
    render_exposition,
)

__all__ = [
    "merge_expositions",
    "summarize_cluster",
    "histogram_quantile",
    "format_top",
    "slo_rows_from_exposition",
    "surrogate_rows_from_exposition",
]

#: Label values reserved for synthetic gauge aggregates.
_SYNTHETIC_SHARDS = ("max", "min")


def merge_expositions(shard_texts: Mapping[str, str], *,
                      shard_label: str = "shard",
                      gauge_minmax: bool = True) -> str:
    """Merge per-shard exposition texts into one cluster exposition.

    ``shard_texts`` maps a shard identity (its URL, or ``"router"`` for
    the router's own registry) to its scraped ``/metrics`` body.  Every
    sample is relabeled with ``shard=<identity>``; families that
    disagree on kind across shards (a rolling deploy changed a metric)
    are coerced to ``untyped`` rather than dropped.
    """
    merged: dict[str, MetricFamily] = {}
    for shard in sorted(shard_texts):
        for name, family in parse_exposition(shard_texts[shard]).items():
            out = merged.get(name)
            if out is None:
                out = merged[name] = MetricFamily(
                    name, family.kind, family.help)
            else:
                if not out.help and family.help:
                    out.help = family.help
                if out.kind != family.kind:
                    out.kind = "untyped"
            for sample in family.samples:
                labels = tuple(sorted(
                    tuple(pair for pair in sample.labels
                          if pair[0] != shard_label)
                    + ((shard_label, shard),)))
                out.samples.append(
                    MetricSample(sample.name, labels, sample.value))
    if gauge_minmax:
        for family in merged.values():
            if family.kind == "gauge":
                family.samples.extend(
                    _gauge_extremes(family, shard_label))
    return render_exposition(merged.values())


def _gauge_extremes(family: MetricFamily,
                    shard_label: str) -> list[MetricSample]:
    """Synthetic ``shard="max"``/``shard="min"`` samples per labelset."""
    grouped: dict[tuple[tuple[str, str], ...], list[float]] = {}
    for sample in family.samples:
        residual = tuple(pair for pair in sample.labels
                         if pair[0] != shard_label)
        grouped.setdefault(residual, []).append(sample.value)
    extremes: list[MetricSample] = []
    for residual, values in grouped.items():
        for synthetic, pick in zip(_SYNTHETIC_SHARDS, (max(values),
                                                       min(values))):
            labels = tuple(sorted(residual + ((shard_label, synthetic),)))
            extremes.append(MetricSample(family.name, labels, pick))
    return extremes


def histogram_quantile(quantile: float,
                       buckets: list[tuple[float, float]]) -> float:
    """Estimate a quantile from cumulative ``le`` buckets.

    ``buckets`` is ``[(le, cumulative_count), ...]`` in any order;
    linear interpolation within the winning bucket, Prometheus-style.
    Returns ``nan`` with no observations.
    """
    ordered = sorted(buckets)
    if not ordered or ordered[-1][1] <= 0:
        return math.nan
    total = ordered[-1][1]
    rank = quantile * total
    previous_bound = 0.0
    previous_count = 0.0
    for bound, cumulative in ordered:
        if cumulative >= rank:
            if math.isinf(bound):
                return previous_bound
            width = cumulative - previous_count
            if width <= 0:
                return bound
            fraction = (rank - previous_count) / width
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound = bound if not math.isinf(bound) else previous_bound
        previous_count = cumulative
    return previous_bound


def summarize_cluster(text: str) -> list[dict[str, Any]]:
    """Per-(shard, endpoint) rows from a merged cluster exposition.

    Each row carries request count, error count (HTTP status >= 500),
    and p50/p95/p99 estimated from the latency histogram -- the data
    behind one line of the ``repro top`` display.  Works on a single
    shard's exposition too (rows get ``shard="local"``).
    """
    families = parse_exposition(text)
    rows: dict[tuple[str, str], dict[str, Any]] = {}

    def row(shard: str, endpoint: str) -> dict[str, Any]:
        return rows.setdefault((shard, endpoint), {
            "shard": shard, "endpoint": endpoint,
            "requests": 0.0, "errors": 0.0,
            "p50": math.nan, "p95": math.nan, "p99": math.nan,
        })

    for name in ("repro_http_requests_total",
                 "repro_router_http_requests_total"):
        family = families.get(name)
        if family is None:
            continue
        for sample in family.samples:
            labels = dict(sample.labels)
            endpoint = labels.get("endpoint", "?")
            shard = labels.get("shard", "local")
            entry = row(shard, endpoint)
            entry["requests"] += sample.value
            try:
                if int(labels.get("status", "0")) >= 500:
                    entry["errors"] += sample.value
            except ValueError:
                pass

    for name in ("repro_http_request_seconds",
                 "repro_router_http_request_seconds"):
        family = families.get(name)
        if family is None:
            continue
        grouped: dict[tuple[str, str], list[tuple[float, float]]] = {}
        for sample in family.samples:
            if not sample.name.endswith("_bucket"):
                continue
            labels = dict(sample.labels)
            if "le" not in labels:
                continue
            key = (labels.get("shard", "local"),
                   labels.get("endpoint", "?"))
            bound = math.inf if labels["le"] == "+Inf" else float(labels["le"])
            grouped.setdefault(key, []).append((bound, sample.value))
        for (shard, endpoint), buckets in grouped.items():
            entry = row(shard, endpoint)
            for field, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                entry[field] = histogram_quantile(q, buckets)

    return sorted(rows.values(),
                  key=lambda r: (r["shard"], -r["requests"], r["endpoint"]))


def _fmt_latency(seconds: float) -> str:
    if math.isnan(seconds):
        return "-"
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def surrogate_rows_from_exposition(text: str) -> list[dict[str, Any]]:
    """Per-shard fast/exact split from the ``repro_surrogate_*`` family.

    Empty when no shard runs a surrogate, so ``repro top`` only shows
    the pane where the fast tier is actually on.
    """
    families = parse_exposition(text)
    rows: dict[str, dict[str, Any]] = {}

    def row(shard: str) -> dict[str, Any]:
        return rows.setdefault(shard, {
            "shard": shard, "served": 0.0, "fallthrough": 0.0,
            "retrains": 0.0, "versions": {},
        })

    for name, field in (("repro_surrogate_served_total", "served"),
                        ("repro_surrogate_fallthrough_total", "fallthrough"),
                        ("repro_surrogate_retrains_total", "retrains")):
        family = families.get(name)
        if family is None:
            continue
        for sample in family.samples:
            labels = dict(sample.labels)
            shard = labels.get("shard", "local")
            if shard in _SYNTHETIC_SHARDS:
                continue
            row(shard)[field] += sample.value
    family = families.get("repro_surrogate_model_version")
    if family is not None:
        for sample in family.samples:
            labels = dict(sample.labels)
            shard = labels.get("shard", "local")
            if shard in _SYNTHETIC_SHARDS:
                continue
            machine = labels.get("machine", "?")
            row(shard)["versions"][machine] = int(sample.value)
    return sorted(rows.values(), key=lambda r: r["shard"])


def format_top(rows: list[dict[str, Any]], *,
               slo_rows: list[dict[str, Any]] | None = None,
               surrogate_rows: list[dict[str, Any]] | None = None) -> str:
    """Render ``summarize_cluster`` rows as the ``repro top`` table."""
    header = (f"{'SHARD':<28} {'ENDPOINT':<14} {'REQS':>8} {'ERRS':>6} "
              f"{'P50':>8} {'P95':>8} {'P99':>8}")
    lines = [header, "-" * len(header)]
    for entry in rows:
        shard = entry["shard"]
        if shard in _SYNTHETIC_SHARDS:
            continue
        lines.append(
            f"{shard[:28]:<28} {entry['endpoint'][:14]:<14} "
            f"{int(entry['requests']):>8} {int(entry['errors']):>6} "
            f"{_fmt_latency(entry['p50']):>8} "
            f"{_fmt_latency(entry['p95']):>8} "
            f"{_fmt_latency(entry['p99']):>8}")
    if slo_rows:
        lines.append("")
        slo_header = (f"{'SLO ENDPOINT':<20} {'OBJECTIVE':<22} "
                      f"{'OBSERVED':>10} {'BURN':>6}")
        lines.extend([slo_header, "-" * len(slo_header)])
        for entry in slo_rows:
            burn = entry["burn"]
            flag = " !!" if burn > 1.0 else ""
            lines.append(
                f"{entry['endpoint'][:20]:<20} {entry['objective']:<22} "
                f"{entry['observed']:>10} {burn:>6.2f}{flag}")
    if surrogate_rows:
        lines.append("")
        fast_header = (f"{'SURROGATE SHARD':<28} {'FAST':>8} "
                       f"{'FALLTHRU':>9} {'RETRAINS':>9}  MODELS")
        lines.extend([fast_header, "-" * len(fast_header)])
        for entry in surrogate_rows:
            models = ",".join(f"{m}:v{v}"
                              for m, v in sorted(entry["versions"].items()))
            lines.append(
                f"{entry['shard'][:28]:<28} {int(entry['served']):>8} "
                f"{int(entry['fallthrough']):>9} "
                f"{int(entry['retrains']):>9}  {models or '-'}")
    return "\n".join(lines)


def slo_rows_from_exposition(text: str) -> list[dict[str, Any]]:
    """Burn-rate rows from ``repro_slo_*`` gauges in a cluster scrape."""
    families = parse_exposition(text)
    rows: list[dict[str, Any]] = []
    for name, kind in (("repro_slo_latency_burn_rate", "latency"),
                       ("repro_slo_error_burn_rate", "error")):
        family = families.get(name)
        if family is None:
            continue
        for sample in family.samples:
            labels = dict(sample.labels)
            shard = labels.get("shard", "local")
            if shard in _SYNTHETIC_SHARDS:
                continue
            endpoint = labels.get("endpoint", "?")
            if kind == "latency":
                objective = f"{labels.get('quantile', '?')} latency"
                observed = labels.get("quantile", "?")
            else:
                objective = "error ratio"
                observed = "errors"
            rows.append({
                "endpoint": f"{endpoint}@{shard}"[:40],
                "objective": objective,
                "observed": observed,
                "burn": sample.value,
            })
    return sorted(rows, key=lambda r: -r["burn"])
