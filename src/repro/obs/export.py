"""Exporters for collected spans.

Two renderings of the same span dicts (see ``Span.to_dict``):

* :func:`chrome_trace` -- the Chrome ``trace_event`` JSON format, as
  one complete-duration (``"ph": "X"``) event per span.  Load the file
  in ``chrome://tracing`` or https://ui.perfetto.dev; worker-process
  spans appear on their own ``pid`` track.
* :func:`render_tree` -- a human-readable indented tree with durations
  and attributes, used by the slow-request log and the CLI.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

__all__ = ["chrome_trace", "write_chrome_trace", "render_tree"]


def chrome_trace(spans: Iterable[Mapping[str, Any]],
                 process_name: str = "repro") -> dict[str, Any]:
    """Span dicts -> a ``chrome://tracing``-loadable JSON object."""
    events: list[dict[str, Any]] = []
    pids_seen: set[int] = set()
    for span in spans:
        pid = int(span.get("pid", 0))
        if pid not in pids_seen:
            pids_seen.add(pid)
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"{process_name} (pid {pid})"},
            })
        args = {k: _jsonable(v) for k, v in (span.get("attrs") or {}).items()}
        args["span_id"] = span.get("span_id")
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        events.append({
            "name": span.get("name", "?"),
            "cat": "repro",
            "ph": "X",
            "ts": float(span.get("start", 0.0)) * 1e6,
            "dur": float(span.get("duration", 0.0)) * 1e6,
            "pid": pid,
            "tid": int(span.get("tid", 0)),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Mapping[str, Any]], path: str,
                       process_name: str = "repro") -> None:
    """Write :func:`chrome_trace` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans, process_name), handle, indent=1)
        handle.write("\n")


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_tree(spans: Iterable[Mapping[str, Any]]) -> str:
    """Indented parent/child rendering of a span collection.

    Spans whose parent is absent (or None) are roots; children sort by
    start time.  Unknown parents can happen when the span cap dropped
    an ancestor -- such spans surface as extra roots rather than being
    lost.
    """
    records = list(spans)
    by_id = {r.get("span_id"): r for r in records}
    children: dict[Any, list[Mapping[str, Any]]] = {}
    roots: list[Mapping[str, Any]] = []
    for record in records:
        parent = record.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)

    lines: list[str] = []
    emitted: set[int] = set()  # break cycles from malformed parent links

    def emit(record: Mapping[str, Any], depth: int) -> None:
        if id(record) in emitted:
            return
        emitted.add(id(record))
        attrs = record.get("attrs") or {}
        suffix = "".join(
            f" {key}={attrs[key]}" for key in sorted(attrs)
        )
        lines.append(
            "  " * depth
            + f"{record.get('name', '?')} "
            + f"({_format_duration(float(record.get('duration', 0.0)))})"
            + suffix
        )
        for child in sorted(children.get(record.get("span_id"), []),
                            key=lambda r: r.get("start", 0.0)):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda r: r.get("start", 0.0)):
        emit(root, 0)
    # Records reachable only through a parent cycle have no root at
    # all; surface them flat rather than silently dropping them.
    for record in records:
        if id(record) not in emitted:
            emit(record, 0)
    return "\n".join(lines)
