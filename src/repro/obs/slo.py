"""Sliding-window SLO tracking: latency quantiles, error rate, burn.

A :class:`SloTracker` sits next to a server's (or the router's) request
accounting: every finished request reports ``(endpoint, seconds,
error)``, the tracker keeps a bounded sliding window per endpoint, and
on each ``/metrics`` scrape it exports:

    repro_slo_requests{endpoint="predict"}                  412
    repro_slo_error_ratio{endpoint="predict"}               0.0024
    repro_slo_latency_seconds{endpoint="predict",quantile="p95"} 0.041
    repro_slo_latency_burn_rate{endpoint="predict",quantile="p95"} 0.21
    repro_slo_error_burn_rate{endpoint="predict"}           0.24

Burn rate is *observed / objective* -- 1.0 means the endpoint is
consuming its error (or latency) budget exactly as fast as allowed;
above 1.0 the objective is being violated right now.  Objectives come
from a JSON config (``serve --slo-config`` / ``route --slo-config``):

    {
      "window_seconds": 300,
      "endpoints": {
        "predict":  {"p95": 0.05, "p99": 0.25, "error_ratio": 0.01},
        "*":        {"p99": 1.0,  "error_ratio": 0.05}
      }
    }

``"*"`` is the fallback objective for endpoints not named explicitly.
Endpoints with no matching objective are still tracked (quantiles and
error ratio export), they just have no burn-rate gauges.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "Objective",
    "SloTracker",
    "parse_slo_config",
    "load_slo_config",
    "DEFAULT_WINDOW_SECONDS",
]

DEFAULT_WINDOW_SECONDS = 300.0

#: Latency quantiles the tracker computes and may hold objectives for.
_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


@dataclass(frozen=True)
class Objective:
    """Targets for one endpoint; ``None`` fields are untracked."""

    p50: float | None = None
    p95: float | None = None
    p99: float | None = None
    error_ratio: float | None = None

    def latency_target(self, quantile: str) -> float | None:
        return getattr(self, quantile, None)


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolated quantile of a pre-sorted sample list."""
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class _Window:
    """Per-endpoint sliding window of (timestamp, seconds, error)."""

    __slots__ = ("samples", "max_samples")

    def __init__(self, max_samples: int):
        self.samples: deque[tuple[float, float, bool]] = deque()
        self.max_samples = max_samples

    def add(self, now: float, seconds: float, error: bool) -> None:
        self.samples.append((now, seconds, error))
        while len(self.samples) > self.max_samples:
            self.samples.popleft()

    def prune(self, horizon: float) -> None:
        samples = self.samples
        while samples and samples[0][0] < horizon:
            samples.popleft()


class SloTracker:
    """Track per-endpoint latency/error objectives over a sliding window.

    Thread-safe; ``observe`` is called from request handler threads and
    ``snapshot``/``export`` from whichever thread serves the scrape.
    ``max_samples`` bounds memory per endpoint under sustained load --
    quantiles then reflect the most recent N requests inside the
    window, which is the right bias for an operator display.
    """

    def __init__(self, objectives: Mapping[str, Objective] | None = None, *,
                 window: float = DEFAULT_WINDOW_SECONDS,
                 max_samples: int = 4096,
                 clock=time.monotonic):
        self.objectives = dict(objectives or {})
        self.window = float(window)
        self.max_samples = max_samples
        self._clock = clock
        self._windows: dict[str, _Window] = {}
        self._lock = threading.Lock()

    # -- ingest ---------------------------------------------------------
    def observe(self, endpoint: str, seconds: float, *,
                error: bool = False) -> None:
        now = self._clock()
        with self._lock:
            window = self._windows.get(endpoint)
            if window is None:
                window = self._windows[endpoint] = _Window(self.max_samples)
            window.add(now, float(seconds), bool(error))

    # -- objectives -----------------------------------------------------
    def objective_for(self, endpoint: str) -> Objective | None:
        return self.objectives.get(endpoint) or self.objectives.get("*")

    # -- read -----------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-endpoint state: count, error ratio, quantiles, burn rates."""
        now = self._clock()
        horizon = now - self.window
        result: dict[str, dict[str, Any]] = {}
        with self._lock:
            for endpoint, window in self._windows.items():
                window.prune(horizon)
                samples = list(window.samples)
                if not samples:
                    continue
                latencies = sorted(s[1] for s in samples)
                errors = sum(1 for s in samples if s[2])
                entry: dict[str, Any] = {
                    "count": len(samples),
                    "error_ratio": errors / len(samples),
                }
                for name, q in _QUANTILES:
                    entry[name] = _quantile(latencies, q)
                objective = self.objective_for(endpoint)
                entry["burn"] = self._burn(entry, objective)
                result[endpoint] = entry
        return result

    @staticmethod
    def _burn(entry: Mapping[str, Any],
              objective: Objective | None) -> dict[str, float]:
        """Observed/objective ratios for every configured target."""
        burn: dict[str, float] = {}
        if objective is None:
            return burn
        for name, _ in _QUANTILES:
            target = objective.latency_target(name)
            if target and target > 0:
                burn[name] = entry[name] / target
        if objective.error_ratio is not None and objective.error_ratio > 0:
            burn["error_ratio"] = (
                entry["error_ratio"] / objective.error_ratio)
        elif objective.error_ratio == 0.0:
            # A zero-error objective burns infinitely on any error.
            burn["error_ratio"] = (
                math.inf if entry["error_ratio"] > 0 else 0.0)
        return burn

    # -- metrics export -------------------------------------------------
    def export(self, metrics: Any) -> None:
        """Write the current snapshot into a metrics registry as gauges."""
        snapshot = self.snapshot()
        metrics.gauge(
            "repro_slo_window_seconds",
            "Sliding window the SLO gauges are computed over.",
        ).set(self.window)
        requests = metrics.gauge(
            "repro_slo_requests",
            "Requests inside the SLO window, by endpoint.")
        error_ratio = metrics.gauge(
            "repro_slo_error_ratio",
            "Error ratio (HTTP 5xx) inside the SLO window.")
        latency = metrics.gauge(
            "repro_slo_latency_seconds",
            "Latency quantiles inside the SLO window.")
        latency_burn = metrics.gauge(
            "repro_slo_latency_burn_rate",
            "Observed latency quantile / objective (>1 = violating).")
        error_burn = metrics.gauge(
            "repro_slo_error_burn_rate",
            "Observed error ratio / objective (>1 = violating).")
        for endpoint, entry in snapshot.items():
            requests.set(entry["count"], endpoint=endpoint)
            error_ratio.set(entry["error_ratio"], endpoint=endpoint)
            for name, _ in _QUANTILES:
                latency.set(entry[name], endpoint=endpoint, quantile=name)
            for target, value in entry["burn"].items():
                if target == "error_ratio":
                    error_burn.set(value, endpoint=endpoint)
                else:
                    latency_burn.set(value, endpoint=endpoint,
                                     quantile=target)


def parse_slo_config(data: Mapping[str, Any]) -> SloTracker:
    """Build a tracker from parsed config (see module docstring)."""
    if not isinstance(data, Mapping):
        raise ValueError("SLO config must be a JSON object")
    window = float(data.get("window_seconds", DEFAULT_WINDOW_SECONDS))
    if window <= 0:
        raise ValueError("window_seconds must be positive")
    endpoints = data.get("endpoints", {})
    if not isinstance(endpoints, Mapping):
        raise ValueError("'endpoints' must map endpoint -> objectives")
    objectives: dict[str, Objective] = {}
    allowed = {"p50", "p95", "p99", "error_ratio"}
    for endpoint, raw in endpoints.items():
        if not isinstance(raw, Mapping):
            raise ValueError(f"objective for {endpoint!r} must be an object")
        unknown = set(raw) - allowed
        if unknown:
            raise ValueError(
                f"unknown objective field(s) for {endpoint!r}: "
                f"{sorted(unknown)}")
        objectives[endpoint] = Objective(
            **{key: float(value) for key, value in raw.items()})
    return SloTracker(objectives, window=window)


def load_slo_config(path: str) -> SloTracker:
    """Load ``--slo-config`` JSON from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return parse_slo_config(data)
