"""AST nodes of the mini-Fortran IR.

The IR deliberately mirrors the program constructs the paper's
predictor consumes (section 2.4): straight-line assignment blocks,
``DO`` loops with possibly-unknown bounds, ``IF`` statements with
possibly-unknown branch behaviour, and calls to external procedures.

Nodes are immutable dataclasses; program transformations rebuild the
tree (see :mod:`repro.transform`).  Every node compares structurally
and is hashable, which the incremental-update machinery uses to detect
unchanged subtrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Union

from .types import ArrayType, ScalarType

__all__ = [
    "Expr",
    "IntConst",
    "RealConst",
    "VarRef",
    "ArrayRef",
    "BinOp",
    "UnOp",
    "FuncCall",
    "Stmt",
    "Assign",
    "Do",
    "If",
    "CallStmt",
    "Decl",
    "Program",
    "BINARY_OPS",
    "COMPARISON_OPS",
    "LOGICAL_OPS",
]

#: Arithmetic binary operator spellings.
BINARY_OPS = ("+", "-", "*", "/", "**")
#: Relational operator spellings (canonical, Fortran-style).
COMPARISON_OPS = (".lt.", ".le.", ".gt.", ".ge.", ".eq.", ".ne.")
#: Logical connectives.
LOGICAL_OPS = (".and.", ".or.")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for expressions (structural, immutable)."""

    __slots__ = ()


@dataclass(frozen=True)
class IntConst(Expr):
    """An integer literal."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class RealConst(Expr):
    """A floating literal, held exactly as a Fraction for reproducibility."""

    value: Fraction
    text: str = ""

    def __str__(self) -> str:
        return self.text or str(float(self.value))


@dataclass(frozen=True)
class VarRef(Expr):
    """A scalar variable reference."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef(Expr):
    """An array element reference ``name(sub1, sub2, ...)``."""

    name: str
    subscripts: tuple[Expr, ...]

    def __str__(self) -> str:
        subs = ", ".join(str(s) for s in self.subscripts)
        return f"{self.name}({subs})"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation: arithmetic, relational, or logical."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation: ``-`` or ``.not.``."""

    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """A call to an intrinsic or external function in expression position."""

    name: str
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class for statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Assign(Stmt):
    """An assignment ``target = value``."""

    target: Union[VarRef, ArrayRef]
    value: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.value}"


@dataclass(frozen=True)
class Do(Stmt):
    """A counted ``DO`` loop; bounds may be arbitrary expressions."""

    var: str
    lb: Expr
    ub: Expr
    step: Expr
    body: tuple[Stmt, ...]

    def __str__(self) -> str:
        head = f"do {self.var} = {self.lb}, {self.ub}"
        if self.step != IntConst(1):
            head += f", {self.step}"
        return head + f"  ! {len(self.body)} stmts"


@dataclass(frozen=True)
class If(Stmt):
    """A two-armed conditional (the else arm may be empty)."""

    cond: Expr
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...] = ()

    def __str__(self) -> str:
        return f"if ({self.cond}) then ... " + ("else ..." if self.else_body else "")


@dataclass(frozen=True)
class CallStmt(Stmt):
    """A call to an external subroutine (costed via the library table)."""

    name: str
    args: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        return f"call {self.name}({', '.join(str(a) for a in self.args)})"


# ---------------------------------------------------------------------------
# Declarations and program
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Decl:
    """A variable declaration (scalar when ``array`` is None)."""

    name: str
    scalar: ScalarType
    array: ArrayType | None = None

    @property
    def is_array(self) -> bool:
        return self.array is not None

    def __str__(self) -> str:
        if self.array:
            return f"{self.scalar} {self.name}({', '.join(self.array.dims)})"
        return f"{self.scalar} {self.name}"


@dataclass(frozen=True)
class Program:
    """A complete mini-Fortran program unit."""

    name: str
    decls: tuple[Decl, ...]
    body: tuple[Stmt, ...]
    params: tuple[str, ...] = field(default_factory=tuple)

    def decl_of(self, name: str) -> Decl | None:
        for decl in self.decls:
            if decl.name == name:
                return decl
        return None

    def __str__(self) -> str:
        return f"program {self.name} ({len(self.decls)} decls, {len(self.body)} stmts)"
