"""Programmatic IR construction helpers.

Transformations and tests often need to synthesize IR without going
through source text; these helpers keep that terse::

    from repro.ir import builder as b

    loop = b.do_("i", 1, b.var("n"), body=[
        b.assign(b.aref("c", b.var("i")),
                 b.add(b.aref("a", b.var("i")), b.aref("b", b.var("i")))),
    ])
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Union

from .nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    Decl,
    Do,
    Expr,
    FuncCall,
    If,
    IntConst,
    Program,
    RealConst,
    Stmt,
    UnOp,
    VarRef,
)
from .types import ArrayType, ScalarType

__all__ = [
    "lit", "var", "aref", "call",
    "add", "sub", "mul", "div", "pow_", "neg",
    "lt", "le", "gt", "ge", "eq", "ne", "and_", "or_", "not_",
    "assign", "do_", "if_", "call_stmt",
    "decl", "array_decl", "program",
]

ExprLike = Union[Expr, int, float, Fraction, str]


def lit(value: int | float | Fraction) -> Expr:
    """An integer or real literal."""
    if isinstance(value, int):
        return IntConst(value)
    return RealConst(Fraction(value))


def _expr(value: ExprLike) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return VarRef(value)
    return lit(value)


def var(name: str) -> VarRef:
    return VarRef(name)


def aref(name: str, *subscripts: ExprLike) -> ArrayRef:
    return ArrayRef(name, tuple(_expr(s) for s in subscripts))


def call(name: str, *args: ExprLike) -> FuncCall:
    return FuncCall(name, tuple(_expr(a) for a in args))


def _binop(op: str):
    def build(left: ExprLike, right: ExprLike) -> BinOp:
        return BinOp(op, _expr(left), _expr(right))

    build.__name__ = f"binop_{op}"
    return build


add = _binop("+")
sub = _binop("-")
mul = _binop("*")
div = _binop("/")
pow_ = _binop("**")
lt = _binop(".lt.")
le = _binop(".le.")
gt = _binop(".gt.")
ge = _binop(".ge.")
eq = _binop(".eq.")
ne = _binop(".ne.")
and_ = _binop(".and.")
or_ = _binop(".or.")


def neg(operand: ExprLike) -> UnOp:
    return UnOp("-", _expr(operand))


def not_(operand: ExprLike) -> UnOp:
    return UnOp(".not.", _expr(operand))


def assign(target: VarRef | ArrayRef | str, value: ExprLike) -> Assign:
    if isinstance(target, str):
        target = VarRef(target)
    return Assign(target, _expr(value))


def do_(
    index: str,
    lb: ExprLike,
    ub: ExprLike,
    body: Iterable[Stmt],
    step: ExprLike = 1,
) -> Do:
    return Do(index, _expr(lb), _expr(ub), _expr(step), tuple(body))


def if_(
    cond: ExprLike,
    then_body: Iterable[Stmt],
    else_body: Iterable[Stmt] = (),
) -> If:
    return If(_expr(cond), tuple(then_body), tuple(else_body))


def call_stmt(name: str, *args: ExprLike) -> CallStmt:
    return CallStmt(name, tuple(_expr(a) for a in args))


def decl(name: str, scalar: ScalarType = ScalarType.REAL) -> Decl:
    return Decl(name, scalar)


def array_decl(
    name: str,
    *dims: str | int,
    scalar: ScalarType = ScalarType.REAL,
) -> Decl:
    dim_texts = tuple(str(d) for d in dims)
    return Decl(name, scalar, ArrayType(scalar, dim_texts))


def program(
    name: str,
    decls: Iterable[Decl],
    body: Iterable[Stmt],
) -> Program:
    return Program(name, tuple(decls), tuple(body))
