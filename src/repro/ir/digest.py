"""Stable content hashes for IR programs.

The canonical rendering produced by :mod:`repro.ir.printer` is a
normal form: parsing and re-printing a program erases formatting,
comments, declaration grouping, and case differences, so two programs
that are *structurally* equal print identically.  Hashing that
rendering therefore gives a content address -- the key the service
layer uses for its cross-request result cache.
"""

from __future__ import annotations

import hashlib

from .nodes import Program
from .printer import print_program

__all__ = ["program_digest", "source_digest"]


def program_digest(program: Program) -> str:
    """Hex SHA-256 of the canonical rendering of ``program``.

    Structurally equal programs (same statements, declarations, and
    name, regardless of source formatting) collide; any structural
    variation -- a renamed index, a reassociated expression, an extra
    statement -- produces a different digest.
    """
    return source_digest(print_program(program))


def source_digest(text: str) -> str:
    """Hex SHA-256 of a source string (no canonicalization applied)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
