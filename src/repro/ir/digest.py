"""Stable content hashes for IR programs.

Two flavours:

* :func:`program_digest` hashes the canonical rendering produced by
  :mod:`repro.ir.printer` -- a normal form that erases formatting,
  comments, declaration grouping, and case differences, so two programs
  that are *structurally* equal print identically.  This is the content
  address the service layer uses for its cross-request result cache.

* :func:`stmts_digest` / :func:`node_digest` hash the IR structure
  directly, bottom-up, with a per-node memo.  Transformation search
  probes thousands of program variants that share almost every subtree
  with their parents (the IR is immutable; a rewrite rebuilds only the
  spine to the root), so the memo makes re-digesting a variant cost
  O(changed spine), not O(program) -- unlike printing, which walks the
  whole tree every time.  The transposition table in
  :mod:`repro.transform.search` is keyed this way.

Both flavours are injective over program structure (up to hash
collision), but they are *different* hash spaces: never mix
``program_digest`` and ``stmts_digest`` keys in one table.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction
from typing import Sequence

from .nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    Do,
    FuncCall,
    If,
    IntConst,
    Program,
    RealConst,
    Stmt,
    UnOp,
    VarRef,
)
from .printer import print_program

__all__ = ["program_digest", "source_digest", "stmts_digest", "node_digest"]


def program_digest(program: Program) -> str:
    """Hex SHA-256 of the canonical rendering of ``program``.

    Structurally equal programs (same statements, declarations, and
    name, regardless of source formatting) collide; any structural
    variation -- a renamed index, a reassociated expression, an extra
    statement -- produces a different digest.
    """
    return source_digest(print_program(program))


def source_digest(text: str) -> str:
    """Hex SHA-256 of a source string (no canonicalization applied)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Structural digests (bottom-up, memoized)

#: Memo: id(node) -> (node, digest).  Keeping the node itself in the
#: value pins it alive, so its id can never be recycled while the entry
#: exists -- that is what makes an id-keyed cache sound.  Lookup is
#: O(1); a structural-equality dict would re-hash the whole subtree on
#: every probe, which defeats the point.
_MEMO_LIMIT = 1 << 16
_memo: dict[int, tuple[object, bytes]] = {}


def _blake(parts: list[bytes]) -> bytes:
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part)
    return h.digest()


def _digest_node(node) -> bytes:
    """16-byte structural digest of one expression or statement."""
    key = id(node)
    hit = _memo.get(key)
    if hit is not None and hit[0] is node:
        return hit[1]

    if isinstance(node, IntConst):
        out = _blake([b"I", str(node.value).encode()])
    elif isinstance(node, RealConst):
        value: Fraction = node.value
        out = _blake([b"R", str(value.numerator).encode(), b"/",
                      str(value.denominator).encode()])
    elif isinstance(node, VarRef):
        out = _blake([b"V", node.name.encode()])
    elif isinstance(node, ArrayRef):
        out = _blake([b"A", node.name.encode()]
                     + [_digest_node(s) for s in node.subscripts])
    elif isinstance(node, BinOp):
        out = _blake([b"B", node.op.encode(),
                      _digest_node(node.left), _digest_node(node.right)])
    elif isinstance(node, UnOp):
        out = _blake([b"U", node.op.encode(), _digest_node(node.operand)])
    elif isinstance(node, FuncCall):
        out = _blake([b"F", node.name.encode()]
                     + [_digest_node(a) for a in node.args])
    elif isinstance(node, Assign):
        out = _blake([b"=", _digest_node(node.target),
                      _digest_node(node.value)])
    elif isinstance(node, Do):
        out = _blake([b"D", node.var.encode(), _digest_node(node.lb),
                      _digest_node(node.ub), _digest_node(node.step)]
                     + [_digest_node(s) for s in node.body])
    elif isinstance(node, If):
        out = _blake([b"?", _digest_node(node.cond), b"t"]
                     + [_digest_node(s) for s in node.then_body]
                     + [b"e"] + [_digest_node(s) for s in node.else_body])
    elif isinstance(node, CallStmt):
        out = _blake([b"C", node.name.encode()]
                     + [_digest_node(a) for a in node.args])
    else:
        raise TypeError(f"cannot digest IR node {node!r}")

    if len(_memo) >= _MEMO_LIMIT:
        _memo.clear()
    _memo[key] = (node, out)
    return out


def node_digest(node: Stmt) -> str:
    """Hex structural digest of a single statement or expression."""
    return _digest_node(node).hex()


def stmts_digest(stmts: Sequence[Stmt]) -> str:
    """Hex structural digest of a statement sequence.

    The digest covers statement structure and order only -- not the
    program name, declarations, or parameters, which transformation
    search never changes.  Shared subtrees (the rule, not the
    exception, for transformed variants of one program) are digested
    once and memoized by identity.
    """
    return _blake([b"S"] + [_digest_node(s) for s in stmts]).hex()
