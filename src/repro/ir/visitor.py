"""Generic traversal and rewriting of the mini-Fortran IR.

Transformations (:mod:`repro.transform`) and analyses use these to walk
or rebuild trees without writing per-node boilerplate.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    Do,
    Expr,
    FuncCall,
    If,
    Stmt,
    UnOp,
)

__all__ = [
    "walk_exprs",
    "walk_stmts",
    "map_exprs",
    "map_stmts",
    "substitute_var",
    "rename_index",
]


def walk_exprs(expr: Expr) -> Iterator[Expr]:
    """Yield every sub-expression (pre-order), including ``expr`` itself."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_exprs(expr.left)
        yield from walk_exprs(expr.right)
    elif isinstance(expr, UnOp):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, (ArrayRef, FuncCall)):
        for sub in expr.subscripts if isinstance(expr, ArrayRef) else expr.args:
            yield from walk_exprs(sub)


def walk_stmts(stmts: tuple[Stmt, ...]) -> Iterator[Stmt]:
    """Yield every statement (pre-order), descending into bodies."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, Do):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)


def map_exprs(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild an expression bottom-up, applying ``fn`` to every node.

    ``fn`` receives each node *after* its children have been rewritten
    and returns the node to use in its place.
    """
    if isinstance(expr, BinOp):
        rebuilt: Expr = BinOp(expr.op, map_exprs(expr.left, fn), map_exprs(expr.right, fn))
    elif isinstance(expr, UnOp):
        rebuilt = UnOp(expr.op, map_exprs(expr.operand, fn))
    elif isinstance(expr, ArrayRef):
        rebuilt = ArrayRef(expr.name, tuple(map_exprs(s, fn) for s in expr.subscripts))
    elif isinstance(expr, FuncCall):
        rebuilt = FuncCall(expr.name, tuple(map_exprs(a, fn) for a in expr.args))
    else:
        rebuilt = expr
    return fn(rebuilt)


def map_stmts(
    stmts: tuple[Stmt, ...],
    stmt_fn: Callable[[Stmt], Stmt | tuple[Stmt, ...] | None] | None = None,
    expr_fn: Callable[[Expr], Expr] | None = None,
) -> tuple[Stmt, ...]:
    """Rebuild a statement list.

    ``expr_fn`` rewrites every expression; ``stmt_fn`` is applied to each
    rebuilt statement and may return a replacement statement, a tuple of
    statements (splicing), or ``None`` to delete the statement.
    """
    out: list[Stmt] = []
    for stmt in stmts:
        rebuilt = _rebuild_stmt(stmt, stmt_fn, expr_fn)
        if stmt_fn is not None:
            result = stmt_fn(rebuilt)
            if result is None:
                continue
            if isinstance(result, tuple):
                out.extend(result)
            else:
                out.append(result)
        else:
            out.append(rebuilt)
    return tuple(out)


def _rebuild_stmt(stmt, stmt_fn, expr_fn) -> Stmt:
    fix = (lambda e: map_exprs(e, expr_fn)) if expr_fn else (lambda e: e)
    if isinstance(stmt, Assign):
        target = fix(stmt.target)
        if not isinstance(target, (ArrayRef,)) and not hasattr(target, "name"):
            raise TypeError(f"expression rewrite produced invalid target {target}")
        return Assign(target, fix(stmt.value))  # type: ignore[arg-type]
    if isinstance(stmt, Do):
        return Do(
            stmt.var,
            fix(stmt.lb),
            fix(stmt.ub),
            fix(stmt.step),
            map_stmts(stmt.body, stmt_fn, expr_fn),
        )
    if isinstance(stmt, If):
        return If(
            fix(stmt.cond),
            map_stmts(stmt.then_body, stmt_fn, expr_fn),
            map_stmts(stmt.else_body, stmt_fn, expr_fn),
        )
    if isinstance(stmt, CallStmt):
        return CallStmt(stmt.name, tuple(fix(a) for a in stmt.args))
    return stmt


def substitute_var(expr: Expr, name: str, replacement: Expr) -> Expr:
    """Replace every ``VarRef(name)`` in an expression."""
    from .nodes import VarRef

    def swap(node: Expr) -> Expr:
        if isinstance(node, VarRef) and node.name == name:
            return replacement
        return node

    return map_exprs(expr, swap)


def rename_index(stmts: tuple[Stmt, ...], old: str, replacement: Expr) -> tuple[Stmt, ...]:
    """Replace a loop index by an expression throughout a statement list."""
    from .nodes import VarRef

    def swap(node: Expr) -> Expr:
        if isinstance(node, VarRef) and node.name == old:
            return replacement
        return node

    return map_stmts(stmts, expr_fn=swap)
