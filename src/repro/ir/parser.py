"""Recursive-descent parser for the mini-Fortran dialect.

Grammar (newline-terminated statements, case-insensitive)::

    program  := 'program' IDENT nl decls stmts 'end' ['program' [IDENT]]
    decl     := type ident [ '(' dim {',' dim} ')' ] {',' ...} nl
    type     := 'integer' | 'real' | 'double' ['precision'] | 'logical'
    stmt     := assign | do | if | call | 'return'
    do       := 'do' IDENT '=' expr ',' expr [',' expr] nl stmts end_do
    if       := 'if' '(' expr ')' 'then' nl stmts ['else' nl stmts] end_if
    assign   := lvalue '=' expr nl
    call     := 'call' IDENT ['(' [expr {',' expr}] ')'] nl

Expression precedence (loosest to tightest): ``.or.``, ``.and.``,
``.not.``, relational, additive, multiplicative, unary minus, ``**``
(right-associative), primary.

Use :func:`parse_program` for full units and :func:`parse_fragment`
for bare statement lists (the paper's basic-block kernels).
"""

from __future__ import annotations

from fractions import Fraction

from .lexer import Token, TokenKind, tokenize
from .nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    Decl,
    Do,
    Expr,
    FuncCall,
    If,
    IntConst,
    Program,
    RealConst,
    Stmt,
    UnOp,
    VarRef,
)
from .types import ArrayType, ScalarType

__all__ = ["ParseError", "parse_program", "parse_fragment", "parse_expression"]

_TYPE_KEYWORDS = {
    "integer": ScalarType.INTEGER,
    "real": ScalarType.REAL,
    "double": ScalarType.DOUBLE,
    "logical": ScalarType.LOGICAL,
}

_BLOCK_ENDERS = frozenset({"end", "enddo", "endif", "else", "elseif"})


class ParseError(SyntaxError):
    """Raised on malformed input, with line/column context."""


class _Parser:
    def __init__(self, source: str):
        self.tokens = list(tokenize(source))
        self.pos = 0

    # -- token helpers -----------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def check(self, kind: TokenKind, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind is kind and (text is None or token.text == text)

    def accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self.peek()
        if not self.check(kind, text):
            want = text or kind.value
            raise ParseError(
                f"expected {want!r}, found {token.text!r} at line {token.line}:{token.column}"
            )
        return self.advance()

    def skip_newlines(self) -> None:
        while self.accept(TokenKind.NEWLINE):
            pass

    def end_of_stmt(self) -> None:
        if self.peek().kind is TokenKind.EOF:
            return
        self.expect(TokenKind.NEWLINE)
        self.skip_newlines()

    # -- program ------------------------------------------------------------
    def parse_program(self) -> Program:
        """A ``program`` unit or a ``subroutine`` with formal parameters."""
        self.skip_newlines()
        kind_token = self.peek()
        if kind_token.kind is TokenKind.IDENT and kind_token.text == "subroutine":
            self.advance()
            is_subroutine = True
        else:
            self.expect(TokenKind.IDENT, "program")
            is_subroutine = False
        name = self.expect(TokenKind.IDENT).text
        params: list[str] = []
        if is_subroutine and self.accept(TokenKind.LPAREN):
            if not self.check(TokenKind.RPAREN):
                params.append(self.expect(TokenKind.IDENT).text)
                while self.accept(TokenKind.COMMA):
                    params.append(self.expect(TokenKind.IDENT).text)
            self.expect(TokenKind.RPAREN)
        self.end_of_stmt()
        decls = self.parse_decls()
        body = self.parse_stmts()
        self.expect(TokenKind.IDENT, "end")
        self.accept(TokenKind.IDENT, "subroutine" if is_subroutine else "program")
        self.accept(TokenKind.IDENT)  # optional repeated name
        self.skip_newlines()
        self.expect(TokenKind.EOF)
        return Program(
            name=name, decls=tuple(decls), body=tuple(body),
            params=tuple(params),
        )

    def parse_decls(self) -> list[Decl]:
        decls: list[Decl] = []
        while True:
            self.skip_newlines()
            token = self.peek()
            if token.kind is not TokenKind.IDENT or token.text not in _TYPE_KEYWORDS:
                break
            scalar = _TYPE_KEYWORDS[self.advance().text]
            if scalar is ScalarType.DOUBLE:
                self.accept(TokenKind.IDENT, "precision")
            while True:
                name = self.expect(TokenKind.IDENT).text
                dims: list[str] = []
                if self.accept(TokenKind.LPAREN):
                    while True:
                        dims.append(self.parse_dim_text())
                        if not self.accept(TokenKind.COMMA):
                            break
                    self.expect(TokenKind.RPAREN)
                array = ArrayType(scalar, tuple(dims)) if dims else None
                decls.append(Decl(name, scalar, array))
                if not self.accept(TokenKind.COMMA):
                    break
            self.end_of_stmt()
        return decls

    def parse_dim_text(self) -> str:
        """A dimension extent: an identifier, an integer, or ``lo:hi``."""
        parts = [self.expect_any((TokenKind.IDENT, TokenKind.INT)).text]
        # Allow simple arithmetic like `n+1` inside a dimension.
        while self.peek().kind is TokenKind.OP and self.peek().text in ("+", "-", "*"):
            parts.append(self.advance().text)
            parts.append(self.expect_any((TokenKind.IDENT, TokenKind.INT)).text)
        return "".join(parts)

    def expect_any(self, kinds: tuple[TokenKind, ...]) -> Token:
        token = self.peek()
        if token.kind not in kinds:
            raise ParseError(
                f"unexpected {token.text!r} at line {token.line}:{token.column}"
            )
        return self.advance()

    # -- statements ----------------------------------------------------------
    def parse_stmts(self) -> list[Stmt]:
        stmts: list[Stmt] = []
        while True:
            self.skip_newlines()
            token = self.peek()
            if token.kind is TokenKind.EOF:
                break
            if token.kind is TokenKind.IDENT and token.text in _BLOCK_ENDERS:
                break
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self) -> Stmt:
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected a statement, found {token.text!r} at line {token.line}"
            )
        if token.text == "do":
            return self.parse_do()
        if token.text == "if":
            return self.parse_if()
        if token.text == "call":
            return self.parse_call()
        if token.text == "return":
            self.advance()
            self.end_of_stmt()
            return CallStmt("return", ())
        return self.parse_assign()

    def parse_do(self) -> Do:
        self.expect(TokenKind.IDENT, "do")
        var = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.OP, "=")
        lb = self.parse_expr()
        self.expect(TokenKind.COMMA)
        ub = self.parse_expr()
        step: Expr = IntConst(1)
        if self.accept(TokenKind.COMMA):
            step = self.parse_expr()
        self.end_of_stmt()
        body = self.parse_stmts()
        if self.accept(TokenKind.IDENT, "enddo") is None:
            self.expect(TokenKind.IDENT, "end")
            self.expect(TokenKind.IDENT, "do")
        self.end_of_stmt()
        return Do(var, lb, ub, step, tuple(body))

    def parse_if(self) -> If:
        self.expect(TokenKind.IDENT, "if")
        self.expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        self.expect(TokenKind.IDENT, "then")
        self.end_of_stmt()
        then_body = self.parse_stmts()
        else_body: list[Stmt] = []
        if self.accept(TokenKind.IDENT, "else"):
            self.end_of_stmt()
            else_body = self.parse_stmts()
        if self.accept(TokenKind.IDENT, "endif") is None:
            self.expect(TokenKind.IDENT, "end")
            self.expect(TokenKind.IDENT, "if")
        self.end_of_stmt()
        return If(cond, tuple(then_body), tuple(else_body))

    def parse_call(self) -> CallStmt:
        self.expect(TokenKind.IDENT, "call")
        name = self.expect(TokenKind.IDENT).text
        args: list[Expr] = []
        if self.accept(TokenKind.LPAREN):
            if not self.check(TokenKind.RPAREN):
                args.append(self.parse_expr())
                while self.accept(TokenKind.COMMA):
                    args.append(self.parse_expr())
            self.expect(TokenKind.RPAREN)
        self.end_of_stmt()
        return CallStmt(name, tuple(args))

    def parse_assign(self) -> Assign:
        target = self.parse_primary()
        if not isinstance(target, (VarRef, ArrayRef)):
            raise ParseError(f"invalid assignment target {target}")
        self.expect(TokenKind.OP, "=")
        value = self.parse_expr()
        self.end_of_stmt()
        return Assign(target, value)

    # -- expressions ----------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.check(TokenKind.OP, ".or."):
            self.advance()
            left = BinOp(".or.", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.check(TokenKind.OP, ".and."):
            self.advance()
            left = BinOp(".and.", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.check(TokenKind.OP, ".not."):
            self.advance()
            return UnOp(".not.", self.parse_not())
        return self.parse_relational()

    def parse_relational(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.kind is TokenKind.OP and token.text in (
            ".lt.", ".le.", ".gt.", ".ge.", ".eq.", ".ne.",
        ):
            op = self.advance().text
            return BinOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.peek().kind is TokenKind.OP and self.peek().text in ("+", "-"):
            op = self.advance().text
            left = BinOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.peek().kind is TokenKind.OP and self.peek().text in ("*", "/"):
            op = self.advance().text
            left = BinOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.check(TokenKind.OP, "-"):
            self.advance()
            return UnOp("-", self.parse_unary())
        if self.check(TokenKind.OP, "+"):
            self.advance()
            return self.parse_unary()
        return self.parse_power()

    def parse_power(self) -> Expr:
        base = self.parse_primary()
        if self.check(TokenKind.OP, "**"):
            self.advance()
            # Right-associative: a ** b ** c == a ** (b ** c).
            return BinOp("**", base, self.parse_unary())
        return base

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind is TokenKind.INT:
            self.advance()
            return IntConst(int(token.text))
        if token.kind is TokenKind.REAL:
            self.advance()
            text = token.text.lower().replace("d", "e")
            return RealConst(Fraction(text), token.text)
        if token.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.IDENT:
            name = self.advance().text
            if self.accept(TokenKind.LPAREN):
                args: list[Expr] = []
                if not self.check(TokenKind.RPAREN):
                    args.append(self.parse_expr())
                    while self.accept(TokenKind.COMMA):
                        args.append(self.parse_expr())
                self.expect(TokenKind.RPAREN)
                # Whether this is an intrinsic call or an array reference is
                # resolved later by the symbol table; default to ArrayRef,
                # with known intrinsics becoming FuncCall.
                if name in _INTRINSICS:
                    return FuncCall(name, tuple(args))
                return ArrayRef(name, tuple(args))
            return VarRef(name)
        raise ParseError(
            f"unexpected token {token.text!r} at line {token.line}:{token.column}"
        )


_INTRINSICS = frozenset(
    "abs min max sqrt exp log sin cos mod int real dble".split()
)


def parse_program(source: str) -> Program:
    """Parse a complete ``program ... end`` unit."""
    return _Parser(source).parse_program()


def parse_fragment(source: str) -> tuple[Stmt, ...]:
    """Parse a bare statement list (no ``program`` wrapper)."""
    parser = _Parser(source)
    parser.skip_newlines()
    stmts = parser.parse_stmts()
    parser.skip_newlines()
    parser.expect(TokenKind.EOF)
    return tuple(stmts)


def parse_expression(source: str) -> Expr:
    """Parse a single expression."""
    parser = _Parser(source)
    parser.skip_newlines()
    expr = parser.parse_expr()
    parser.skip_newlines()
    parser.expect(TokenKind.EOF)
    return expr
