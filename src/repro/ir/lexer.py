"""Tokenizer for the mini-Fortran dialect.

Free-form source, case-insensitive keywords, ``!`` comments, Fortran
dotted operators (``.le.``, ``.and.``) alongside the modern symbolic
spellings (``<=``, ``==``).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator

__all__ = ["TokenKind", "Token", "LexError", "tokenize"]


class LexError(SyntaxError):
    """Raised on unrecognized input."""


class TokenKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    REAL = "real"
    OP = "op"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    NEWLINE = "newline"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.text!r}@{self.line}:{self.column}"


#: Keywords are lexed as IDENT; the parser gives them meaning (this keeps
#: identifiers like a variable named `do1` unambiguous).
KEYWORDS = frozenset(
    "program end do enddo if then else elseif endif call integer real double logical return".split()
)

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>![^\n]*)
  | (?P<real>(\d+\.\d*|\.\d+)([edED][+-]?\d+)?|\d+[edED][+-]?\d+)
  | (?P<int>\d+)
  | (?P<dotop>\.(lt|le|gt|ge|eq|ne|and|or|not|true|false)\.)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>\*\*|<=|>=|==|/=|!=|[-+*/<>=])
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<newline>\n|;)
  | (?P<ws>[ \t\r]+)
  | (?P<ampcont>&[ \t]*\n)
    """,
    re.VERBOSE,
)

#: Canonicalize symbolic relational spellings to the dotted forms.
_SYMBOLIC_TO_DOTTED = {
    "<": ".lt.",
    "<=": ".le.",
    ">": ".gt.",
    ">=": ".ge.",
    "==": ".eq.",
    "/=": ".ne.",
    "!=": ".ne.",
}


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens; raises :class:`LexError` on unrecognized characters."""
    line = 1
    line_start = 0
    pos = 0
    length = len(source)
    while pos < length:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise LexError(f"unexpected character {source[pos]!r} at line {line}:{column}")
        column = pos - line_start + 1
        pos = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            continue
        if kind == "ampcont":
            # Continuation: swallow the newline entirely.
            line += 1
            line_start = pos
            continue
        if kind == "newline":
            yield Token(TokenKind.NEWLINE, text, line, column)
            if text == "\n":
                line += 1
                line_start = pos
            continue
        if kind == "ident":
            yield Token(TokenKind.IDENT, text.lower(), line, column)
        elif kind == "int":
            yield Token(TokenKind.INT, text, line, column)
        elif kind == "real":
            yield Token(TokenKind.REAL, text, line, column)
        elif kind == "dotop":
            yield Token(TokenKind.OP, text.lower(), line, column)
        elif kind == "op":
            yield Token(TokenKind.OP, _SYMBOLIC_TO_DOTTED.get(text, text), line, column)
        elif kind == "lparen":
            yield Token(TokenKind.LPAREN, text, line, column)
        elif kind == "rparen":
            yield Token(TokenKind.RPAREN, text, line, column)
        elif kind == "comma":
            yield Token(TokenKind.COMMA, text, line, column)
    yield Token(TokenKind.EOF, "", line, pos - line_start + 1)
