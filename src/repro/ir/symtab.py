"""Symbol table: name → type resolution and expression typing.

The translator needs operand types to pick basic operations (integer
add vs double-precision add), and the memory model needs array shapes.
Undeclared scalars default to Fortran implicit typing: names starting
with ``i``–``n`` are INTEGER, everything else REAL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .nodes import (
    ArrayRef,
    BinOp,
    Decl,
    Expr,
    FuncCall,
    IntConst,
    Program,
    RealConst,
    UnOp,
    VarRef,
)
from .types import ArrayType, ScalarType, TypeError_

__all__ = ["SymbolTable"]

_COMPARISONS = frozenset({".lt.", ".le.", ".gt.", ".ge.", ".eq.", ".ne."})
_LOGICALS = frozenset({".and.", ".or."})


def _implicit_type(name: str) -> ScalarType:
    return ScalarType.INTEGER if name[0] in "ijklmn" else ScalarType.REAL


@dataclass
class SymbolTable:
    """Mapping from names to declarations, with implicit-typing fallback."""

    decls: dict[str, Decl] = field(default_factory=dict)

    @classmethod
    def from_program(cls, program: Program) -> "SymbolTable":
        return cls({decl.name: decl for decl in program.decls})

    @classmethod
    def from_decls(cls, decls: tuple[Decl, ...] | list[Decl]) -> "SymbolTable":
        return cls({decl.name: decl for decl in decls})

    def declare(self, decl: Decl) -> None:
        self.decls[decl.name] = decl

    def scalar_type(self, name: str) -> ScalarType:
        decl = self.decls.get(name)
        if decl is not None:
            return decl.scalar
        return _implicit_type(name)

    def array_type(self, name: str) -> ArrayType | None:
        decl = self.decls.get(name)
        return decl.array if decl else None

    def is_array(self, name: str) -> bool:
        decl = self.decls.get(name)
        return bool(decl and decl.is_array)

    def type_of(self, expr: Expr) -> ScalarType:
        """Type of an expression under usual arithmetic conversions."""
        if isinstance(expr, IntConst):
            return ScalarType.INTEGER
        if isinstance(expr, RealConst):
            return ScalarType.REAL
        if isinstance(expr, VarRef):
            return self.scalar_type(expr.name)
        if isinstance(expr, ArrayRef):
            return self.scalar_type(expr.name)
        if isinstance(expr, UnOp):
            if expr.op == ".not.":
                return ScalarType.LOGICAL
            return self.type_of(expr.operand)
        if isinstance(expr, BinOp):
            if expr.op in _COMPARISONS or expr.op in _LOGICALS:
                return ScalarType.LOGICAL
            left = self.type_of(expr.left)
            right = self.type_of(expr.right)
            if expr.op == "/" and left is ScalarType.INTEGER and right is ScalarType.INTEGER:
                return ScalarType.INTEGER
            return left.join(right)
        if isinstance(expr, FuncCall):
            return self._intrinsic_type(expr)
        raise TypeError_(f"cannot type expression {expr!r}")

    def _intrinsic_type(self, call: FuncCall) -> ScalarType:
        if call.name in ("int", "mod"):
            return ScalarType.INTEGER
        if call.name == "dble":
            return ScalarType.DOUBLE
        if call.name == "real":
            return ScalarType.REAL
        if call.name in ("abs", "min", "max"):
            if not call.args:
                raise TypeError_(f"{call.name} needs arguments")
            result = self.type_of(call.args[0])
            for arg in call.args[1:]:
                result = result.join(self.type_of(arg))
            return result
        # sqrt/exp/log/sin/cos: float result, width of the argument.
        if call.args:
            arg_type = self.type_of(call.args[0])
            return arg_type if arg_type.is_float else ScalarType.REAL
        return ScalarType.REAL
