"""Render IR back to mini-Fortran source.

``parse_program(print_program(p))`` round-trips structurally; the
printer is also what examples and benchmark reports use to show
transformed programs.
"""

from __future__ import annotations

from .nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    Decl,
    Do,
    Expr,
    FuncCall,
    If,
    IntConst,
    Program,
    RealConst,
    Stmt,
    UnOp,
    VarRef,
)
from .types import ScalarType

__all__ = ["print_expr", "print_stmt", "print_stmts", "print_program"]

_PRECEDENCE = {
    ".or.": 1,
    ".and.": 2,
    ".lt.": 4, ".le.": 4, ".gt.": 4, ".ge.": 4, ".eq.": 4, ".ne.": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6,
    "**": 8,
}


def print_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, (IntConst, RealConst, VarRef)):
        return str(expr)
    if isinstance(expr, ArrayRef):
        subs = ", ".join(print_expr(s) for s in expr.subscripts)
        return f"{expr.name}({subs})"
    if isinstance(expr, FuncCall):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, UnOp):
        inner = print_expr(expr.operand, 7)
        text = f"{expr.op}{inner}" if expr.op == "-" else f"{expr.op} {inner}"
        return f"({text})" if parent_prec > 7 else text
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        if expr.op == "**":
            # Right-associative: parenthesize a nested ** on the left.
            left = print_expr(expr.left, prec + 1)
            right = print_expr(expr.right, prec)
        else:
            # Left-associative: parenthesize a same-precedence right child.
            left = print_expr(expr.left, prec)
            right = print_expr(expr.right, prec + 1)
        spaced_op = expr.op if expr.op.startswith(".") else f" {expr.op} "
        if expr.op.startswith("."):
            spaced_op = f" {expr.op} "
        text = f"{left}{spaced_op}{right}".replace("  ", " ")
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"cannot print {expr!r}")


def print_stmt(stmt: Stmt, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(stmt, Assign):
        return f"{pad}{print_expr(stmt.target)} = {print_expr(stmt.value)}"
    if isinstance(stmt, Do):
        head = f"{pad}do {stmt.var} = {print_expr(stmt.lb)}, {print_expr(stmt.ub)}"
        if stmt.step != IntConst(1):
            head += f", {print_expr(stmt.step)}"
        body = print_stmts(stmt.body, indent + 1)
        return f"{head}\n{body}\n{pad}end do"
    if isinstance(stmt, If):
        head = f"{pad}if ({print_expr(stmt.cond)}) then"
        lines = [head, print_stmts(stmt.then_body, indent + 1)]
        if stmt.else_body:
            lines.append(f"{pad}else")
            lines.append(print_stmts(stmt.else_body, indent + 1))
        lines.append(f"{pad}end if")
        return "\n".join(lines)
    if isinstance(stmt, CallStmt):
        if stmt.name == "return" and not stmt.args:
            return f"{pad}return"
        args = ", ".join(print_expr(a) for a in stmt.args)
        return f"{pad}call {stmt.name}({args})"
    raise TypeError(f"cannot print {stmt!r}")


def print_stmts(stmts: tuple[Stmt, ...], indent: int = 0) -> str:
    return "\n".join(print_stmt(s, indent) for s in stmts)


def _print_decl(decl: Decl) -> str:
    type_name = "double precision" if decl.scalar is ScalarType.DOUBLE else str(decl.scalar)
    if decl.array:
        return f"  {type_name} {decl.name}({', '.join(decl.array.dims)})"
    return f"  {type_name} {decl.name}"


def print_program(program: Program) -> str:
    if program.params:
        header = f"subroutine {program.name}({', '.join(program.params)})"
        footer = "end subroutine"
    else:
        header = f"program {program.name}"
        footer = "end program"
    lines = [header]
    lines.extend(_print_decl(d) for d in program.decls)
    if program.body:
        lines.append(print_stmts(program.body, 1))
    lines.append(footer)
    return "\n".join(lines) + "\n"
