"""Scalar and array types of the mini-Fortran IR.

The predictor is type-driven: the *operation specialization mapping*
(paper section 2.2.1) maps a high-level ``+`` to an integer add, a
single-precision add, or a double-precision add depending on operand
types, and those basic operations carry different costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["ScalarType", "ArrayType", "TypeError_"]


class TypeError_(Exception):
    """Raised on type mismatches during IR construction or translation."""


class ScalarType(enum.Enum):
    """Fortran-style scalar types."""

    INTEGER = "integer"
    REAL = "real"          # single precision
    DOUBLE = "double"      # double precision
    LOGICAL = "logical"

    @property
    def is_float(self) -> bool:
        return self in (ScalarType.REAL, ScalarType.DOUBLE)

    @property
    def size_bytes(self) -> int:
        """Storage size, used by the memory and communication models."""
        if self is ScalarType.DOUBLE:
            return 8
        return 4

    def join(self, other: "ScalarType") -> "ScalarType":
        """Usual arithmetic conversion: the wider numeric type wins."""
        if self is other:
            return self
        if ScalarType.LOGICAL in (self, other):
            raise TypeError_(f"no numeric join of {self.value} and {other.value}")
        order = [ScalarType.INTEGER, ScalarType.REAL, ScalarType.DOUBLE]
        return order[max(order.index(self), order.index(other))]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ArrayType:
    """An array of scalars with per-dimension extents.

    Extents are stored as *source strings* (e.g. ``"n"`` or ``"100"``)
    because they may be symbolic; the symbol table resolves them to
    expressions when needed.
    """

    element: ScalarType
    dims: tuple[str, ...] = field(default_factory=tuple)

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def size_bytes_per_element(self) -> int:
        return self.element.size_bytes

    def __str__(self) -> str:
        if not self.dims:
            return str(self.element)
        return f"{self.element}({', '.join(self.dims)})"
