"""Mini-Fortran IR: the language substrate of the predictor.

The paper's framework operates on HPF/Fortran-90 programs inside the
PTRAN II compiler; this package provides the equivalent program
representation -- a small Fortran dialect with ``DO`` loops, ``IF``
statements, typed scalars and arrays -- plus a parser, printer,
builder API, symbol table, and traversal utilities.
"""

from .digest import node_digest, program_digest, source_digest, stmts_digest
from .lexer import LexError, Token, TokenKind, tokenize
from .nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    Decl,
    Do,
    Expr,
    FuncCall,
    If,
    IntConst,
    Program,
    RealConst,
    Stmt,
    UnOp,
    VarRef,
)
from .parser import ParseError, parse_expression, parse_fragment, parse_program
from .printer import print_expr, print_program, print_stmt, print_stmts
from .symtab import SymbolTable
from .types import ArrayType, ScalarType, TypeError_
from .visitor import (
    map_exprs,
    map_stmts,
    rename_index,
    substitute_var,
    walk_exprs,
    walk_stmts,
)

__all__ = [
    "ArrayRef", "ArrayType", "Assign", "BinOp", "CallStmt", "Decl", "Do",
    "Expr", "FuncCall", "If", "IntConst", "LexError", "ParseError",
    "Program", "RealConst", "ScalarType", "Stmt", "SymbolTable", "Token",
    "TokenKind", "TypeError_", "UnOp", "VarRef",
    "map_exprs", "map_stmts", "node_digest", "parse_expression",
    "parse_fragment", "parse_program", "print_expr", "print_program",
    "print_stmt", "print_stmts", "program_digest", "rename_index",
    "source_digest", "stmts_digest", "substitute_var", "tokenize",
    "walk_exprs", "walk_stmts",
]
