"""Width-sweep evaluation: one program across a machine-family ladder.

Answers "how does this loop scale from 2-wide to 8-wide?" in one call,
for roughly the cost of a couple of single predictions rather than one
per width.  Every family member shares the base machine's cost table
and atomic mapping (:func:`repro.machine.family.family_machine`), so
the ladder shares almost everything:

* the program is parsed and **translated once** -- a memoizing
  translator facade replays width-invariant instruction streams to
  every width's aggregator (fresh stream copies per width: the loop
  aggregator appends overhead instructions in place);
* stream *preparation* (iterative/invariant splits, unroll
  replication, the synthetic bounds blocks) is computed once and
  shared, so later widths reach the placement memo with pre-digested
  streams -- placement becomes a dict probe;
* placements for widths beyond the first are pre-warmed with a
  **single batched arena placement** per width
  (:func:`repro.cost.arena.place_batch`);
* widths whose scaled unit configurations coincide (placement is
  dispatch-width-blind) share one aggregation outright.

Per width, the placement-based cycle count is combined with the Charm
mechanistic in-order model (:mod:`repro.machine.family`):

    T = max(placement, N/W) + pmisses

The placement covers unit contention and dependence stalls but not
the fetch bound ``N/W``, so the max of the two is the base term;
optional branch-miss / cache-miss rates add the probabilistic penalty
terms.  The *saturation width* is the smallest width whose cycles are
within 1% of the ladder's best.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from .aggregate.aggregator import CostAggregator
from .cost.columnar import compile_stream
from .cost.costblock import CostBlock
from .cost.estimator import BlockCost, StraightLineEstimator
from .cost.overlap import steady_state_cycles
from .cost.placement import DEFAULT_FOCUS_SPAN, place_stream
from .ir.nodes import Assign, Program, VarRef
from .ir.symtab import SymbolTable
from .machine.family import family_machine, family_width_ladder, \
    mechanistic_cycles
from .machine.machine import Machine
from .obs import trace_span
from .symbolic.expr import PerfExpr
from .translate.backend_opts import AGGRESSIVE_BACKEND, BackendFlags
from .translate.stream import Instr, InstrStream, reindex
from .translate.translator import BlockInfo

__all__ = ["SweepPoint", "SweepOutcome", "sweep_program", "sweep_stats"]

#: Process-local sweep telemetry, exported as ``repro_sweep_*`` gauges.
_STATS = {"sweeps": 0, "widths": 0, "shared_translations": 0,
          "batched_streams": 0, "symbolic_hits": 0}


def sweep_stats() -> dict[str, int]:
    """Cumulative sweep counters for this process."""
    return dict(_STATS)


@dataclass(frozen=True)
class SweepPoint:
    """One width's verdict."""

    width: int
    cycles: float
    ipc: float
    fingerprint: str
    placement_cycles: float
    penalty_cycles: float


@dataclass(frozen=True)
class SweepOutcome:
    """The full ladder plus its summary statistics."""

    machine: str
    widths: tuple[int, ...]
    points: tuple[SweepPoint, ...]
    saturation_width: int
    instructions: float
    shared_translations: int
    batched_streams: int


class _SharedTranslation:
    """Replays width-invariant translations to every family member.

    Family machines share the cost table, atomic mapping, FMA support,
    and register counts, so translation output is identical across the
    ladder.  The facade memoizes by statement identity (the same
    parsed ``Program`` objects are walked for every width).  Streams
    are handed out as *fresh copies*: the loop aggregator appends
    loop-overhead instructions to the block stream it receives, so
    sharing one stream object across widths would corrupt the memo.
    """

    def __init__(self, translator):
        self._translator = translator
        self._memo: dict = {}
        self.hits = 0

    def _cached(self, key, build) -> BlockInfo:
        info = self._memo.get(key)
        if info is None:
            info = build()
            self._memo[key] = info
        else:
            self.hits += 1
        stream = InstrStream(list(info.stream.instrs),
                             info.stream.machine_name, info.stream.label)
        return BlockInfo(
            stream=stream,
            reductions=list(info.reductions),
            carried_latency=info.carried_latency,
            has_carried_chain=info.has_carried_chain,
            spills=info.spills,
            external_calls=list(info.external_calls),
        )

    def translate_block(self, stmts, loop_indices=(), label=""):
        key = ("block", tuple(id(s) for s in stmts), tuple(loop_indices))
        return self._cached(key, lambda: self._translator.translate_block(
            stmts, loop_indices, label))

    def translate_condition(self, cond, loop_indices=(), label="cond"):
        key = ("cond", id(cond), tuple(loop_indices))
        return self._cached(key, lambda: self._translator.translate_condition(
            cond, loop_indices, label))

    def loop_overhead(self, label="loop-overhead"):
        return self._cached(("overhead",),
                            lambda: self._translator.loop_overhead(label))


class _SweepEstimator(StraightLineEstimator):
    """Estimator whose stream preparation is shared across the ladder.

    The iterative/invariant splits and unroll replications a
    :class:`StraightLineEstimator` would rebuild per call are computed
    once per sweep, wrapped in :class:`InstrStream` so their placement
    digests are hashed once, and reused by every width -- later widths
    reach the placement memo as pure dict probes.
    """

    def __init__(self, machine: Machine, focus_span: int, parts: dict):
        super().__init__(machine, focus_span)
        #: (digest, role) -> prepared InstrStream, shared per sweep.
        self._parts = parts

    def prepared(self) -> list[InstrStream]:
        return [stream for stream in self._parts.values() if len(stream)]

    def _prepare(self, key, build) -> InstrStream:
        stream = self._parts.get(key)
        if stream is None:
            stream = InstrStream(build())
            self._parts[key] = stream
        return stream

    def estimate(self, stream: InstrStream) -> BlockCost:
        digest = stream.digest()
        iterative = self._prepare(
            (digest, "iter"),
            lambda: reindex([i for i in stream if not i.one_time]))
        invariant = self._prepare(
            (digest, "inv"),
            lambda: reindex([i for i in stream if i.one_time]))
        placed = place_stream(self.machine, iterative, self.focus_span)
        placed_inv = place_stream(self.machine, invariant, self.focus_span)
        return BlockCost(
            cycles=placed.cycles,
            one_time_cycles=placed_inv.cycles,
            steady_cycles=steady_state_cycles(placed.block),
            block=placed.block,
            one_time_block=placed_inv.block,
            placed=placed,
        )

    def estimate_unrolled(self, stream: InstrStream, factor: int) -> BlockCost:
        if factor < 1:
            raise ValueError("unroll factor must be >= 1")
        replicated = self._prepare(
            (stream.digest(), factor), lambda: _replicate(stream, factor))
        placed = place_stream(self.machine, replicated, self.focus_span)
        return BlockCost(
            cycles=placed.cycles,
            one_time_cycles=0,
            steady_cycles=steady_state_cycles(placed.block),
            block=placed.block,
            one_time_block=CostBlock.empty(),
            placed=placed,
        )


def _replicate(stream: InstrStream, factor: int) -> list[Instr]:
    """The estimator's repeated-dropping stream for ``factor`` copies."""
    iterative = [i for i in stream if not i.one_time]
    replicated: list[Instr] = []
    base = 0
    for _ in range(factor):
        for instr in reindex(iterative):
            replicated.append(Instr(
                index=base + instr.index,
                atomic=instr.atomic,
                deps=tuple(base + d for d in instr.deps),
                tag=instr.tag,
            ))
        base += len(iterative)
    return replicated


class _SweepAggregator(CostAggregator):
    """Aggregator whose synthetic IR nodes are shared across widths.

    ``bounds_cost`` builds fresh synthetic assignments per call; the
    shared-translation facade keys on statement identity, so without
    this cache every width would re-translate every loop's bounds.
    """

    def __init__(self, machine, symtab, flags, focus_span, bounds_memo):
        super().__init__(machine, symtab, flags, focus_span=focus_span)
        self._bounds_memo = bounds_memo

    def bounds_cost(self, loop) -> PerfExpr:
        synthetic = self._bounds_memo.get(id(loop))
        if synthetic is None:
            synthetic = tuple(
                Assign(VarRef(f"__bound{i}"), expr)
                for i, expr in enumerate((loop.lb, loop.ub, loop.step))
            )
            self._bounds_memo[id(loop)] = synthetic
        info = self.translator.translate_block(synthetic, ())
        cost = self.estimator.estimate(info.stream)
        return PerfExpr.const(cost.cycles + cost.one_time_cycles)


class _InstrCountEstimator:
    """Drop-in estimator whose "cycles" are instruction counts.

    Aggregating with it yields the symbolic instruction count ``N`` of
    the mechanistic model's ``N/W`` term (loop overhead included).
    """

    def __init__(self, machine: Machine, focus_span: int = 0):
        self.machine = machine
        self.focus_span = focus_span

    def estimate(self, stream: InstrStream) -> BlockCost:
        iterative = len([i for i in stream if not i.one_time])
        invariant = len(stream) - iterative
        return BlockCost(
            cycles=iterative,
            one_time_cycles=invariant,
            steady_cycles=iterative,
            block=CostBlock.empty(),
            one_time_block=CostBlock.empty(),
            placed=None,
        )

    def estimate_unrolled(self, stream: InstrStream, factor: int) -> BlockCost:
        base = self.estimate(stream)
        return BlockCost(
            cycles=base.cycles * factor,
            one_time_cycles=0,
            steady_cycles=base.cycles * factor,
            block=CostBlock.empty(),
            one_time_block=CostBlock.empty(),
            placed=None,
        )

    def recommend_unroll(self, stream, candidates=(1, 2, 4, 8)) -> int:
        return 1


@dataclass(frozen=True)
class _SymbolicSweep:
    """The binding-independent half of a sweep.

    Everything here depends only on the program's *structure*, the
    base machine's cost table, and the ladder -- never on bindings or
    miss rates -- so callers that present a content key (the service
    passes the program digest) can reuse it across requests and pay
    only two polynomial evaluations per width.
    """

    count_expr: PerfExpr
    placement_exprs: tuple[PerfExpr, ...]
    fingerprints: tuple[str, ...]
    shared_translations: int
    batched_streams: int


#: (cache_key, id(base), ladder, flags, focus_span) -> (base, symbolic).
#: The base machine rides in the value so a recycled id() after a
#: recalibration (new table object, same name) can never serve stale.
_SYMBOLIC_MEMO: dict = {}
_SYMBOLIC_MEMO_CAP = 128


def _build_symbolic(program, members, symtab, flags,
                    focus_span) -> _SymbolicSweep:
    """One shared-translation pass over the ladder, kept symbolic."""
    shared = _SharedTranslation(
        CostAggregator(members[0], symtab, flags,
                       focus_span=focus_span).translator)
    parts: dict = {}
    bounds_memo: dict = {}

    # Symbolic instruction count N, aggregated once with the counting
    # estimator (the stub never places anything); shares the facade.
    count_agg = _SweepAggregator(members[0], symtab, flags, focus_span,
                                 bounds_memo)
    count_agg.translator = shared
    count_agg.estimator = _InstrCountEstimator(members[0])
    count_expr = count_agg.cost_program(program)

    # Placement is dispatch-width-blind, so widths whose scaled unit
    # configurations coincide share one symbolic aggregation.
    exprs_by_units: dict[tuple, PerfExpr] = {}
    batched = 0
    placement_exprs: list[PerfExpr] = []
    for position, member in enumerate(members):
        signature = tuple((unit.kind, unit.count) for unit in member.units)
        expr = exprs_by_units.get(signature)
        if expr is None:
            with trace_span("sweep.width") as span:
                if position and parts:
                    # One batched arena placement pre-warms the memo
                    # for this width; aggregation then replays shared,
                    # pre-digested streams as dict probes.
                    from .cost.arena import place_batch

                    prepared = [s for s in parts.values() if len(s)]
                    place_batch(member, prepared, focus_span)
                    batched += len(prepared)
                aggregator = _SweepAggregator(member, symtab, flags,
                                              focus_span, bounds_memo)
                aggregator.translator = shared
                aggregator.estimator = _SweepEstimator(member, focus_span,
                                                       parts)
                expr = aggregator.cost_program(program)
                exprs_by_units[signature] = expr
                if span.recording:
                    span.set(width=member.dispatch_width,
                             machine=member.name)
        placement_exprs.append(expr)

    _STATS["shared_translations"] += shared.hits
    _STATS["batched_streams"] += batched
    return _SymbolicSweep(
        count_expr=count_expr,
        placement_exprs=tuple(placement_exprs),
        fingerprints=tuple(m.fingerprint() for m in members),
        shared_translations=shared.hits,
        batched_streams=batched,
    )


def sweep_program(
    program: Program,
    *,
    machine: str | Machine = "power",
    widths: Sequence[int] | None = None,
    bindings: Mapping[str, Fraction] | None = None,
    branch_miss_rate: float = 0.0,
    cache_miss_rate: float = 0.0,
    flags: BackendFlags = AGGRESSIVE_BACKEND,
    focus_span: int = DEFAULT_FOCUS_SPAN,
    saturation_tolerance: float = 0.01,
    cache_key: str | None = None,
) -> SweepOutcome:
    """Evaluate ``program`` across a width ladder of ``machine``'s family.

    ``bindings`` must cover the program's free size variables (the
    per-width points are numeric); a fully constant program needs
    none.  Raises ``KeyError`` for missing bindings and ``ValueError``
    for bad widths/rates -- both client errors at the service layer.

    ``cache_key`` (a content digest of the program) lets repeat sweeps
    of the same program skip straight to evaluation: the symbolic half
    is memoized per (key, base machine identity, ladder, flags), so a
    new ``bindings`` or miss rate costs two polynomial evaluations per
    width instead of a translation-and-placement pass.
    """
    if not 0.0 <= branch_miss_rate <= 1.0:
        raise ValueError(f"branch_miss_rate must be in [0, 1], "
                         f"got {branch_miss_rate}")
    if not 0.0 <= cache_miss_rate <= 1.0:
        raise ValueError(f"cache_miss_rate must be in [0, 1], "
                         f"got {cache_miss_rate}")
    ladder = family_width_ladder(widths)
    bindings = dict(bindings or {})
    if isinstance(machine, Machine):
        base = machine
    else:
        from .machine.registry import cached_machine

        base = cached_machine(str(machine))
    members = [family_machine(width, base=base) for width in ladder]

    symbolic = None
    memo_key = None
    if cache_key is not None:
        memo_key = (cache_key, id(base), ladder, flags, focus_span)
        entry = _SYMBOLIC_MEMO.get(memo_key)
        if entry is not None and entry[0] is base:
            symbolic = entry[1]
            _STATS["symbolic_hits"] += 1
    if symbolic is None:
        symtab = SymbolTable.from_program(program)
        symbolic = _build_symbolic(program, members, symtab, flags,
                                   focus_span)
        if memo_key is not None:
            if len(_SYMBOLIC_MEMO) >= _SYMBOLIC_MEMO_CAP:
                _SYMBOLIC_MEMO.pop(next(iter(_SYMBOLIC_MEMO)))
            _SYMBOLIC_MEMO[memo_key] = (base, symbolic)

    instructions = float(symbolic.count_expr.evaluate(bindings))
    points = []
    for member, width, expr, fingerprint in zip(
            members, ladder, symbolic.placement_exprs,
            symbolic.fingerprints):
        place_cycles = float(expr.evaluate(bindings))
        base_cycles = max(place_cycles, instructions / width)
        terms = mechanistic_cycles(
            member, instructions, base_cycles,
            branch_miss_rate=branch_miss_rate,
            cache_miss_rate=cache_miss_rate,
        )
        total = terms.total
        points.append(SweepPoint(
            width=width,
            cycles=round(total, 4),
            ipc=round(instructions / total, 4) if total else 0.0,
            fingerprint=fingerprint,
            placement_cycles=place_cycles,
            penalty_cycles=round(terms.branch_penalty + terms.miss_penalty, 4),
        ))

    best = min(point.cycles for point in points)
    saturation = next(
        point.width for point in points
        if point.cycles <= best * (1.0 + saturation_tolerance))
    _STATS["sweeps"] += 1
    _STATS["widths"] += len(ladder)
    return SweepOutcome(
        machine=base.name,
        widths=ladder,
        points=tuple(points),
        saturation_width=saturation,
        instructions=instructions,
        shared_translations=symbolic.shared_translations,
        batched_streams=symbolic.batched_streams,
    )
