"""DO-loop aggregation (paper section 2.4.1).

``C(do k = lb, ub, step {B}) = C(lb) + C(ub) + C(step) + Σ_k C(B_k)``

with the superscalar refinements of section 2.4.2:

* the innermost body is costed by the Tetris model *including* the loop
  bookkeeping (increment, compare, branch), which the bins overlap
  naturally;
* iterations overlap by cost-block shape matching unless a loop-carried
  chain forbids it; a recognized reduction bounds the overlap by the
  recurrence latency instead of serializing;
* one-time (hoisted) work and the pipeline ramp-up are charged once;
* a body cost that depends on the loop variable is summed in closed
  form (Faulhaber), keeping triangular nests exact;
* a single loop-index conditional splits the iteration space exactly
  (section 3.3.2) instead of introducing a probability unknown.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..analysis.loops import expression_poly, trip_count
from ..ir.nodes import Assign, CallStmt, Do, If
from ..symbolic.expr import PerfExpr, Unknown
from ..symbolic.poly import Poly, PolyError
from ..symbolic.summation import sum_poly
from .cond_cost import index_split

if TYPE_CHECKING:  # pragma: no cover
    from .aggregator import CostAggregator

__all__ = ["aggregate_loop"]


def aggregate_loop(
    agg: "CostAggregator", loop: Do, enclosing: tuple[str, ...]
) -> PerfExpr:
    """Symbolic cost of one DO loop."""
    inner_indices = enclosing + (loop.var,)
    bounds_cost = agg.bounds_cost(loop)
    trips = trip_count(loop)

    if all(isinstance(s, (Assign, CallStmt)) for s in loop.body):
        body_total = _innermost_block_cost(agg, loop, inner_indices, trips)
    elif _is_single_index_conditional(loop):
        split_cost = _index_split_cost(agg, loop, inner_indices, trips)
        body_total = (
            split_cost
            if split_cost is not None
            else _compound_cost(agg, loop, inner_indices, trips)
        )
    else:
        body_total = _compound_cost(agg, loop, inner_indices, trips)

    return bounds_cost + body_total


def _innermost_block_cost(
    agg: "CostAggregator",
    loop: Do,
    inner_indices: tuple[str, ...],
    trips: PerfExpr,
) -> PerfExpr:
    """Straight-line body: Tetris placement with loop overhead merged in."""
    info = agg.translator.translate_block(
        loop.body, loop_indices=inner_indices, label=f"body of do {loop.var}"
    )
    stream = info.stream
    overhead = agg.translator.loop_overhead()
    base = len(stream)
    for instr in overhead.stream:
        stream.append(
            instr.atomic,
            tuple(d + base for d in instr.deps),
            tag=instr.tag,
        )
    cost = agg.estimator.estimate(stream)
    if agg.flags.overlap_iterations and not info.has_carried_chain:
        # Steady-state per-iteration cost by the paper's second unroll-
        # estimation method: drop the body into the bins several times
        # and take the marginal cost of the later copies.  (The shape-
        # matching estimate, cost.steady_cycles, is available but
        # coarser: it only sees first/last bin profiles.)
        few = agg.estimator.estimate_unrolled(stream, 4).cycles
        many = agg.estimator.estimate_unrolled(stream, 8).cycles
        marginal = -(-(many - few) // 4)  # ceil division
        steady = max(marginal, info.carried_latency, 1)
        startup = max(0, cost.cycles - steady)
    else:
        steady = max(cost.cycles, 1)
        startup = 0
    per_iter = PerfExpr.const(steady)
    fixed = PerfExpr.const(cost.one_time_cycles + startup)
    total = trips * per_iter + fixed
    total = total + agg.library_cost_of(info.external_calls)
    return total


def _is_single_index_conditional(loop: Do) -> bool:
    return len(loop.body) == 1 and isinstance(loop.body[0], If)


def _index_split_cost(
    agg: "CostAggregator",
    loop: Do,
    inner_indices: tuple[str, ...],
    trips: PerfExpr,
) -> PerfExpr | None:
    """Exact split for ``do i ... if (i REL k) Bt else Bf``."""
    stmt = loop.body[0]
    assert isinstance(stmt, If)
    split = index_split(stmt.cond, loop)
    if split is None:
        return None
    cost_true = agg.cost_stmts(stmt.then_body, inner_indices)
    cost_false = agg.cost_stmts(stmt.else_body, inner_indices)
    if loop.var in (cost_true.poly.variables() | cost_false.poly.variables()):
        return None  # branch bodies vary with the index: general path
    cond_cycles = agg.condition_cycles(stmt.cond, inner_indices)
    overhead = agg.overhead_cycles()

    true_count = PerfExpr(
        split.true_count,
        {name: u.default_interval() for name, u in split.unknowns.items()},
        split.unknowns,
    )
    false_count = trips - true_count
    per_iter_fixed = PerfExpr.const(cond_cycles + overhead)
    return (
        true_count * cost_true
        + false_count * cost_false
        + trips * per_iter_fixed
    )


def _compound_cost(
    agg: "CostAggregator",
    loop: Do,
    inner_indices: tuple[str, ...],
    trips: PerfExpr,
) -> PerfExpr:
    """General body: recurse, then multiply or sum in closed form."""
    body_cost = agg.cost_stmts(loop.body, inner_indices)
    per_iter = body_cost + PerfExpr.const(agg.overhead_cycles())
    if loop.var not in per_iter.poly.variables():
        return trips * per_iter
    lb_poly, lb_unknowns = expression_poly(loop.lb)
    ub_poly, ub_unknowns = expression_poly(loop.ub)
    step_poly, step_unknowns = expression_poly(loop.step)
    try:
        summed = sum_poly(per_iter.poly, loop.var, lb_poly, ub_poly, step_poly)
    except PolyError:
        # Laurent in the index or non-monomial step: approximate the
        # index by a representative value -- an explicit, local guess.
        # Laurent terms need an invertible (single-term) stand-in, so
        # fall back from the exact midpoint to ub/2, then to a fresh
        # opaque unknown standing for "the typical index value".
        from fractions import Fraction

        summed = None
        for stand_in in (
            (lb_poly + ub_poly) * Fraction(1, 2),
            ub_poly * Fraction(1, 2),
            Poly.var(f"avg_{loop.var}"),
        ):
            try:
                summed = per_iter.poly.substitute(
                    {loop.var: stand_in}
                ) * trips.poly
                break
            except PolyError:
                continue
        if summed is None:  # pragma: no cover - the opaque always works
            raise
    unknowns: dict[str, Unknown] = {
        **lb_unknowns, **ub_unknowns, **step_unknowns, **per_iter.unknowns,
    }
    unknowns.pop(loop.var, None)
    bounds = {
        name: per_iter.bounds.get(name, unknown.default_interval())
        for name, unknown in unknowns.items()
    }
    bounds.update({k: v for k, v in trips.bounds.items() if k in unknowns})
    live = summed.variables()
    return PerfExpr(
        summed,
        {k: v for k, v in bounds.items() if k in live},
        {k: v for k, v in unknowns.items() if k in live},
    )
