"""Procedure and library routine cost interface (paper section 3.5).

"Table look-up of the performance expression can be used to find the
cost of external function calls or library routines. ...  The
performance expressions are parameterized with the formal parameters.
Actual parameters are substituted at the call site to get more specific
performance expressions."

A routine missing from the table costs a fresh symbolic unknown
``cost_<name>`` (plus the call overhead the translator already
charged), preserving the framework's never-guess discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.loops import expression_poly
from ..ir.nodes import Expr
from ..symbolic.expr import PerfExpr, Unknown, UnknownKind
from ..symbolic.intervals import Interval
from ..symbolic.poly import Poly

__all__ = ["LibraryEntry", "LibraryCostTable"]


@dataclass(frozen=True)
class LibraryEntry:
    """A routine's cost, parameterized by its formal parameters."""

    name: str
    formals: tuple[str, ...]
    cost: PerfExpr
    source: str = "table"  # "table", "training-set", "analyzed"


@dataclass
class LibraryCostTable:
    """External-library cost expressions, keyed by routine name.

    Entries come from three sources the paper names (section 3.5):
    hand-written tables, training-set measurements, and -- when source
    is available -- direct analysis via :meth:`define_from_source`.
    """

    entries: dict[str, LibraryEntry] = field(default_factory=dict)

    def define(
        self,
        name: str,
        formals: tuple[str, ...],
        cost: PerfExpr,
        source: str = "table",
    ) -> None:
        extra = cost.variables() - set(formals)
        machine_vars = {
            v for v in extra
            if cost.unknowns.get(v, None) is not None
            and cost.unknowns[v].kind is UnknownKind.MACHINE
        }
        if extra - machine_vars:
            raise ValueError(
                f"cost of {name} uses variables {sorted(extra - machine_vars)} "
                f"that are not formals"
            )
        self.entries[name] = LibraryEntry(name, formals, cost, source)

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def define_from_source(self, routine, machine, **aggregator_kwargs) -> LibraryEntry:
        """Analyze a ``subroutine`` unit and store its cost expression.

        "If source code is available, the performance expressions of
        the external library routines can be computed and stored in an
        external library cost table.  The performance expressions are
        parameterized with the formal parameters." (section 3.5)
        """
        from ..ir.nodes import Program
        from ..ir.symtab import SymbolTable

        if not isinstance(routine, Program):
            raise TypeError("define_from_source expects a parsed routine")
        if not routine.params:
            raise ValueError(
                f"{routine.name} has no formal parameters; parse it as a "
                f"subroutine (e.g. `subroutine {routine.name}(n)`)"
            )
        from .aggregator import CostAggregator

        aggregator = CostAggregator(
            machine, SymbolTable.from_program(routine), **aggregator_kwargs
        )
        cost = aggregator.cost_program(routine)
        stray = cost.variables() - set(routine.params)
        if stray:
            # Non-formal unknowns (e.g. inner conditionals) stay in the
            # expression; they are legitimate machine/probability
            # parameters of the routine's cost.
            pass
        entry = LibraryEntry(
            routine.name, routine.params, cost, source="analyzed"
        )
        self.entries[routine.name] = entry
        return entry

    def cost_of_call(self, name: str, args: tuple[Expr, ...]) -> PerfExpr:
        """Cost of one call with actual arguments substituted.

        Unknown routines return the symbolic unknown ``cost_<name>``
        with a non-negative bound -- delayed, not guessed.
        """
        entry = self.entries.get(name)
        if entry is None:
            return PerfExpr.unknown(
                f"cost_{name}",
                UnknownKind.PARAMETER,
                Interval.nonnegative(),
                description=f"unmodeled external routine {name}",
            )
        bindings: dict[str, Poly] = {}
        unknowns: dict[str, Unknown] = dict(entry.cost.unknowns)
        bounds = dict(entry.cost.bounds)
        for formal, actual in zip(entry.formals, args):
            poly, new_unknowns = expression_poly(actual)
            bindings[formal] = poly
            unknowns.update(new_unknowns)
        substituted = entry.cost.substitute(bindings)
        merged_bounds = {**{
            name: u.default_interval() for name, u in unknowns.items()
        }, **bounds, **substituted.bounds}
        merged_bounds = {
            k: v for k, v in merged_bounds.items()
            if k in substituted.poly.variables()
        }
        merged_unknowns = {
            k: v for k, v in unknowns.items()
            if k in substituted.poly.variables()
        }
        return PerfExpr(substituted.poly, merged_bounds, merged_unknowns)
