"""Symbolic cost aggregation of compound statements (paper section 2.4)."""

from .aggregator import CostAggregator, aggregate_program
from .cond_cost import IndexSplit, index_split, nearly_equal, probability_blend
from .explain import RegionReport, explain_program, render_report
from .loop_cost import aggregate_loop
from .procedures import LibraryCostTable, LibraryEntry

__all__ = [
    "CostAggregator", "IndexSplit", "LibraryCostTable", "LibraryEntry",
    "RegionReport", "explain_program", "render_report",
    "aggregate_loop", "aggregate_program", "index_split", "nearly_equal",
    "probability_blend",
]
