"""Conditional-statement aggregation (paper sections 2.4.1 and 3.3.2).

``C(if (cond) Bt else Bf) = C(cond) + pt·C(Bt) + pf·C(Bf) + c_br``

with these refinements from section 3.3.2:

* if the two branch costs are very close, the reaching probability is
  ignored and the conditional simplifies to ``C(cond) + max(Ct, Cf)``;
* a conditional on the loop index with a recognizable shape
  (``if (i .le. k)``) splits the iteration space *exactly*:
  ``k`` iterations take the true branch and ``n - k`` the false one --
  no probability unknown at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..analysis.loops import expression_poly
from ..ir.nodes import BinOp, Do, Expr, VarRef
from ..symbolic.expr import PerfExpr, Unknown, UnknownKind
from ..symbolic.intervals import Interval
from ..symbolic.poly import Poly

__all__ = ["IndexSplit", "index_split", "probability_blend", "nearly_equal"]

#: Branch costs within this relative distance are considered equal.
_NEAR_EQUAL_REL = Fraction(1, 10)
#: ... or within this absolute number of cycles.
_NEAR_EQUAL_ABS = 2


@dataclass(frozen=True)
class IndexSplit:
    """Exact iteration-space split of a loop-index conditional.

    ``true_count`` is the symbolic number of iterations taking the true
    branch; the false branch gets ``trips - true_count``.
    """

    true_count: Poly
    unknowns: dict[str, Unknown]


def index_split(cond: Expr, loop: Do) -> IndexSplit | None:
    """Recognize ``index REL expr`` over a unit-step loop.

    Returns the exact true-iteration count, e.g. for
    ``do i = lb, ub; if (i .le. k)`` the count is ``k - lb + 1``.
    The split expression is *unclamped* (valid when lb <= k <= ub, the
    interesting regime); bounds on the unknowns keep sign reasoning
    honest.  None if the condition does not match or the step is not 1.
    """
    from ..ir.nodes import IntConst

    if loop.step != IntConst(1):
        return None
    if not isinstance(cond, BinOp):
        return None
    op, left, right = cond.op, cond.left, cond.right
    if isinstance(right, VarRef) and right.name == loop.var:
        # Mirror `k .ge. i` to `i .le. k` etc.
        mirror = {".lt.": ".gt.", ".le.": ".ge.", ".gt.": ".lt.",
                  ".ge.": ".le.", ".eq.": ".eq.", ".ne.": ".ne."}
        op, left, right = mirror.get(op, op), right, left
    if not (isinstance(left, VarRef) and left.name == loop.var):
        return None
    if any(
        isinstance(node, VarRef) and node.name == loop.var
        for node in _walk(right)
    ):
        return None
    k_poly, k_unknowns = expression_poly(right)
    lb_poly, lb_unknowns = expression_poly(loop.lb)
    ub_poly, ub_unknowns = expression_poly(loop.ub)
    unknowns = {**k_unknowns, **lb_unknowns, **ub_unknowns}
    if op == ".le.":
        count = k_poly - lb_poly + 1
    elif op == ".lt.":
        count = k_poly - lb_poly
    elif op == ".ge.":
        count = ub_poly - k_poly + 1
    elif op == ".gt.":
        count = ub_poly - k_poly
    elif op == ".eq.":
        count = Poly.one()
    elif op == ".ne.":
        count = ub_poly - lb_poly  # trips - 1
    else:
        return None
    return IndexSplit(count, unknowns)


def _walk(expr: Expr):
    from ..ir.visitor import walk_exprs

    return walk_exprs(expr)


def nearly_equal(cost_true: PerfExpr, cost_false: PerfExpr) -> bool:
    """Section 3.3.2: may the reaching probability be ignored?

    True only for constant costs within the tolerance -- symbolic costs
    are kept exact.
    """
    if not (cost_true.is_constant() and cost_false.is_constant()):
        return False
    a = cost_true.constant_value()
    b = cost_false.constant_value()
    diff = abs(a - b)
    return diff <= _NEAR_EQUAL_ABS or diff <= _NEAR_EQUAL_REL * max(abs(a), abs(b))


def probability_blend(
    cost_true: PerfExpr,
    cost_false: PerfExpr,
    prob_name: str,
) -> PerfExpr:
    """``pt·Ct + (1 - pt)·Cf`` with ``pt`` a fresh [0,1] unknown."""
    pt = PerfExpr.unknown(
        prob_name,
        UnknownKind.BRANCH_PROB,
        Interval.probability(),
        description="reaching probability of the true branch",
    )
    pf = PerfExpr.const(1) - pt  # carries pt's bounds along
    return pt * cost_true + pf * cost_false
