"""The performance aggregation model (paper section 2.4).

``CostAggregator`` walks the IR, costs straight-line runs with the
Tetris estimator, and combines compound statements symbolically:
loops via the DO rule with closed-form summation, conditionals via
branch probabilities or exact index splits, calls via the library cost
table.  The result is a single :class:`~repro.symbolic.PerfExpr` -- the
paper's unified, comparable performance expression.
"""

from __future__ import annotations

from ..cost.estimator import StraightLineEstimator
from ..cost.placement import DEFAULT_FOCUS_SPAN
from ..ir.nodes import Assign, CallStmt, Do, Expr, If, Program, Stmt, VarRef
from ..ir.symtab import SymbolTable
from ..machine.machine import Machine
from ..obs import trace_span
from ..translate.backend_opts import AGGRESSIVE_BACKEND, BackendFlags
from ..translate.translator import Translator
from .cond_cost import nearly_equal, probability_blend
from .loop_cost import aggregate_loop
from .procedures import LibraryCostTable
from ..symbolic.expr import PerfExpr

__all__ = ["CostAggregator", "aggregate_program"]


class CostAggregator:
    """Symbolic cost aggregation for one machine + compiler combination.

    Parameters mirror the framework's tunables: ``flags`` are the
    back-end capability flags, ``focus_span`` the estimator's search
    window, ``library`` the external-routine cost table, and
    ``memory_model`` an optional :class:`~repro.memory.MemoryCostModel`
    whose per-loop cache costs are added when ``include_memory`` is set
    (Figure 7 excludes memory costs, so the default is off).
    """

    def __init__(
        self,
        machine: Machine,
        symtab: SymbolTable | None = None,
        flags: BackendFlags = AGGRESSIVE_BACKEND,
        focus_span: int = DEFAULT_FOCUS_SPAN,
        library: LibraryCostTable | None = None,
        memory_model=None,
        include_memory: bool = False,
    ):
        self.machine = machine
        self.symtab = symtab if symtab is not None else SymbolTable()
        self.flags = flags
        self.translator = Translator(machine, self.symtab, flags)
        self.estimator = StraightLineEstimator(machine, focus_span)
        self.library = library if library is not None else LibraryCostTable()
        self.memory_model = memory_model
        self.include_memory = include_memory
        self._prob_counter = 0
        self._overhead_cycles: int | None = None

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def cost_program(self, program: Program) -> PerfExpr:
        """Cost of a whole program unit."""
        with trace_span("aggregate.program") as span:
            total = self.cost_stmts(program.body, ())
            if span.recording:
                span.set(name=program.name, machine=self.machine.name,
                         statements=len(program.body), cost=str(total))
        return total

    def cost_stmts(self, stmts: tuple[Stmt, ...], enclosing: tuple[str, ...] = ()) -> PerfExpr:
        """Cost of a statement sequence: straight-line runs + compounds."""
        total = PerfExpr.zero()
        buffer: list[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, Assign):
                buffer.append(stmt)
                continue
            if isinstance(stmt, CallStmt):
                total = total + self._flush(buffer, enclosing)
                total = total + self.cost_call(stmt, enclosing)
                continue
            total = total + self._flush(buffer, enclosing)
            if isinstance(stmt, Do):
                total = total + self.cost_loop(stmt, enclosing)
            elif isinstance(stmt, If):
                total = total + self.cost_if(stmt, enclosing)
            else:
                raise TypeError(f"cannot aggregate statement {stmt!r}")
        total = total + self._flush(buffer, enclosing)
        return total

    def cost_loop(self, stmt: Do, enclosing: tuple[str, ...]) -> PerfExpr:
        """Cost of one DO loop (separate method so that the incremental
        predictor can memoize per-loop regions)."""
        with trace_span("aggregate.loop") as span:
            total = aggregate_loop(self, stmt, enclosing)
            if self.include_memory and self.memory_model is not None:
                total = total + self.memory_model.loop_cost(
                    stmt, self.symtab, enclosing
                )
            if span.recording:
                span.set(index=stmt.var, depth=len(enclosing))
        return total

    # ------------------------------------------------------------------
    # Straight-line runs
    # ------------------------------------------------------------------
    def _flush(self, buffer: list[Stmt], enclosing: tuple[str, ...]) -> PerfExpr:
        if not buffer:
            return PerfExpr.zero()
        stmts = tuple(buffer)
        buffer.clear()
        return self.cost_block(stmts, enclosing)

    def cost_block(
        self, stmts: tuple[Stmt, ...], enclosing: tuple[str, ...]
    ) -> PerfExpr:
        """Cost of one straight-line block outside any loop context.

        Inside loops, :func:`~repro.aggregate.loop_cost.aggregate_loop`
        takes the steady-state path instead; here a block executes once,
        so one-time and iterative parts are simply added.
        """
        info = self.translator.translate_block(stmts, enclosing)
        cost = self.estimator.estimate(info.stream)
        total = PerfExpr.const(cost.cycles + cost.one_time_cycles)
        return total + self.library_cost_of(info.external_calls)

    # ------------------------------------------------------------------
    # Conditionals
    # ------------------------------------------------------------------
    def cost_if(self, stmt: If, enclosing: tuple[str, ...]) -> PerfExpr:
        cond_cycles = self.condition_cycles(stmt.cond, enclosing)
        cost_true = self.cost_stmts(stmt.then_body, enclosing)
        cost_false = self.cost_stmts(stmt.else_body, enclosing)
        base = PerfExpr.const(cond_cycles)
        if nearly_equal(cost_true, cost_false):
            # Section 3.3.2: close branches need no probability.
            upper = max(cost_true.constant_value(), cost_false.constant_value())
            return base + PerfExpr.const(upper)
        self._prob_counter += 1
        blend = probability_blend(
            cost_true, cost_false, f"pt_{self._prob_counter}"
        )
        return base + blend

    def condition_cycles(self, cond: Expr, enclosing: tuple[str, ...]) -> int:
        """Cycles of evaluating a condition, compare and branch included.

        The Tetris placement decides how much of the branch cost is
        covered (the shape-matching branch optimization of section
        2.2.2): a branch dropping into an empty Branch-unit bin adds
        nothing to the makespan.
        """
        info = self.translator.translate_condition(cond, enclosing)
        cost = self.estimator.estimate(info.stream)
        cycles = cost.cycles + cost.one_time_cycles
        if self.flags.branch_optimize and len(info.stream) > 0:
            # The branch itself usually overlaps with surrounding work;
            # charge only the work above the bare branch instruction.
            bare = self.machine.atomic(
                info.stream.instrs[-1].atomic
            ).result_latency
            cycles = max(cycles - bare, 0)
        return cycles

    # ------------------------------------------------------------------
    # Calls and loop bookkeeping
    # ------------------------------------------------------------------
    def cost_call(self, stmt: CallStmt, enclosing: tuple[str, ...]) -> PerfExpr:
        if stmt.name == "return":
            return PerfExpr.zero()
        info = self.translator.translate_block((stmt,), enclosing)
        overhead = self.estimator.estimate(info.stream)
        body = self.library.cost_of_call(stmt.name, stmt.args)
        return PerfExpr.const(overhead.cycles + overhead.one_time_cycles) + body

    def library_cost_of(self, names: list[str]) -> PerfExpr:
        """Library body costs for external calls found inside expressions."""
        total = PerfExpr.zero()
        for name in names:
            total = total + self.library.cost_of_call(name, ())
        return total

    def overhead_cycles(self) -> int:
        """Standalone cost of the loop bookkeeping triple (cached)."""
        if self._overhead_cycles is None:
            info = self.translator.loop_overhead()
            cost = self.estimator.estimate(info.stream)
            self._overhead_cycles = cost.cycles
        return self._overhead_cycles

    def bounds_cost(self, loop: Do) -> PerfExpr:
        """C(lb) + C(ub) + C(step): evaluating the bounds once."""
        synthetic = tuple(
            Assign(VarRef(f"__bound{i}"), expr)
            for i, expr in enumerate((loop.lb, loop.ub, loop.step))
        )
        info = self.translator.translate_block(synthetic, ())
        cost = self.estimator.estimate(info.stream)
        return PerfExpr.const(cost.cycles + cost.one_time_cycles)


def aggregate_program(
    program: Program,
    machine: Machine,
    **kwargs,
) -> PerfExpr:
    """Convenience: build the aggregator from the program's own symbols."""
    symtab = SymbolTable.from_program(program)
    aggregator = CostAggregator(machine, symtab, **kwargs)
    return aggregator.cost_program(program)
