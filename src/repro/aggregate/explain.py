"""Structured cost breakdowns: *why* a program costs what it costs.

The aggregator returns a single performance expression; this module
re-walks the program and reports the contribution of every region --
per-loop steady-state cycles, one-time (hoisted) work, recurrence
latencies, trip-count expressions -- as a tree that renders to text.
Compiler writers debugging a prediction (and the examples in this
repository) read this instead of re-deriving the algebra by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.nodes import Assign, CallStmt, Do, If, Program, Stmt
from ..symbolic.expr import PerfExpr
from .aggregator import CostAggregator

__all__ = ["RegionReport", "explain_program", "render_report"]


@dataclass
class RegionReport:
    """Cost summary of one program region."""

    kind: str                 # "block" | "loop" | "if" | "call"
    label: str
    cost: PerfExpr
    details: dict[str, object] = field(default_factory=dict)
    children: list["RegionReport"] = field(default_factory=list)


def explain_program(program: Program, aggregator: CostAggregator) -> RegionReport:
    """Break the program's predicted cost down by region."""
    root = RegionReport(
        kind="program",
        label=program.name,
        cost=aggregator.cost_stmts(program.body, ()),
    )
    root.children = _explain_stmts(program.body, (), aggregator)
    return root


def _explain_stmts(
    stmts: tuple[Stmt, ...],
    enclosing: tuple[str, ...],
    agg: CostAggregator,
) -> list[RegionReport]:
    out: list[RegionReport] = []
    buffer: list[Stmt] = []

    def flush():
        if not buffer:
            return
        block = tuple(buffer)
        buffer.clear()
        cost = agg.cost_block(block, enclosing)
        out.append(RegionReport(
            kind="block",
            label=f"{len(block)} straight-line stmt(s)",
            cost=cost,
            details={"statements": len(block)},
        ))

    for stmt in stmts:
        if isinstance(stmt, Assign):
            buffer.append(stmt)
        elif isinstance(stmt, CallStmt):
            flush()
            out.append(RegionReport(
                kind="call",
                label=f"call {stmt.name}",
                cost=agg.cost_call(stmt, enclosing),
            ))
        elif isinstance(stmt, Do):
            flush()
            out.append(_explain_loop(stmt, enclosing, agg))
        elif isinstance(stmt, If):
            flush()
            report = RegionReport(
                kind="if",
                label=f"if ({stmt.cond})",
                cost=agg.cost_if(stmt, enclosing),
            )
            report.children = _explain_stmts(stmt.then_body, enclosing, agg)
            report.children += _explain_stmts(stmt.else_body, enclosing, agg)
            out.append(report)
    flush()
    return out


def _explain_loop(
    loop: Do, enclosing: tuple[str, ...], agg: CostAggregator
) -> RegionReport:
    from ..analysis.loops import trip_count

    inner = enclosing + (loop.var,)
    cost = agg.cost_loop(loop, enclosing)
    details: dict[str, object] = {"trip_count": str(trip_count(loop).poly)}
    if all(isinstance(s, (Assign, CallStmt)) for s in loop.body):
        info = agg.translator.translate_block(loop.body, inner)
        block_cost = agg.estimator.estimate(info.stream)
        details.update({
            "atomic_ops": len(info.stream),
            "one_time_cycles": block_cost.one_time_cycles,
            "first_iteration_cycles": block_cost.cycles,
            "carried_latency": info.carried_latency,
            "reductions": [r.target for r in info.reductions],
            "spills": info.spills,
        })
    report = RegionReport(
        kind="loop",
        label=f"do {loop.var} = {loop.lb}, {loop.ub}"
        + (f", {loop.step}" if str(loop.step) != "1" else ""),
        cost=cost,
        details=details,
    )
    if not all(isinstance(s, (Assign, CallStmt)) for s in loop.body):
        report.children = _explain_stmts(loop.body, inner, agg)
    return report


def render_report(report: RegionReport, indent: int = 0) -> str:
    """Render the region tree as readable text."""
    pad = "  " * indent
    lines = [f"{pad}[{report.kind}] {report.label}: {report.cost} cycles"]
    for key, value in sorted(report.details.items()):
        if value in ([], 0, "0"):
            continue
        lines.append(f"{pad}    {key} = {value}")
    for child in report.children:
        lines.append(render_report(child, indent + 1))
    return "\n".join(lines)
