"""Interval arithmetic and bound propagation for performance expressions.

The paper (section 3.1) decides the sign of a performance difference
"based on bounds on the variables" whenever possible, so that the
compiler "may not have to guess values of the unknowns".  This module
provides closed rational intervals (endpoints may be +/- infinity),
their arithmetic, and naive interval evaluation of polynomials over a
box of variable bounds.

Interval arithmetic is conservative: the computed enclosure always
contains the true range, so a definite sign verdict is sound, while an
indefinite one merely means "the bounds were not enough" -- exactly the
situation in which the paper falls back to run-time tests or guesses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from numbers import Rational
from typing import Mapping, Union

from .poly import Poly, PolyError

__all__ = ["Interval", "Bounds", "bound_poly"]

Endpoint = Union[Fraction, float]  # float only for +/- inf

_NEG_INF = float("-inf")
_POS_INF = float("inf")


def _as_endpoint(value: Rational | float) -> Endpoint:
    if isinstance(value, float):
        if math.isinf(value):
            return value
        if math.isnan(value):
            raise ValueError("NaN endpoint")
        return Fraction(value)
    return Fraction(value)


@dataclass(frozen=True)
class Interval:
    """A closed interval [lo, hi]; endpoints rational or infinite."""

    lo: Endpoint
    hi: Endpoint

    def __post_init__(self) -> None:
        object.__setattr__(self, "lo", _as_endpoint(self.lo))
        object.__setattr__(self, "hi", _as_endpoint(self.hi))
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ---------------------------------------------------
    @classmethod
    def point(cls, value: Rational) -> "Interval":
        frac = Fraction(value)
        return cls(frac, frac)

    @classmethod
    def unbounded(cls) -> "Interval":
        return cls(_NEG_INF, _POS_INF)

    @classmethod
    def nonnegative(cls) -> "Interval":
        return cls(Fraction(0), _POS_INF)

    @classmethod
    def probability(cls) -> "Interval":
        """The [0, 1] interval used for branch probabilities."""
        return cls(Fraction(0), Fraction(1))

    # -- predicates ------------------------------------------------------
    def is_point(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: Rational | float) -> bool:
        return self.lo <= value <= self.hi

    def strictly_positive(self) -> bool:
        return self.lo > 0

    def strictly_negative(self) -> bool:
        return self.hi < 0

    def nonneg(self) -> bool:
        return self.lo >= 0

    def nonpos(self) -> bool:
        return self.hi <= 0

    def width(self) -> Endpoint:
        if isinstance(self.lo, float) or isinstance(self.hi, float):
            return _POS_INF
        return self.hi - self.lo

    def midpoint(self) -> Fraction:
        if isinstance(self.lo, float) or isinstance(self.hi, float):
            raise ValueError("midpoint of an unbounded interval")
        return (self.lo + self.hi) / 2

    def intersect(self, other: "Interval") -> "Interval | None":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(_add(self.lo, other.lo), _add(self.hi, other.hi))

    def __neg__(self) -> "Interval":
        return Interval(_neg(self.hi), _neg(self.lo))

    def __sub__(self, other: "Interval") -> "Interval":
        return self + (-other)

    def __mul__(self, other: "Interval") -> "Interval":
        products = [
            _mul(self.lo, other.lo),
            _mul(self.lo, other.hi),
            _mul(self.hi, other.lo),
            _mul(self.hi, other.hi),
        ]
        return Interval(min(products), max(products))

    def scale(self, factor: Rational) -> "Interval":
        frac = Fraction(factor)
        if frac >= 0:
            return Interval(_mul(self.lo, frac), _mul(self.hi, frac))
        return Interval(_mul(self.hi, frac), _mul(self.lo, frac))

    def power(self, exponent: int) -> "Interval":
        """Enclosure of x**exponent over the interval.

        Negative exponents require the interval to exclude zero.
        """
        if exponent == 0:
            return Interval.point(1)
        if exponent < 0:
            return self.reciprocal().power(-exponent)
        if exponent % 2 == 1:
            return Interval(_pow(self.lo, exponent), _pow(self.hi, exponent))
        # Even power: minimum at 0 if the interval straddles it.
        ends = (_pow(self.lo, exponent), _pow(self.hi, exponent))
        if self.contains(0):
            return Interval(Fraction(0), max(ends))
        return Interval(min(ends), max(ends))

    def reciprocal(self) -> "Interval":
        if self.contains(0):
            raise ValueError(f"reciprocal of interval containing 0: {self}")
        return Interval(_recip(self.hi), _recip(self.lo))

    def abs_sup(self) -> Endpoint:
        """Supremum of |x| over the interval (may be infinite)."""
        return max(_abs(self.lo), _abs(self.hi))

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


# Endpoint arithmetic with infinities -------------------------------------

def _add(a: Endpoint, b: Endpoint) -> Endpoint:
    if isinstance(a, float) or isinstance(b, float):
        return float(a) + float(b)
    return a + b


def _neg(a: Endpoint) -> Endpoint:
    return -a


def _mul(a: Endpoint, b: Endpoint) -> Endpoint:
    a_inf = isinstance(a, float) and math.isinf(a)
    b_inf = isinstance(b, float) and math.isinf(b)
    if a_inf or b_inf:
        if a == 0 or b == 0:
            return Fraction(0)  # convention: 0 * inf = 0 for enclosures
        sign = (1 if a > 0 else -1) * (1 if b > 0 else -1)
        return _POS_INF if sign > 0 else _NEG_INF
    return a * b


def _pow(a: Endpoint, k: int) -> Endpoint:
    if isinstance(a, float) and math.isinf(a):
        if k % 2 == 0:
            return _POS_INF
        return a
    return a ** k


def _recip(a: Endpoint) -> Endpoint:
    if isinstance(a, float) and math.isinf(a):
        return Fraction(0)
    return Fraction(1) / a


def _abs(a: Endpoint) -> Endpoint:
    return -a if a < 0 else a


#: A box of per-variable bounds.
Bounds = Mapping[str, Interval]


def bound_poly(poly: Poly, bounds: Bounds) -> Interval:
    """Conservative enclosure of a polynomial's range over a box.

    Every variable of ``poly`` must appear in ``bounds``; variables whose
    bounds are unknown should be given :meth:`Interval.unbounded`.
    Evaluation is monomial-wise interval arithmetic, which is sound but
    not tight (no sub-distributivity refinement is attempted -- the paper
    only needs sign certificates, which this provides).
    """
    missing = poly.variables() - set(bounds)
    if missing:
        raise PolyError(f"no bounds for variables: {sorted(missing)}")
    total = Interval.point(0)
    for mono, coeff in poly.terms.items():
        acc = Interval.point(1)
        for var, exp in mono:
            acc = acc * bounds[var].power(exp)
        total = total + acc.scale(coeff)
    return total
