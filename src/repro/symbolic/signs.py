"""Sign analysis of performance expressions.

Implements the decision machinery of section 3.1: given the difference
``P = C(f) - C(g)`` of two performance expressions, determine *where*
``P`` is positive or negative.

Two levels are provided:

* :func:`decide_sign` -- a fast, conservative multivariate verdict from
  interval bound propagation.  When it answers ``POSITIVE`` /
  ``NEGATIVE`` / ``ZERO`` the answer is sound; ``UNKNOWN`` means the
  bounds were insufficient (the paper then computes conditions for
  run-time tests or guesses).
* :func:`sign_regions` -- the exact univariate analysis: find the real
  roots of ``P`` inside ``[lb, ub]`` (closed forms up to degree 4) and
  return the maximal subintervals of constant sign, as in the paper's
  Figure 10 cubic example.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction

from .intervals import Bounds, Interval, bound_poly
from .poly import Poly, PolyError
from .roots import Root, real_roots

__all__ = ["Sign", "SignRegion", "decide_sign", "sign_regions", "clear_laurent"]


class Sign(enum.Enum):
    """Verdict of a sign query."""

    POSITIVE = "positive"
    NEGATIVE = "negative"
    ZERO = "zero"
    UNKNOWN = "unknown"

    def definite(self) -> bool:
        return self is not Sign.UNKNOWN

    def negate(self) -> "Sign":
        if self is Sign.POSITIVE:
            return Sign.NEGATIVE
        if self is Sign.NEGATIVE:
            return Sign.POSITIVE
        return self


@dataclass(frozen=True)
class SignRegion:
    """A maximal subinterval on which the expression has constant sign."""

    interval: Interval
    sign: Sign

    def __str__(self) -> str:
        return f"{self.interval}: {self.sign.value}"


def decide_sign(poly: Poly, bounds: Bounds) -> Sign:
    """Conservative multivariate sign verdict by bound propagation.

    Returns a definite sign only when the interval enclosure proves it;
    never wrong, sometimes ``UNKNOWN``.
    """
    if poly.is_zero():
        return Sign.ZERO
    if poly.is_constant():
        value = poly.constant_value()
        if value > 0:
            return Sign.POSITIVE
        if value < 0:
            return Sign.NEGATIVE
        return Sign.ZERO
    try:
        enclosure = bound_poly(poly, bounds)
    except (PolyError, ValueError):
        return Sign.UNKNOWN
    if enclosure.strictly_positive():
        return Sign.POSITIVE
    if enclosure.strictly_negative():
        return Sign.NEGATIVE
    if enclosure.lo == 0 and enclosure.hi == 0:
        return Sign.ZERO
    return Sign.UNKNOWN


def clear_laurent(poly: Poly, var: str) -> Poly:
    """Multiply through by ``var**k`` to clear negative exponents.

    On a domain with ``var > 0`` this preserves the sign everywhere, so
    sign regions of the cleared polynomial equal those of the original.
    """
    k = poly.min_degree(var)
    if k >= 0:
        return poly
    return poly * Poly.var(var, -k)


def _sample_sign(poly: Poly, var: str, at: Fraction) -> Sign:
    value = poly.evaluate({var: at})
    if value > 0:
        return Sign.POSITIVE
    if value < 0:
        return Sign.NEGATIVE
    return Sign.ZERO


def sign_regions(poly: Poly, var: str, domain: Interval) -> list[SignRegion]:
    """Exact sign regions of a univariate polynomial over a bounded domain.

    The polynomial must be univariate in ``var``.  Laurent terms are
    permitted only when the domain excludes zero (they are cleared by
    multiplying through by a power of ``var``, which preserves signs on a
    positive domain and flips the rule consistently on a negative one).

    Returns maximal regions in ascending order; zero-width regions are
    emitted for isolated roots that fall strictly inside the domain, so
    that the union of regions is exactly the domain.
    """
    if isinstance(domain.lo, float) or isinstance(domain.hi, float):
        raise ValueError("sign_regions requires a bounded domain")
    if poly.variables() - {var}:
        raise PolyError(f"{poly} is not univariate in {var}")
    if poly.min_degree(var) < 0 and domain.contains(0):
        raise PolyError("Laurent expression on a domain containing zero")

    work = clear_laurent(poly, var)
    if poly.min_degree(var) < 0 and domain.hi < 0:
        # Multiplying by an odd power of a negative variable flips signs.
        flip = (-poly.min_degree(var)) % 2 == 1
    else:
        flip = False

    if work.is_zero():
        return [SignRegion(domain, Sign.ZERO)]
    if work.is_constant() or work.degree(var) == 0:
        sign = _sample_sign(work, var, domain.lo)
        return [SignRegion(domain, sign.negate() if flip else sign)]

    roots_in = [r for r in real_roots(work, var) if _inside(r, domain)]
    cuts: list[Fraction] = []
    for root in roots_in:
        value = root.value if root.exact else Fraction(root.as_float()).limit_denominator(10 ** 9)
        if domain.lo < value < domain.hi and value not in cuts:
            cuts.append(Fraction(value))
    cuts.sort()

    points = [domain.lo, *cuts, domain.hi]
    regions: list[SignRegion] = []
    for i in range(len(points) - 1):
        lo, hi = points[i], points[i + 1]
        mid = (Fraction(lo) + Fraction(hi)) / 2
        sign = _sample_sign(work, var, mid)
        if flip:
            sign = sign.negate()
        _append_region(regions, Interval(lo, hi), sign)
    if not regions:
        sign = _sample_sign(work, var, Fraction(domain.lo))
        regions.append(SignRegion(domain, sign.negate() if flip else sign))
    return regions


def _inside(root: Root, domain: Interval) -> bool:
    value = float(root.value)
    return float(domain.lo) - 1e-12 <= value <= float(domain.hi) + 1e-12


def _append_region(regions: list[SignRegion], interval: Interval, sign: Sign) -> None:
    """Append, merging with the previous region when the sign matches."""
    if regions and regions[-1].sign is sign:
        prev = regions[-1]
        regions[-1] = SignRegion(Interval(prev.interval.lo, interval.hi), sign)
    else:
        regions.append(SignRegion(interval, sign))
