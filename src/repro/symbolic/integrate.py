"""Exact integration of performance polynomials.

Section 3.1 proposes comparing two transformations ``f`` and ``g`` by
the *integral values* of the positive and negative parts ``P+`` and
``P-`` of the difference polynomial over the domain of the unknown.
This module provides exact antiderivatives (Fraction coefficients) and
piecewise integration of the positive/negative parts using the sign
regions from :mod:`repro.symbolic.signs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .intervals import Interval
from .poly import Poly, PolyError
from .signs import Sign, sign_regions

__all__ = ["antiderivative", "integrate", "PosNegIntegrals", "split_integrals"]


def antiderivative(poly: Poly, var: str) -> Poly:
    """Antiderivative with respect to ``var`` (constant of integration 0).

    Raises :class:`PolyError` on a ``1/var`` term, whose antiderivative
    is not polynomial; callers drop such terms first (section 3.1's
    negligible-term simplification) or integrate numerically.
    """
    terms: dict = {}
    for mono, coeff in poly.terms.items():
        exps = dict(mono)
        exp = exps.get(var, 0)
        if exp == -1:
            raise PolyError(f"term {coeff}/{var} has logarithmic antiderivative")
        exps[var] = exp + 1
        new_mono = tuple(sorted(exps.items()))
        terms[new_mono] = terms.get(new_mono, Fraction(0)) + coeff / (exp + 1)
    return Poly(terms)


def integrate(poly: Poly, var: str, domain: Interval) -> Fraction:
    """Exact definite integral of a univariate polynomial over [lo, hi]."""
    if isinstance(domain.lo, float) or isinstance(domain.hi, float):
        raise ValueError("definite integral over an unbounded domain")
    primitive = antiderivative(poly, var)
    upper = primitive.substitute({var: Poly.const(domain.hi)})
    lower = primitive.substitute({var: Poly.const(domain.lo)})
    diff = upper - lower
    if not diff.is_constant():
        raise PolyError(f"{poly} is not univariate in {var}")
    return diff.constant_value()


@dataclass(frozen=True)
class PosNegIntegrals:
    """Integrals and measures of P+ and P- over a domain.

    ``positive_integral`` is ``∫ P+`` (>= 0), ``negative_integral`` is
    ``∫ |P-|`` (>= 0); ``positive_measure`` / ``negative_measure`` are
    the total lengths of the regions where P is positive / negative.
    The paper uses either the areas or the integrals to compare
    transformations f and g.
    """

    positive_integral: Fraction
    negative_integral: Fraction
    positive_measure: Fraction
    negative_measure: Fraction

    @property
    def net(self) -> Fraction:
        """∫ P over the whole domain (positive minus negative mass)."""
        return self.positive_integral - self.negative_integral


def split_integrals(poly: Poly, var: str, domain: Interval) -> PosNegIntegrals:
    """Integrate the positive and negative parts of P over the domain.

    Sign regions are computed exactly (roots up to degree 4 in closed
    form); each region is integrated exactly with Fraction arithmetic.
    Root endpoints that are irrational are approximated by high-precision
    rationals by the sign-region layer, so results at such endpoints are
    exact integrals of the *partitioned* polynomial -- more than accurate
    enough for transformation ranking.
    """
    pos_int = Fraction(0)
    neg_int = Fraction(0)
    pos_meas = Fraction(0)
    neg_meas = Fraction(0)
    for region in sign_regions(poly, var, domain):
        width = Fraction(region.interval.hi) - Fraction(region.interval.lo)
        if width == 0:
            continue
        if region.sign is Sign.POSITIVE:
            pos_int += integrate(poly, var, region.interval)
            pos_meas += width
        elif region.sign is Sign.NEGATIVE:
            neg_int -= integrate(poly, var, region.interval)
            neg_meas += width
    return PosNegIntegrals(pos_int, neg_int, pos_meas, neg_meas)
