"""Exact closed-form summation of polynomials over iteration spaces.

The aggregation rule ``C(do k = lb, ub, step {B}) = ... + Σ_k C(B_k)``
(paper section 2.4.1) needs a *closed form* when the body cost depends
on the loop variable -- triangular nests, index-split conditionals --
or the performance expression would not stay polynomial.  Faulhaber's
formula provides it exactly.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from math import comb

from .poly import Poly, PolyError

__all__ = ["power_sum", "sum_poly"]

#: Internal fresh variable for the normalized iteration counter.
_T = "__t"


@lru_cache(maxsize=None)
def power_sum(m: int) -> Poly:
    """Faulhaber: ``S_m(n) = sum(k**m for k in 1..n)`` as a Poly in ``n``.

    Computed exactly by the recurrence
    ``(n+1)**(m+1) - 1 = sum(C(m+1, j) * S_j(n) for j in 0..m)``.
    """
    if m < 0:
        raise ValueError("power_sum needs m >= 0")
    n = Poly.var("n")
    lhs = (n + 1) ** (m + 1) - 1
    for j in range(m):
        lhs = lhs - comb(m + 1, j) * power_sum(j)
    return lhs / Fraction(m + 1)


def sum_poly(body: Poly, var: str, lb: Poly, ub: Poly, step: Poly | None = None) -> Poly:
    """Exact ``sum(body(k) for k = lb, ub, step)`` as a polynomial.

    ``lb``, ``ub``, ``step`` may be symbolic.  The trip count is taken
    to be ``N = (ub - lb + step) / step`` (the Fortran count when it is
    non-negative and integral; for symbolic bounds this is the standard
    polynomial extension the paper uses).  The body must not contain
    Laurent terms in ``var``.

    Raises :class:`PolyError` when ``step`` is not invertible (not a
    constant or monomial).
    """
    step = Poly.one() if step is None else step
    if body.min_degree(var) < 0:
        raise PolyError(f"cannot sum Laurent term in {var}")
    if len(step.terms) != 1:
        raise PolyError(f"step {step} is not a monomial; introduce an unknown")
    trips = (ub - lb + step) / step
    # Normalize: k = lb + step * t with t = 0 .. N-1.
    t = Poly.var(_T)
    shifted = body.substitute({var: lb + step * t})
    buckets = shifted.coeffs_by_var(_T)
    upper = trips - 1  # sum over t in 0..N-1 -> S_m evaluated at N-1
    total = Poly.zero()
    for power, coeff in buckets.items():
        if power == 0:
            total = total + coeff * trips
        else:
            total = total + coeff * power_sum(power).substitute({"n": upper})
    if _T in total.variables():
        raise AssertionError("internal: summation variable escaped")
    return total
