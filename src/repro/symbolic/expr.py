"""Performance expressions: polynomials plus knowledge about unknowns.

A :class:`PerfExpr` is the currency of the whole framework: the
estimated cost (in machine cycles) of a program fragment, represented
as an exact polynomial over the program's *unknowns* -- loop trip
counts, loop bounds, conditional branch probabilities, and conditional
split points -- together with whatever bounds on those unknowns the
compiler has discovered.  Keeping the bounds attached to the expression
lets sign queries and simplification run without a separate
environment, and lets expressions from different program regions merge
their knowledge when combined (section 2.4 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from numbers import Rational
from typing import Mapping, Union

from .intervals import Interval
from .poly import Poly, PolyError, as_poly
from .signs import Sign, decide_sign
from .simplify import SimplifyResult, drop_negligible_terms

__all__ = ["UnknownKind", "Unknown", "PerfExpr", "as_perf"]


class UnknownKind(enum.Enum):
    """What a symbolic variable in a performance expression stands for."""

    TRIP_COUNT = "trip_count"       # number of iterations of a loop
    LOOP_BOUND = "loop_bound"       # an lb/ub/step value
    BRANCH_PROB = "branch_prob"     # reaching probability of a branch
    SPLIT_POINT = "split_point"     # e.g. k in `if (i .le. k)`
    PARAMETER = "parameter"         # formal parameter of a procedure
    MACHINE = "machine"             # machine parameter (latency, bandwidth)


@dataclass(frozen=True)
class Unknown:
    """A symbolic variable with its semantic kind and default bounds."""

    name: str
    kind: UnknownKind = UnknownKind.PARAMETER
    description: str = ""

    def default_interval(self) -> Interval:
        if self.kind is UnknownKind.BRANCH_PROB:
            return Interval.probability()
        if self.kind in (UnknownKind.TRIP_COUNT, UnknownKind.MACHINE):
            return Interval.nonnegative()
        return Interval.unbounded()


PerfLike = Union["PerfExpr", Poly, int, Fraction]


@dataclass(frozen=True)
class PerfExpr:
    """An exact symbolic cost with bounds and unknown metadata attached.

    Arithmetic (`+`, `-`, `*`) merges the bounds of both operands by
    intersection (both pieces of knowledge hold simultaneously) and the
    unknown tables by union.
    """

    poly: Poly
    bounds: Mapping[str, Interval] = field(default_factory=dict)
    unknowns: Mapping[str, Unknown] = field(default_factory=dict)

    # -- constructors ------------------------------------------------------
    @classmethod
    def const(cls, value: Rational | int) -> "PerfExpr":
        return cls(Poly.const(value))

    @classmethod
    def zero(cls) -> "PerfExpr":
        return cls(Poly.zero())

    @classmethod
    def unknown(
        cls,
        name: str,
        kind: UnknownKind = UnknownKind.PARAMETER,
        interval: Interval | None = None,
        description: str = "",
    ) -> "PerfExpr":
        meta = Unknown(name, kind, description)
        bounds = {name: interval if interval is not None else meta.default_interval()}
        return cls(Poly.var(name), bounds, {name: meta})

    # -- inspection ----------------------------------------------------------
    def is_constant(self) -> bool:
        return self.poly.is_constant()

    def constant_value(self) -> Fraction:
        return self.poly.constant_value()

    def variables(self) -> frozenset[str]:
        return self.poly.variables()

    def effective_bounds(self) -> dict[str, Interval]:
        """Bounds for every variable, defaulting by unknown kind."""
        out: dict[str, Interval] = {}
        for var in self.poly.variables():
            if var in self.bounds:
                out[var] = self.bounds[var]
            elif var in self.unknowns:
                out[var] = self.unknowns[var].default_interval()
            else:
                out[var] = Interval.unbounded()
        return out

    # -- combination ------------------------------------------------------------
    def _merged_env(self, other: "PerfExpr") -> tuple[dict, dict]:
        bounds = dict(self.bounds)
        for name, interval in other.bounds.items():
            if name in bounds:
                narrowed = bounds[name].intersect(interval)
                if narrowed is None:
                    raise PolyError(f"contradictory bounds for {name}")
                bounds[name] = narrowed
            else:
                bounds[name] = interval
        unknowns = dict(self.unknowns)
        unknowns.update({k: v for k, v in other.unknowns.items() if k not in unknowns})
        return bounds, unknowns

    def _coerce(self, other: PerfLike) -> "PerfExpr | None":
        if isinstance(other, PerfExpr):
            return other
        if isinstance(other, (Poly, int, Fraction)):
            return PerfExpr(as_poly(other))
        return None

    def __add__(self, other: PerfLike) -> "PerfExpr":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        bounds, unknowns = self._merged_env(rhs)
        return PerfExpr(self.poly + rhs.poly, bounds, unknowns)

    __radd__ = __add__

    def __neg__(self) -> "PerfExpr":
        return PerfExpr(-self.poly, self.bounds, self.unknowns)

    def __sub__(self, other: PerfLike) -> "PerfExpr":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return self + (-rhs)

    def __rsub__(self, other: PerfLike) -> "PerfExpr":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return rhs + (-self)

    def __mul__(self, other: PerfLike) -> "PerfExpr":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        bounds, unknowns = self._merged_env(rhs)
        return PerfExpr(self.poly * rhs.poly, bounds, unknowns)

    __rmul__ = __mul__

    def __truediv__(self, other: PerfLike) -> "PerfExpr":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        bounds, unknowns = self._merged_env(rhs)
        return PerfExpr(self.poly / rhs.poly, bounds, unknowns)

    # -- knowledge updates -----------------------------------------------------
    def with_bound(self, name: str, interval: Interval) -> "PerfExpr":
        """Return a copy with a (possibly narrowed) bound for one unknown."""
        bounds = dict(self.bounds)
        if name in bounds:
            narrowed = bounds[name].intersect(interval)
            if narrowed is None:
                raise PolyError(f"contradictory bounds for {name}")
            bounds[name] = narrowed
        else:
            bounds[name] = interval
        return PerfExpr(self.poly, bounds, self.unknowns)

    def substitute(self, bindings: Mapping[str, Poly | int | Fraction]) -> "PerfExpr":
        """Bind unknowns to values or expressions (the delayed guess)."""
        poly = self.poly.substitute(bindings)
        bounds = {k: v for k, v in self.bounds.items() if k not in bindings}
        unknowns = {k: v for k, v in self.unknowns.items() if k not in bindings}
        return PerfExpr(poly, bounds, unknowns)

    def evaluate(self, values: Mapping[str, Rational | int]) -> Fraction:
        return self.poly.evaluate(values)

    # -- queries ------------------------------------------------------------------
    def sign(self) -> Sign:
        """Sign of this expression over its own bounds."""
        return decide_sign(self.poly, self.effective_bounds())

    def simplified(self, rel_tol: Fraction | float = Fraction(1, 1000)) -> SimplifyResult:
        """Drop provably negligible terms relative to the attached bounds."""
        return drop_negligible_terms(self.poly, self.effective_bounds(), rel_tol)

    def __str__(self) -> str:
        return str(self.poly)


def as_perf(value: PerfLike) -> PerfExpr:
    """Coerce a Poly, int, or Fraction into a :class:`PerfExpr`."""
    if isinstance(value, PerfExpr):
        return value
    return PerfExpr(as_poly(value))
