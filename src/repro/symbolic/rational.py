"""Rational functions of performance unknowns.

Laurent polynomials (:mod:`repro.symbolic.poly`) cover division by a
monomial (``1/step``), but some of the paper's expressions divide by a
general polynomial -- e.g. the reaching probability of a loop-index
conditional is ``step / (ub - lb)`` (section 3.3.2).  A
:class:`RationalFn` is a quotient of two polynomials with lightweight
normalization: denominators that are constants or monomials are folded
into the numerator, and common constant factors are removed.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Union

from .intervals import Bounds, bound_poly
from .poly import Poly, PolyError, as_poly
from .signs import Sign, decide_sign

__all__ = ["RationalFn", "as_rational"]

RationalLike = Union["RationalFn", Poly, int, Fraction]


class RationalFn:
    """An immutable quotient ``num / den`` of exact polynomials."""

    __slots__ = ("num", "den")

    def __init__(self, num: Poly, den: Poly | None = None):
        den = Poly.one() if den is None else den
        if den.is_zero():
            raise PolyError("rational function with zero denominator")
        # Fold invertible (monomial) denominators into the numerator.
        if len(den.terms) == 1:
            num = num * den.invert()
            den = Poly.one()
        elif den.is_constant():
            num = num / den.constant_value()
            den = Poly.one()
        self.num = num
        self.den = den

    # -- constructors ----------------------------------------------------
    @classmethod
    def const(cls, value: Fraction | int) -> "RationalFn":
        return cls(Poly.const(value))

    @classmethod
    def var(cls, name: str) -> "RationalFn":
        return cls(Poly.var(name))

    # -- predicates --------------------------------------------------------
    def is_polynomial(self) -> bool:
        return self.den.is_constant() and self.den.constant_value() == 1

    def as_poly(self) -> Poly:
        if not self.is_polynomial():
            raise PolyError(f"{self} has a non-trivial denominator")
        return self.num

    def is_zero(self) -> bool:
        return self.num.is_zero()

    def variables(self) -> frozenset[str]:
        return self.num.variables() | self.den.variables()

    # -- arithmetic ---------------------------------------------------------
    def _coerce(self, other: RationalLike) -> "RationalFn | None":
        if isinstance(other, RationalFn):
            return other
        if isinstance(other, (Poly, int, Fraction)):
            return RationalFn(as_poly(other))
        return None

    def __add__(self, other: RationalLike) -> "RationalFn":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        if self.den == rhs.den:
            return RationalFn(self.num + rhs.num, self.den)
        return RationalFn(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)

    __radd__ = __add__

    def __neg__(self) -> "RationalFn":
        return RationalFn(-self.num, self.den)

    def __sub__(self, other: RationalLike) -> "RationalFn":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return self + (-rhs)

    def __rsub__(self, other: RationalLike) -> "RationalFn":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return rhs + (-self)

    def __mul__(self, other: RationalLike) -> "RationalFn":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return RationalFn(self.num * rhs.num, self.den * rhs.den)

    __rmul__ = __mul__

    def __truediv__(self, other: RationalLike) -> "RationalFn":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        if rhs.is_zero():
            raise PolyError("division by zero rational function")
        return RationalFn(self.num * rhs.den, self.den * rhs.num)

    def __rtruediv__(self, other: RationalLike) -> "RationalFn":
        lhs = self._coerce(other)
        if lhs is None:
            return NotImplemented
        return lhs / self

    # -- evaluation ---------------------------------------------------------
    def substitute(self, bindings: Mapping[str, Poly | int | Fraction]) -> "RationalFn":
        return RationalFn(self.num.substitute(bindings), self.den.substitute(bindings))

    def evaluate(self, values: Mapping[str, Fraction | int]) -> Fraction:
        den = self.den.evaluate(values)
        if den == 0:
            raise PolyError("denominator vanishes at the given point")
        return self.num.evaluate(values) / den

    def sign(self, bounds: Bounds) -> Sign:
        """Sign of the quotient from the signs of numerator and denominator."""
        num_sign = decide_sign(self.num, bounds)
        den_sign = decide_sign(self.den, bounds)
        if num_sign is Sign.ZERO:
            return Sign.ZERO
        if not num_sign.definite() or not den_sign.definite():
            return Sign.UNKNOWN
        if den_sign is Sign.ZERO:
            return Sign.UNKNOWN  # pole somewhere in the box
        return num_sign if den_sign is Sign.POSITIVE else num_sign.negate()

    def bound(self, bounds: Bounds):
        """Interval enclosure of the quotient over a box (may raise)."""
        return bound_poly(self.num, bounds) * bound_poly(self.den, bounds).reciprocal()

    # -- identity -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        coerced = self._coerce(other) if not isinstance(other, RationalFn) else other
        if coerced is None:
            return NotImplemented
        # Cross-multiplied comparison avoids needing polynomial gcd.
        return self.num * coerced.den == coerced.num * self.den

    def __hash__(self) -> int:
        return hash((self.num, self.den))

    def __str__(self) -> str:
        if self.is_polynomial():
            return str(self.num)
        return f"({self.num}) / ({self.den})"

    def __repr__(self) -> str:
        return f"RationalFn({self})"


def as_rational(value: RationalLike) -> RationalFn:
    """Coerce a Poly, int, or Fraction into a :class:`RationalFn`."""
    if isinstance(value, RationalFn):
        return value
    return RationalFn(as_poly(value))
