"""Symbolic performance-expression engine (Wang 1994, sections 2.4 & 3).

Exact polynomials, rational functions, interval bound propagation,
closed-form roots to degree four, sign regions, positive/negative-part
integrals, and certified negligible-term dropping.
"""

from .expr import PerfExpr, Unknown, UnknownKind, as_perf
from .integrate import PosNegIntegrals, antiderivative, integrate, split_integrals
from .intervals import Bounds, Interval, bound_poly
from .poly import Monomial, Poly, PolyError, as_poly
from .rational import RationalFn, as_rational
from .roots import Root, real_roots, solve_cubic, solve_quadratic, solve_quartic
from .signs import Sign, SignRegion, clear_laurent, decide_sign, sign_regions
from .simplify import DroppedTerm, SimplifyResult, drop_negligible_terms
from .summation import power_sum, sum_poly

__all__ = [
    "Bounds",
    "DroppedTerm",
    "Interval",
    "Monomial",
    "PerfExpr",
    "Poly",
    "PolyError",
    "PosNegIntegrals",
    "RationalFn",
    "Root",
    "Sign",
    "SignRegion",
    "SimplifyResult",
    "Unknown",
    "UnknownKind",
    "antiderivative",
    "as_perf",
    "as_poly",
    "as_rational",
    "bound_poly",
    "clear_laurent",
    "decide_sign",
    "drop_negligible_terms",
    "integrate",
    "real_roots",
    "sign_regions",
    "solve_cubic",
    "solve_quadratic",
    "solve_quartic",
    "split_integrals",
    "power_sum",
    "sum_poly",
]
