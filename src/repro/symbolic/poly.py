"""Exact multivariate (Laurent) polynomials over the rationals.

This module is the arithmetic core of the symbolic performance
expressions of Wang (PLDI 1994, section 2.4): costs of compound
statements are represented as polynomials whose variables are the
unknowns of the program (loop bounds, branch probabilities, split
points).  Exact :class:`fractions.Fraction` coefficients are used
throughout so that aggregating many program fragments never magnifies
rounding error -- a concern the paper calls out explicitly.

Monomials may carry *negative* exponents (Laurent terms) because the
paper's expressions contain terms such as ``1/x**3`` (section 3.1) and
trip counts divide by a symbolic ``step``.

The representation is a mapping ``monomial -> coefficient`` where a
monomial is a sorted tuple of ``(variable, exponent)`` pairs with all
exponents non-zero.  The empty tuple is the constant monomial.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational
from typing import Iterable, Iterator, Mapping, Union

__all__ = ["Monomial", "Poly", "as_poly", "PolyError"]

#: A monomial: sorted tuple of (variable name, non-zero integer exponent).
Monomial = tuple[tuple[str, int], ...]

#: Things accepted wherever a polynomial operand is expected.
PolyLike = Union["Poly", int, Fraction]

_ONE_MONOMIAL: Monomial = ()


class PolyError(ValueError):
    """Raised for invalid polynomial operations (e.g. division by zero)."""


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    """Multiply two monomials by adding exponents of shared variables."""
    if not a:
        return b
    if not b:
        return a
    exps: dict[str, int] = dict(a)
    for var, exp in b:
        new = exps.get(var, 0) + exp
        if new:
            exps[var] = new
        else:
            del exps[var]
    return tuple(sorted(exps.items()))


def _mono_pow(m: Monomial, k: int) -> Monomial:
    if k == 0 or not m:
        return _ONE_MONOMIAL
    return tuple((var, exp * k) for var, exp in m)


def _mono_degree(m: Monomial) -> int:
    """Total degree of a monomial (negative exponents count as written)."""
    return sum(exp for _, exp in m)


def _mono_str(m: Monomial) -> str:
    if not m:
        return "1"
    parts = []
    for var, exp in m:
        parts.append(var if exp == 1 else f"{var}^{exp}")
    return "*".join(parts)


class Poly:
    """An immutable exact multivariate Laurent polynomial.

    Instances support ``+``, ``-``, ``*``, ``**`` (integer power, negative
    allowed only for monomials), ``/`` by a rational constant or by a
    monomial polynomial, comparison for equality, hashing, substitution
    and exact evaluation.

    Construct with the convenience classmethods::

        n = Poly.var("n")
        cost = 4 * n**2 + 3 * n + 7

    Coefficients are :class:`fractions.Fraction`; any :class:`int` or
    rational input is converted exactly.
    """

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[Monomial, Fraction] | None = None):
        clean: dict[Monomial, Fraction] = {}
        if terms:
            for mono, coeff in terms.items():
                frac = Fraction(coeff)
                if frac:
                    clean[mono] = frac
        self._terms: dict[Monomial, Fraction] = clean
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def const(cls, value: Rational | int | float) -> "Poly":
        """Constant polynomial.  Floats are converted exactly via Fraction."""
        frac = Fraction(value)
        return cls({_ONE_MONOMIAL: frac}) if frac else cls()

    @classmethod
    def var(cls, name: str, exponent: int = 1) -> "Poly":
        """The polynomial ``name**exponent`` (exponent may be negative)."""
        if not name:
            raise PolyError("variable name must be non-empty")
        if exponent == 0:
            return cls.const(1)
        return cls({((name, exponent),): Fraction(1)})

    @classmethod
    def zero(cls) -> "Poly":
        return cls()

    @classmethod
    def one(cls) -> "Poly":
        return cls.const(1)

    @classmethod
    def from_coeffs(cls, coeffs: Iterable[Rational], var: str) -> "Poly":
        """Univariate polynomial from coefficients, lowest degree first."""
        terms: dict[Monomial, Fraction] = {}
        for power, coeff in enumerate(coeffs):
            frac = Fraction(coeff)
            if frac:
                mono = _ONE_MONOMIAL if power == 0 else ((var, power),)
                terms[mono] = frac
        return cls(terms)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def terms(self) -> Mapping[Monomial, Fraction]:
        """Read-only view of the term mapping."""
        return dict(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __bool__(self) -> bool:
        return bool(self._terms)

    def is_zero(self) -> bool:
        return not self._terms

    def is_constant(self) -> bool:
        return not self._terms or set(self._terms) == {_ONE_MONOMIAL}

    def constant_value(self) -> Fraction:
        """Value of a constant polynomial; raises PolyError otherwise."""
        if not self.is_constant():
            raise PolyError(f"{self} is not constant")
        return self._terms.get(_ONE_MONOMIAL, Fraction(0))

    def variables(self) -> frozenset[str]:
        """The set of variable names appearing with non-zero exponent."""
        return frozenset(var for mono in self._terms for var, _ in mono)

    def degree(self, var: str | None = None) -> int:
        """Total degree, or degree in one variable.  Zero poly has degree 0."""
        if not self._terms:
            return 0
        if var is None:
            return max(_mono_degree(m) for m in self._terms)
        return max((exp for mono in self._terms for v, exp in mono if v == var), default=0)

    def min_degree(self, var: str) -> int:
        """Smallest exponent of ``var`` across terms (negative for Laurent)."""
        exps = [dict(mono).get(var, 0) for mono in self._terms]
        return min(exps, default=0)

    def is_laurent(self) -> bool:
        """True if any term carries a negative exponent."""
        return any(exp < 0 for mono in self._terms for _, exp in mono)

    def coefficient(self, mono: Monomial) -> Fraction:
        return self._terms.get(tuple(sorted(mono)), Fraction(0))

    def coeffs_by_var(self, var: str) -> dict[int, "Poly"]:
        """Collect terms by the power of one variable.

        Returns ``{exponent: coefficient-polynomial}`` such that
        ``self == sum(var**e * c for e, c in result.items())``.
        """
        buckets: dict[int, dict[Monomial, Fraction]] = {}
        for mono, coeff in self._terms.items():
            exps = dict(mono)
            power = exps.pop(var, 0)
            rest = tuple(sorted(exps.items()))
            bucket = buckets.setdefault(power, {})
            bucket[rest] = bucket.get(rest, Fraction(0)) + coeff
        return {power: Poly(terms) for power, terms in buckets.items()}

    def univariate_coeffs(self, var: str) -> list[Fraction]:
        """Dense coefficient list (lowest first) for a univariate polynomial.

        Raises :class:`PolyError` if other variables appear or any exponent
        of ``var`` is negative.
        """
        if self.variables() - {var}:
            raise PolyError(f"{self} is not univariate in {var}")
        if self.min_degree(var) < 0:
            raise PolyError(f"{self} has Laurent terms in {var}")
        coeffs = [Fraction(0)] * (self.degree(var) + 1)
        for mono, coeff in self._terms.items():
            power = dict(mono).get(var, 0)
            coeffs[power] += coeff
        return coeffs

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: PolyLike) -> "Poly | None":
        if isinstance(other, Poly):
            return other
        if isinstance(other, (int, Fraction)):
            return Poly.const(other)
        return None

    def __add__(self, other: PolyLike) -> "Poly":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        terms = dict(self._terms)
        for mono, coeff in rhs._terms.items():
            new = terms.get(mono, Fraction(0)) + coeff
            if new:
                terms[mono] = new
            else:
                terms.pop(mono, None)
        return Poly(terms)

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self._terms.items()})

    def __sub__(self, other: PolyLike) -> "Poly":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return self + (-rhs)

    def __rsub__(self, other: PolyLike) -> "Poly":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return rhs + (-self)

    def __mul__(self, other: PolyLike) -> "Poly":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        terms: dict[Monomial, Fraction] = {}
        for mono_a, coeff_a in self._terms.items():
            for mono_b, coeff_b in rhs._terms.items():
                mono = _mono_mul(mono_a, mono_b)
                new = terms.get(mono, Fraction(0)) + coeff_a * coeff_b
                if new:
                    terms[mono] = new
                else:
                    terms.pop(mono, None)
        return Poly(terms)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Poly":
        if not isinstance(exponent, int):
            return NotImplemented
        if exponent < 0:
            inverted = self.invert()
            return inverted ** (-exponent)
        result = Poly.one()
        base = self
        k = exponent
        while k:
            if k & 1:
                result = result * base
            base = base * base
            k >>= 1
        return result

    def invert(self) -> "Poly":
        """Multiplicative inverse; only defined for single-term polynomials."""
        if len(self._terms) != 1:
            raise PolyError(f"cannot invert non-monomial polynomial {self}")
        ((mono, coeff),) = self._terms.items()
        return Poly({_mono_pow(mono, -1): Fraction(1) / coeff})

    def __truediv__(self, other: PolyLike) -> "Poly":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        if rhs.is_zero():
            raise PolyError("division by zero polynomial")
        return self * rhs.invert()

    def __rtruediv__(self, other: PolyLike) -> "Poly":
        lhs = self._coerce(other)
        if lhs is None:
            return NotImplemented
        return lhs * self.invert()

    # ------------------------------------------------------------------
    # Substitution / evaluation
    # ------------------------------------------------------------------
    def substitute(self, bindings: Mapping[str, PolyLike]) -> "Poly":
        """Replace variables by polynomials or rational values.

        Unbound variables remain symbolic.  Substituting ``0`` for a
        variable that appears with a negative exponent raises
        :class:`PolyError`.
        """
        if not bindings:
            return self
        resolved: dict[str, Poly] = {}
        for name, value in bindings.items():
            poly = self._coerce(value)
            if poly is None:
                raise PolyError(f"cannot substitute {value!r} for {name}")
            resolved[name] = poly
        result = Poly.zero()
        for mono, coeff in self._terms.items():
            term = Poly.const(coeff)
            for var, exp in mono:
                replacement = resolved.get(var)
                if replacement is None:
                    term = term * Poly.var(var, exp)
                elif exp >= 0:
                    term = term * replacement ** exp
                else:
                    if replacement.is_zero():
                        raise PolyError(f"substituting 0 for {var} in Laurent term")
                    term = term * replacement.invert() ** (-exp)
            result = result + term
        return result

    def evaluate(self, values: Mapping[str, Rational | float]) -> Fraction:
        """Exactly evaluate with all variables bound to rational values."""
        missing = self.variables() - set(values)
        if missing:
            raise PolyError(f"unbound variables: {sorted(missing)}")
        total = Fraction(0)
        for mono, coeff in self._terms.items():
            term = coeff
            for var, exp in mono:
                base = Fraction(values[var])
                if exp < 0 and base == 0:
                    raise PolyError(f"evaluating 1/{var} at 0")
                term *= base ** exp
            total += term
        return total

    def evaluate_float(self, values: Mapping[str, float]) -> float:
        """Floating-point evaluation (for plotting and benchmarks)."""
        total = 0.0
        for mono, coeff in self._terms.items():
            term = float(coeff)
            for var, exp in mono:
                term *= float(values[var]) ** exp
            total += term
        return total

    def derivative(self, var: str) -> "Poly":
        """Partial derivative with respect to ``var``."""
        terms: dict[Monomial, Fraction] = {}
        for mono, coeff in self._terms.items():
            exps = dict(mono)
            exp = exps.get(var, 0)
            if exp == 0:
                continue
            new_exp = exp - 1
            if new_exp:
                exps[var] = new_exp
            else:
                del exps[var]
            new_mono = tuple(sorted(exps.items()))
            new = terms.get(new_mono, Fraction(0)) + coeff * exp
            if new:
                terms[new_mono] = new
            else:
                terms.pop(new_mono, None)
        return Poly(terms)

    # ------------------------------------------------------------------
    # Equality / hashing / display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = Poly.const(other)
        if not isinstance(other, Poly):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._terms.items()))
        return self._hash

    def _sorted_terms(self) -> Iterator[tuple[Monomial, Fraction]]:
        def key(item: tuple[Monomial, Fraction]):
            mono, _ = item
            return (-_mono_degree(mono), mono)

        return iter(sorted(self._terms.items(), key=key))

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts: list[str] = []
        for mono, coeff in self._sorted_terms():
            sign = "-" if coeff < 0 else "+"
            mag = abs(coeff)
            if not mono:
                body = str(mag)
            elif mag == 1:
                body = _mono_str(mono)
            else:
                body = f"{mag}*{_mono_str(mono)}"
            parts.append((sign, body))
        first_sign, first_body = parts[0]
        out = ("-" if first_sign == "-" else "") + first_body
        for sign, body in parts[1:]:
            out += f" {sign} {body}"
        return out

    def __repr__(self) -> str:
        return f"Poly({self})"


def as_poly(value: PolyLike) -> Poly:
    """Coerce an int, Fraction, or Poly into a :class:`Poly`."""
    if isinstance(value, Poly):
        return value
    if isinstance(value, (int, Fraction)):
        return Poly.const(value)
    raise PolyError(f"cannot interpret {value!r} as a polynomial")
