"""Real-root finding for univariate performance polynomials.

Section 3.1 of the paper observes that the difference of two
performance expressions is typically a polynomial in a *single*
variable ("since loop transformations modify only one structure at a
time"), and that closed forms exist for degrees up to 4.  This module
implements those closed forms (quadratic formula, Cardano, Ferrari)
plus a numeric companion-matrix fallback for higher degrees, and
polishes numeric roots back to exact rationals when possible so that
downstream sign regions get exact endpoints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from .poly import Poly, PolyError

__all__ = ["Root", "real_roots", "solve_quadratic", "solve_cubic", "solve_quartic"]

#: Roots closer together than this (relative) are merged.
_MERGE_TOL = 1e-9
#: A float candidate within this distance of an exact rational is polished.
_POLISH_TOL = 1e-8


@dataclass(frozen=True)
class Root:
    """A real root: exact :class:`Fraction` when known, float otherwise."""

    value: Fraction | float
    exact: bool

    def as_float(self) -> float:
        return float(self.value)

    def __str__(self) -> str:
        return str(self.value) if self.exact else f"{self.value:.6g}"


def solve_quadratic(a: float, b: float, c: float) -> list[float]:
    """Real roots of a*x**2 + b*x + c, a != 0."""
    disc = b * b - 4.0 * a * c
    # A discriminant that is tiny relative to the coefficient scale is
    # treated as zero so double roots survive floating-point noise.
    scale = b * b + abs(4.0 * a * c)
    if abs(disc) <= 1e-12 * scale:
        disc = 0.0
    if disc < 0:
        return []
    if disc == 0:
        return [-b / (2.0 * a)]
    sq = math.sqrt(disc)
    # Numerically stable form: avoid cancellation in -b +/- sq.
    q = -0.5 * (b + math.copysign(sq, b))
    roots = [q / a]
    if q != 0:
        roots.append(c / q)
    else:
        roots.append(0.0)
    return sorted(set(roots))


def solve_cubic(a: float, b: float, c: float, d: float) -> list[float]:
    """Real roots of a*x**3 + b*x**2 + c*x + d (Cardano / trigonometric)."""
    if a == 0:
        raise ValueError("leading coefficient is zero")
    # Depressed cubic t**3 + p*t + q via x = t - b/(3a).
    b, c, d = b / a, c / a, d / a
    shift = b / 3.0
    p = c - b * b / 3.0
    q = 2.0 * b ** 3 / 27.0 - b * c / 3.0 + d
    roots: list[float]
    disc = (q / 2.0) ** 2 + (p / 3.0) ** 3
    # Snap tiny discriminants to zero (double-root case) to avoid losing
    # a root to floating-point noise.
    disc_scale = (q / 2.0) ** 2 + abs(p / 3.0) ** 3
    if abs(disc) <= 1e-12 * disc_scale:
        disc = 0.0
    if abs(p) < 1e-300 and abs(q) < 1e-300:
        roots = [0.0]
    elif disc > 0:
        # One real root (Cardano).
        sq = math.sqrt(disc)
        u = _cbrt(-q / 2.0 + sq)
        v = _cbrt(-q / 2.0 - sq)
        roots = [u + v]
    elif disc == 0:
        u = _cbrt(-q / 2.0)
        roots = [2.0 * u, -u]
    else:
        # Three real roots (trigonometric method, p < 0 here).
        r = math.sqrt(-p / 3.0)
        phi = math.acos(max(-1.0, min(1.0, 3.0 * q / (2.0 * p * r))))
        roots = [2.0 * r * math.cos((phi - 2.0 * math.pi * k) / 3.0) for k in range(3)]
    return sorted(t - shift for t in roots)


def solve_quartic(a: float, b: float, c: float, d: float, e: float) -> list[float]:
    """Real roots of a quartic via Ferrari's resolvent cubic."""
    if a == 0:
        raise ValueError("leading coefficient is zero")
    b, c, d, e = b / a, c / a, d / a, e / a
    # Depressed quartic y**4 + p*y**2 + q*y + r via x = y - b/4.
    shift = b / 4.0
    p = c - 3.0 * b * b / 8.0
    q = d - b * c / 2.0 + b ** 3 / 8.0
    r = e - b * d / 4.0 + b * b * c / 16.0 - 3.0 * b ** 4 / 256.0
    roots: list[float] = []
    if abs(q) < 1e-12:
        # Biquadratic: z**2 + p*z + r with z = y**2.
        for z in solve_quadratic(1.0, p, r):
            if z >= 0:
                s = math.sqrt(z)
                roots.extend([s, -s] if s else [0.0])
    else:
        # Resolvent cubic: m**3 + p*m**2 + (p**2/4 - r)*m - q**2/8 = 0.
        resolvent = solve_cubic(1.0, p, p * p / 4.0 - r, -q * q / 8.0)
        m = max(resolvent)
        if m <= 0:
            m = max((x for x in resolvent if x > 0), default=0.0)
        if m > 0:
            s = math.sqrt(2.0 * m)
            for sign in (1.0, -1.0):
                # y**2 + sign*s*y + (p/2 + m - sign*q/(2s)) = 0
                const = p / 2.0 + m - sign * q / (2.0 * s)
                roots.extend(solve_quadratic(1.0, sign * s, const))
    return sorted(y - shift for y in roots)


def _cbrt(x: float) -> float:
    return math.copysign(abs(x) ** (1.0 / 3.0), x)


def _numeric_roots(coeffs: Sequence[float]) -> list[float]:
    """Real eigenvalue roots via the companion matrix (degree >= 5)."""
    import numpy as np

    # numpy.roots wants highest degree first.
    arr = np.array(list(reversed(coeffs)), dtype=float)
    values = np.roots(arr)
    out = []
    for z in values:
        if abs(z.imag) < 1e-8 * max(1.0, abs(z.real)):
            out.append(float(z.real))
    return sorted(out)


def _polish(candidate: float, coeffs: Sequence[Fraction]) -> Root:
    """Snap a numeric root to a nearby exact rational when it truly is one."""
    for denominator in (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 100):
        approx = Fraction(round(candidate * denominator), denominator)
        if abs(float(approx) - candidate) <= _POLISH_TOL * max(1.0, abs(candidate)):
            if _eval_exact(coeffs, approx) == 0:
                return Root(approx, exact=True)
    return Root(candidate, exact=False)


def _eval_exact(coeffs: Sequence[Fraction], x: Fraction) -> Fraction:
    total = Fraction(0)
    for coeff in reversed(coeffs):
        total = total * x + coeff
    return total


def _dedupe(values: list[float]) -> list[float]:
    values = sorted(values)
    out: list[float] = []
    for v in values:
        if out and abs(v - out[-1]) <= _MERGE_TOL * max(1.0, abs(v)):
            continue
        out.append(v)
    return out


def real_roots(poly: Poly, var: str) -> list[Root]:
    """All distinct real roots of a univariate polynomial in ``var``.

    The polynomial must be univariate in ``var`` with non-negative
    exponents (clear Laurent terms first by multiplying through).
    Constants have no roots; the zero polynomial raises
    :class:`PolyError` since every point is a root.
    """
    if poly.is_zero():
        raise PolyError("the zero polynomial is identically zero")
    coeffs = poly.univariate_coeffs(var)
    # Strip trailing zero coefficients (can't happen post-normalization,
    # but leading zeros at the high end never occur by construction).
    while len(coeffs) > 1 and coeffs[-1] == 0:
        coeffs.pop()
    degree = len(coeffs) - 1
    if degree == 0:
        return []
    # Factor out x**k when the constant term vanishes: x = 0 is a root.
    zero_root = False
    while coeffs[0] == 0:
        zero_root = True
        coeffs = coeffs[1:]
        degree -= 1
    floats = [float(c) for c in coeffs]
    if degree == 0:
        numeric: list[float] = []
    elif degree == 1:
        numeric = []  # handled exactly below
    elif degree == 2:
        numeric = solve_quadratic(floats[2], floats[1], floats[0])
    elif degree == 3:
        numeric = solve_cubic(floats[3], floats[2], floats[1], floats[0])
    elif degree == 4:
        numeric = solve_quartic(floats[4], floats[3], floats[2], floats[1], floats[0])
    else:
        numeric = _numeric_roots(floats)

    roots: list[Root] = []
    if zero_root:
        roots.append(Root(Fraction(0), exact=True))
    if degree == 1:
        roots.append(Root(-coeffs[0] / coeffs[1], exact=True))
    else:
        for value in _dedupe(numeric):
            roots.append(_polish(value, coeffs))
    # Deduplicate after polishing (a polished root may equal the zero root).
    seen: list[Root] = []
    for root in sorted(roots, key=lambda r: float(r.value)):
        if seen and abs(float(root.value) - float(seen[-1].value)) <= _MERGE_TOL:
            if root.exact and not seen[-1].exact:
                seen[-1] = root
            continue
        seen.append(root)
    return seen
