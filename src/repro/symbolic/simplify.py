"""Negligible-term simplification of performance expressions.

Section 3.1: "It is also possible for the compiler to change expressions
to simpler expressions by dropping some terms.  For example, if the
range of x is [3, 100], then the equation 4x^4 + 2x^3 - 4x + 1/x^3 can
be changed into 4x^4 + 2x^3 - 4x."

A term is dropped only with a *certificate*: its worst-case magnitude
over the variable box must be at most ``rel_tol`` times the best-case
magnitude of the dominant term.  Dropping is therefore sound for
ranking purposes up to the stated tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .intervals import Bounds, Interval
from .poly import Poly

__all__ = ["DroppedTerm", "SimplifyResult", "drop_negligible_terms"]

_DEFAULT_REL_TOL = Fraction(1, 1000)


@dataclass(frozen=True)
class DroppedTerm:
    """Record of one dropped term and the bound that justified it."""

    term: Poly
    max_abs: float

    def __str__(self) -> str:
        return f"dropped {self.term} (|term| <= {self.max_abs:.3g} over bounds)"


@dataclass(frozen=True)
class SimplifyResult:
    """The simplified polynomial plus an audit trail of dropped terms."""

    poly: Poly
    dropped: tuple[DroppedTerm, ...]

    @property
    def changed(self) -> bool:
        return bool(self.dropped)


def _term_abs_sup(mono, coeff: Fraction, bounds: Bounds) -> float:
    """Supremum of |coeff * monomial| over the box (may be inf)."""
    acc = Interval.point(1)
    for var, exp in mono:
        interval = bounds.get(var)
        if interval is None:
            return float("inf")
        try:
            acc = acc * interval.power(exp)
        except ValueError:
            return float("inf")
    return abs(float(coeff)) * float(acc.abs_sup())


def _term_abs_inf(mono, coeff: Fraction, bounds: Bounds) -> float:
    """Infimum of |coeff * monomial| over the box (0 when sign can vanish)."""
    acc_lo = 1.0
    for var, exp in mono:
        interval = bounds.get(var)
        if interval is None:
            return 0.0
        try:
            powered = interval.power(exp)
        except ValueError:
            return 0.0
        lo, hi = float(powered.lo), float(powered.hi)
        if lo <= 0.0 <= hi:
            return 0.0
        acc_lo *= min(abs(lo), abs(hi))
    return abs(float(coeff)) * acc_lo


def drop_negligible_terms(
    poly: Poly,
    bounds: Bounds,
    rel_tol: Fraction | float = _DEFAULT_REL_TOL,
) -> SimplifyResult:
    """Drop terms provably negligible relative to the dominant term.

    A term ``t`` is dropped when ``sup |t| <= rel_tol * max_s inf |s|``
    where the max ranges over the *kept* candidates.  The dominant term
    is never dropped.  Variables without bounds are treated as unbounded,
    which prevents dropping any term that mentions them.
    """
    if len(poly) <= 1:
        return SimplifyResult(poly, ())
    rel = float(rel_tol)
    infima = {
        mono: _term_abs_inf(mono, coeff, bounds) for mono, coeff in poly.terms.items()
    }
    dominant_floor = max(infima.values(), default=0.0)
    if dominant_floor == 0.0:
        return SimplifyResult(poly, ())
    kept: dict = {}
    dropped: list[DroppedTerm] = []
    for mono, coeff in poly.terms.items():
        sup = _term_abs_sup(mono, coeff, bounds)
        # Keep the dominant term unconditionally.
        if infima[mono] == dominant_floor or sup > rel * dominant_floor:
            kept[mono] = coeff
        else:
            dropped.append(DroppedTerm(Poly({mono: coeff}), sup))
    return SimplifyResult(Poly(kept), tuple(dropped))
