"""repro: Precise Compile-Time Performance Prediction for Superscalar-Based Computers.

A full reproduction of Ko-Yang Wang's PLDI 1994 performance-prediction
framework: a Tetris-style superscalar cost model with coverable and
noncoverable costs, two-level instruction translation that imitates the
back-end, symbolic cost aggregation over loops and conditionals,
symbolic comparison with run-time test generation and sensitivity
analysis, and a performance-guided A* program restructurer -- plus the
substrates (a mini-Fortran front-end, dependence analysis, a reference
scheduler standing in for IBM xlf, cache/TLB and message-passing cost
models) needed to run the paper's evaluation end to end.

Quick start::

    import repro

    program = repro.parse_program('''
    program saxpy
      integer n, i
      real x(n), y(n), alpha
      do i = 1, n
        y(i) = y(i) + alpha * x(i)
      end do
    end
    ''')
    cost = repro.predict(program, machine="power")
    print(cost)                      # e.g. 3*n + 8   (cycles, symbolic)
    print(cost.evaluate({"n": 100})) # exact rational cycle count
"""

from .aggregate import CostAggregator, LibraryCostTable, aggregate_program
from .backend import simulate, simulate_loop
from .baselines import GuessPolicy, OpCountEstimator, guess_all, guessed_comparison
from .compare import (
    ComparisonResult,
    Verdict,
    build_guard,
    compare,
    rank_variables,
    region_report,
    winner_regions,
    worth_testing,
)
from .cost import BlockCost, CostBlock, StraightLineEstimator, place_stream
from .ir import (
    Program,
    SymbolTable,
    parse_expression,
    parse_fragment,
    parse_program,
    print_program,
    program_digest,
)
from .machine import Machine, get_machine, machine_names, register_machine
from .memory import MemoryCostModel
from .comm import CommunicationCostModel, ethernet_cluster, sp1_network
from .symbolic import Interval, PerfExpr, Poly, Sign, UnknownKind
from .transform import (
    Distribute,
    Fuse,
    IncrementalPredictor,
    Interchange,
    ReorderStatements,
    StripMine,
    Tile2D,
    Unroll,
    UnrollAndJam,
    astar_search,
    exhaustive_search,
)
from .translate import AGGRESSIVE_BACKEND, NAIVE_BACKEND, BackendFlags, Translator
from .service import (
    CompareRequest,
    KernelsRequest,
    PredictRequest,
    PredictionEngine,
    PredictionServer,
    RestructureRequest,
    ServiceError,
    make_server,
)

__version__ = "1.1.0"

__all__ = [
    "AGGRESSIVE_BACKEND", "BackendFlags", "BlockCost", "CompareRequest",
    "ComparisonResult",
    "CommunicationCostModel", "CostAggregator", "CostBlock", "Distribute",
    "Fuse", "GuessPolicy", "IncrementalPredictor", "Interchange", "Interval",
    "KernelsRequest",
    "LibraryCostTable", "Machine", "MemoryCostModel", "NAIVE_BACKEND",
    "OpCountEstimator", "PerfExpr", "Poly", "PredictRequest",
    "PredictionEngine", "PredictionServer", "Program", "ReorderStatements",
    "RestructureRequest", "ServiceError",
    "Sign", "StraightLineEstimator", "StripMine", "SymbolTable", "Tile2D",
    "Translator", "Unroll", "UnrollAndJam", "UnknownKind", "Verdict", "aggregate_program",
    "astar_search", "build_guard", "compare", "ethernet_cluster",
    "exhaustive_search", "get_machine", "guess_all", "guessed_comparison",
    "machine_names", "make_server", "parse_expression", "parse_fragment",
    "parse_program",
    "place_stream", "predict", "print_program", "program_digest",
    "rank_variables",
    "region_report", "register_machine", "simulate", "simulate_loop",
    "sp1_network", "winner_regions", "worth_testing",
]


def predict(
    program: Program,
    machine: str | Machine = "power",
    flags: BackendFlags = AGGRESSIVE_BACKEND,
    include_memory: bool = False,
    focus_span: int | None = None,
) -> PerfExpr:
    """Predict the symbolic cycle cost of a program (the one-call API).

    ``machine`` is a registered machine name or a :class:`Machine`;
    ``include_memory`` adds the cache/TLB cost terms (Figure 7 excludes
    them, so the default matches the paper).
    """
    target = get_machine(machine) if isinstance(machine, str) else machine
    kwargs = {}
    if focus_span is not None:
        kwargs["focus_span"] = focus_span
    if include_memory:
        kwargs["memory_model"] = MemoryCostModel(target)
        kwargs["include_memory"] = True
    return aggregate_program(program, target, flags=flags, **kwargs)
