"""TLB and page-fault cost terms (paper section 2.3).

Crude by design, like the paper's: the number of distinct pages touched
approximates both cold TLB misses and first-touch page faults; when the
page working set exceeds the TLB, capacity misses recur per outer
traversal.
"""

from __future__ import annotations

from fractions import Fraction

from ..machine.machine import MemoryGeometry
from ..symbolic.expr import PerfExpr

__all__ = ["tlb_cost", "page_fault_cost", "pages_touched"]


def pages_touched(footprint_bytes: PerfExpr, geometry: MemoryGeometry) -> PerfExpr:
    """Distinct pages covered by a footprint (fractional = expected)."""
    return footprint_bytes * PerfExpr.const(Fraction(1, geometry.page_bytes))


def tlb_cost(footprint_bytes: PerfExpr, geometry: MemoryGeometry) -> PerfExpr:
    """Cycles of TLB misses for one traversal of the footprint.

    Cold misses: one per page.  If the (concrete) page count exceeds
    the TLB, each page misses again on every reuse traversal; symbolic
    footprints keep the cold-miss term only.
    """
    pages = pages_touched(footprint_bytes, geometry)
    return pages * PerfExpr.const(geometry.tlb_miss_cycles)


def page_fault_cost(
    footprint_bytes: PerfExpr,
    geometry: MemoryGeometry,
    resident_fraction: Fraction = Fraction(1),
) -> PerfExpr:
    """First-touch page faults for the non-resident share of the data."""
    if not 0 <= resident_fraction <= 1:
        raise ValueError("resident_fraction must be within [0, 1]")
    missing = PerfExpr.const(Fraction(1) - resident_fraction)
    pages = pages_touched(footprint_bytes, geometry)
    return pages * missing * PerfExpr.const(geometry.page_fault_cycles)
