"""Reference set-associative cache simulator (validation substrate).

The line-counting model of :mod:`repro.memory.cache` is an analytical
approximation; this simulator is its ground truth.  Bench ``E-MEM``
enumerates a loop nest's actual address trace for concrete bounds and
compares simulated misses against the model's counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..ir.nodes import ArrayRef, Assign, Do, IntConst, Stmt, VarRef
from ..ir.symtab import SymbolTable
from ..ir.visitor import walk_exprs
from ..machine.machine import MemoryGeometry

__all__ = ["SetAssociativeCache", "trace_nest", "simulate_nest_misses"]


class SetAssociativeCache:
    """An LRU set-associative cache over byte addresses."""

    def __init__(self, geometry: MemoryGeometry):
        self.line = geometry.cache_line_bytes
        self.sets = max(
            1,
            geometry.cache_size_bytes
            // (geometry.cache_line_bytes * geometry.cache_associativity),
        )
        self.ways = geometry.cache_associativity
        self._sets: list[list[int]] = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        tag = address // self.line
        index = tag % self.sets
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)  # most recently used at the end
            self.hits += 1
            return True
        ways.append(tag)
        if len(ways) > self.ways:
            ways.pop(0)
        self.misses += 1
        return False

    def run(self, addresses: Iterable[int]) -> None:
        for address in addresses:
            self.access(address)


@dataclass
class _ArrayLayout:
    base: int
    dims: tuple[int, ...]
    element_bytes: int

    def address(self, subscripts: tuple[int, ...]) -> int:
        # Fortran column-major, 1-based subscripts.
        offset = 0
        stride = 1
        for sub, dim in zip(subscripts, self.dims):
            offset += (sub - 1) * stride
            stride *= dim
        return self.base + offset * self.element_bytes


def _eval_expr(expr, env: dict[str, int]) -> int:
    from ..ir.nodes import BinOp, UnOp

    if isinstance(expr, IntConst):
        return expr.value
    if isinstance(expr, VarRef):
        return env[expr.name]
    if isinstance(expr, UnOp) and expr.op == "-":
        return -_eval_expr(expr.operand, env)
    if isinstance(expr, BinOp):
        left = _eval_expr(expr.left, env)
        right = _eval_expr(expr.right, env)
        ops = {"+": lambda: left + right, "-": lambda: left - right,
               "*": lambda: left * right, "/": lambda: left // right,
               "**": lambda: left ** right}
        if expr.op in ops:
            return ops[expr.op]()
    raise ValueError(f"cannot evaluate {expr} numerically")


def trace_nest(
    loop: Do,
    symtab: SymbolTable,
    env: dict[str, int],
    dim_sizes: dict[str, tuple[int, ...]],
) -> list[int]:
    """Enumerate the nest's byte-address trace for concrete bounds.

    ``env`` binds free scalars (e.g. ``n``); ``dim_sizes`` gives each
    array's concrete extents.  Arrays are laid out back to back with
    padding so they never alias.
    """
    layouts: dict[str, _ArrayLayout] = {}
    base = 0
    for name, dims in sorted(dim_sizes.items()):
        element = symtab.scalar_type(name).size_bytes
        layouts[name] = _ArrayLayout(base, dims, element)
        size = element
        for d in dims:
            size *= d
        base += size + 1024  # pad between arrays

    trace: list[int] = []

    def run_stmts(stmts: tuple[Stmt, ...], local: dict[str, int]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Do):
                lb = _eval_expr(stmt.lb, local)
                ub = _eval_expr(stmt.ub, local)
                step = _eval_expr(stmt.step, local)
                k = lb
                while (step > 0 and k <= ub) or (step < 0 and k >= ub):
                    run_stmts(stmt.body, {**local, stmt.var: k})
                    k += step
            elif isinstance(stmt, Assign):
                for node in walk_exprs(stmt.value):
                    if isinstance(node, ArrayRef):
                        _touch(node, local)
                if isinstance(stmt.target, ArrayRef):
                    _touch(stmt.target, local)
            else:
                raise ValueError(f"trace_nest cannot handle {stmt}")

    def _touch(ref: ArrayRef, local: dict[str, int]) -> None:
        layout = layouts[ref.name]
        subs = tuple(_eval_expr(s, local) for s in ref.subscripts)
        trace.append(layout.address(subs))

    run_stmts((loop,), dict(env))
    return trace


def simulate_nest_misses(
    loop: Do,
    symtab: SymbolTable,
    geometry: MemoryGeometry,
    env: dict[str, int],
    dim_sizes: dict[str, tuple[int, ...]],
) -> tuple[int, int]:
    """(misses, total accesses) of the nest on the reference cache."""
    trace = trace_nest(loop, symtab, env, dim_sizes)
    cache = SetAssociativeCache(geometry)
    cache.run(trace)
    return cache.misses, len(trace)
