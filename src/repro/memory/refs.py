"""Array-reference footprint analysis for the memory cost model.

For each array reference in a loop nest we need, per loop level: does
the reference *move* with that loop, and if it moves through the
contiguous (first, in Fortran's column-major order) dimension, with
what stride?  That is all the line-counting model of Ferrante, Sarkar
and Thrash needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..analysis.dependence import _affine_parts, _NotAffine
from ..ir.nodes import ArrayRef, Assign, Do, Stmt
from ..ir.symtab import SymbolTable
from ..ir.visitor import walk_exprs, walk_stmts

__all__ = ["RefBehavior", "LevelBehavior", "collect_references", "analyze_reference"]


@dataclass(frozen=True)
class LevelBehavior:
    """How one reference behaves w.r.t. one loop level."""

    index: str
    moves: bool                 # subscripts mention this index
    contiguous_stride: Fraction | None  # stride (elements) in dim 1, if that
    # dimension is affine in this index; None when the index only moves
    # non-contiguous dimensions (every iteration touches a new line).


@dataclass(frozen=True)
class RefBehavior:
    """Per-level behavior of one array reference."""

    ref: ArrayRef
    element_bytes: int
    levels: tuple[LevelBehavior, ...]

    def behavior_at(self, index: str) -> LevelBehavior:
        for level in self.levels:
            if level.index == index:
                return level
        raise KeyError(index)


def collect_references(body: tuple[Stmt, ...]) -> list[ArrayRef]:
    """Every distinct array reference in a statement tree (reads+writes)."""
    seen: list[ArrayRef] = []
    for stmt in walk_stmts(body):
        exprs = []
        if isinstance(stmt, Assign):
            exprs.append(stmt.value)
            if isinstance(stmt.target, ArrayRef):
                exprs.append(stmt.target)
        elif isinstance(stmt, Do):
            exprs.extend([stmt.lb, stmt.ub, stmt.step])
        elif hasattr(stmt, "cond"):
            exprs.append(stmt.cond)
        for expr in exprs:
            for node in walk_exprs(expr):
                if isinstance(node, ArrayRef) and node not in seen:
                    seen.append(node)
    return seen


def analyze_reference(
    ref: ArrayRef,
    symtab: SymbolTable,
    nest_indices: tuple[str, ...],
) -> RefBehavior:
    """Per-level movement/stride classification of one reference."""
    element_bytes = symtab.scalar_type(ref.name).size_bytes
    levels: list[LevelBehavior] = []
    for index in nest_indices:
        moves = False
        contiguous: Fraction | None = None
        only_contiguous = True
        for dim, sub in enumerate(ref.subscripts):
            try:
                coeff, _, _ = _affine_parts(sub, index)
            except _NotAffine:
                # Unknown subscript: assume it moves, non-contiguously.
                if _mentions(sub, index):
                    moves = True
                    only_contiguous = False
                continue
            if coeff != 0:
                moves = True
                if dim == 0:
                    contiguous = abs(coeff)
                else:
                    only_contiguous = False
        if not moves:
            levels.append(LevelBehavior(index, False, None))
        elif contiguous is not None and only_contiguous:
            levels.append(LevelBehavior(index, True, contiguous))
        else:
            levels.append(LevelBehavior(index, True, None))
    return RefBehavior(ref, element_bytes, tuple(levels))


def _mentions(expr, index: str) -> bool:
    from ..ir.nodes import VarRef

    return any(
        isinstance(node, VarRef) and node.name == index
        for node in walk_exprs(expr)
    )
