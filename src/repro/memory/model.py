"""Memory cost model facade (paper section 2.3).

"The memory access cost (cache misses, TLB misses and page faults) is
computed independent from the straight line code estimation because the
former is a more global matter."
"""

from __future__ import annotations

from fractions import Fraction

from ..ir.nodes import Do
from ..ir.symtab import SymbolTable
from ..machine.machine import Machine, MemoryGeometry
from ..symbolic.expr import PerfExpr
from .cache import NestAccessModel, count_nest_lines
from .tlb import page_fault_cost, tlb_cost

__all__ = ["MemoryCostModel"]


class MemoryCostModel:
    """Per-loop-nest memory cost: cache-line fills + TLB + page faults."""

    def __init__(
        self,
        machine: Machine,
        include_tlb: bool = True,
        include_page_faults: bool = False,
        resident_fraction: Fraction = Fraction(1),
    ):
        self.machine = machine
        self.geometry: MemoryGeometry = machine.memory
        self.include_tlb = include_tlb
        self.include_page_faults = include_page_faults
        self.resident_fraction = resident_fraction

    def nest_model(self, loop: Do, symtab: SymbolTable) -> NestAccessModel:
        """The per-reference line counts (exposed for benches/examples)."""
        return count_nest_lines(loop, symtab, self.geometry)

    def loop_cost(
        self,
        loop: Do,
        symtab: SymbolTable,
        enclosing: tuple[str, ...] = (),
    ) -> PerfExpr:
        """Memory cycles of the nest rooted at ``loop``.

        ``enclosing`` is accepted for interface symmetry with the
        aggregator; reuse across *enclosing* loops is not modeled (the
        nest is costed as if entered cold each time, which matches the
        cold-miss character of the underlying model).
        """
        model = self.nest_model(loop, symtab)
        lines = model.total_lines()
        total = lines * PerfExpr.const(self.geometry.cache_miss_cycles)
        if self.include_tlb or self.include_page_faults:
            footprint = PerfExpr.zero()
            for ref in model.refs:
                footprint = footprint + ref.footprint_bytes
            if self.include_tlb:
                total = total + tlb_cost(footprint, self.geometry)
            if self.include_page_faults:
                total = total + page_fault_cost(
                    footprint, self.geometry, self.resident_fraction
                )
        return total
