"""Cache-line access counting (paper section 2.3).

"The total number of cache line accesses is counted and the cost of
filling these cache lines is used to approximate the memory cost" --
the approach of Ferrante, Sarkar and Thrash [8] that the paper adopts.

For each reference, walking the nest from innermost to outermost:

* a level whose index the reference ignores contributes factor 1 when
  the inner footprint still fits in cache (temporal reuse), otherwise
  the full trip count (reuse evicted);
* a level moving only the contiguous dimension with stride ``s``
  contributes ``trips * min(1, s*elsize/line)`` distinct lines
  (spatial locality);
* any other moving level contributes the full trip count.

Counts are exact Fractions when the trip counts are concrete and
symbolic polynomials otherwise (capacity checks then assume the
optimistic cold-miss case and note it).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..analysis.loops import perfect_nest, trip_count
from ..ir.nodes import Do
from ..ir.symtab import SymbolTable
from ..machine.machine import MemoryGeometry
from ..symbolic.expr import PerfExpr
from .refs import analyze_reference, collect_references

__all__ = ["RefLineCount", "NestAccessModel", "count_nest_lines"]


@dataclass(frozen=True)
class RefLineCount:
    """Line-access count for one reference across the whole nest."""

    name: str
    lines: PerfExpr
    footprint_bytes: PerfExpr
    capacity_spill: bool  # some temporal reuse was evicted


@dataclass(frozen=True)
class NestAccessModel:
    """All references of one nest with their line counts."""

    refs: tuple[RefLineCount, ...]

    def total_lines(self) -> PerfExpr:
        total = PerfExpr.zero()
        for ref in self.refs:
            total = total + ref.lines
        return total


def count_nest_lines(
    loop: Do,
    symtab: SymbolTable,
    geometry: MemoryGeometry,
) -> NestAccessModel:
    """Count distinct cache-line accesses of the nest rooted at ``loop``."""
    nest = perfect_nest(loop)
    indices = tuple(info.index for info in nest)       # outermost first
    trips = [trip_count(info.loop) for info in nest]
    body = nest[-1].loop.body
    refs = collect_references(body)
    out: list[RefLineCount] = []
    for ref in refs:
        behavior = analyze_reference(ref, symtab, indices)
        lines = PerfExpr.const(1)
        footprint = PerfExpr.const(behavior.element_bytes)
        spill = False
        # innermost -> outermost
        for level in range(len(indices) - 1, -1, -1):
            index = indices[level]
            trip = trips[level]
            level_behavior = behavior.behavior_at(index)
            occupied = lines * PerfExpr.const(geometry.cache_line_bytes)
            if not level_behavior.moves:
                # Temporal reuse across this level -- valid only while
                # the lines held so far survive an inner traversal.
                if _exceeds_cache(occupied, geometry):
                    lines = lines * trip
                    spill = True
                continue
            stride = level_behavior.contiguous_stride
            if stride is not None:
                spatial = min(
                    Fraction(1),
                    Fraction(stride * behavior.element_bytes,
                             geometry.cache_line_bytes),
                )
                # Spatial reuse across an *outer* level (several index
                # values share a line) requires the line to survive a
                # whole inner traversal: check capacity like temporal
                # reuse does.
                if spatial < 1 and _exceeds_cache(occupied, geometry):
                    spatial = Fraction(1)
                    spill = True
                lines = lines * trip * PerfExpr.const(spatial)
                footprint = footprint * trip * PerfExpr.const(
                    min(Fraction(1), stride)
                )
            else:
                lines = lines * trip
                footprint = footprint * trip
        out.append(RefLineCount(ref.name, lines, footprint, spill))
    return NestAccessModel(tuple(out))


def _exceeds_cache(footprint: PerfExpr, geometry: MemoryGeometry) -> bool:
    """Does the accumulated footprint overflow the cache?

    Concrete footprints compare exactly; symbolic ones use their lower
    bound when available and otherwise optimistically assume they fit
    (the paper's model is a cold-miss approximation too).
    """
    if footprint.is_constant():
        return footprint.constant_value() > geometry.cache_size_bytes
    try:
        from ..symbolic.intervals import bound_poly

        enclosure = bound_poly(footprint.poly, footprint.effective_bounds())
    except Exception:
        return False
    return float(enclosure.lo) > geometry.cache_size_bytes
