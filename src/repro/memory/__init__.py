"""Memory cost model: cache-line counting, TLB/page terms, reference
cache simulator (paper section 2.3)."""

from .cache import NestAccessModel, RefLineCount, count_nest_lines
from .model import MemoryCostModel
from .refs import LevelBehavior, RefBehavior, analyze_reference, collect_references
from .simcache import SetAssociativeCache, simulate_nest_misses, trace_nest
from .tlb import page_fault_cost, pages_touched, tlb_cost

__all__ = [
    "LevelBehavior", "MemoryCostModel", "NestAccessModel", "RefBehavior",
    "RefLineCount", "SetAssociativeCache", "analyze_reference",
    "collect_references", "count_nest_lines", "page_fault_cost",
    "pages_touched", "simulate_nest_misses", "tlb_cost", "trace_nest",
]
