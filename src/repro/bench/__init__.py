"""Benchmark kernels (Figure 7 suite) and synthetic workload generators."""

from .kernels import (
    KERNELS,
    Kernel,
    innermost_block,
    kernel,
    kernel_names,
    kernel_stream,
)
from .workloads import random_block_program, random_stream

__all__ = [
    "KERNELS", "Kernel", "innermost_block", "kernel", "kernel_names",
    "kernel_stream", "random_block_program", "random_stream",
]
