"""The Figure 7 kernel suite.

"For the table in Figure 7, F1-F7 are innermost basic blocks taken from
Purdue benchmarks in the HPF Benchmark suite.  Matmul is the innermost
basic block of a matrix-multiply loop which is blocked and unrolled 4
times in both dimensions (a total of 16 FMA operations in the basic
block).  Jacobi is the innermost basic block of Jacobi loops.  And RB
is the innermost basic block of the red-black loops."

The Purdue set is not redistributable, so F1-F7 are reconstructed with
the same structural character (mixed FP array/scalar innermost blocks
of scientific Fortran); Matmul, Jacobi, and RB follow the paper's
description exactly.  See DESIGN.md for the substitution note.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..ir.nodes import Do, Program, Stmt
from ..ir.parser import parse_program
from ..ir.symtab import SymbolTable
from ..machine.machine import Machine
from ..translate.backend_opts import AGGRESSIVE_BACKEND, BackendFlags
from ..translate.translator import BlockInfo, Translator

__all__ = ["Kernel", "KERNELS", "kernel", "kernel_names", "innermost_block",
           "kernel_stream"]


@dataclass(frozen=True)
class Kernel:
    """One named benchmark kernel: a full program plus metadata."""

    name: str
    description: str
    source: str

    @property
    def program(self) -> Program:
        return _parse(self.source)

    def symtab(self) -> SymbolTable:
        return SymbolTable.from_program(self.program)


@lru_cache(maxsize=None)
def _parse(source: str) -> Program:
    return parse_program(source)


def _matmul_4x4_source() -> str:
    """Blocked + 4x4-unrolled matmul: 16 FMAs in the k-loop body."""
    lines = [
        "program matmul44",
        "  integer n, i, j, k",
        "  real a(n,n), b(n,n), c(n,n)",
        "  do i = 1, n, 4",
        "    do j = 1, n, 4",
        "      do k = 1, n",
    ]
    for di in range(4):
        for dj in range(4):
            lines.append(
                f"        c(i+{di},j+{dj}) = c(i+{di},j+{dj})"
                f" + a(i+{di},k) * b(k,j+{dj})"
            )
    lines += ["      end do", "    end do", "  end do", "end"]
    return "\n".join(lines) + "\n"


KERNELS: dict[str, Kernel] = {
    "f1": Kernel(
        "f1", "dual product accumulate: x(i) = a*b + c*d",
        """
program f1
  integer n, i
  real a(n), b(n), c(n), d(n), x(n)
  do i = 1, n
    x(i) = a(i) * b(i) + c(i) * d(i)
  end do
end
""",
    ),
    "f2": Kernel(
        "f2", "scaled update (axpy with scalar coefficients)",
        """
program f2
  integer n, i
  real a(n), b(n), y(n)
  real alpha, beta
  do i = 1, n
    y(i) = alpha * a(i) + beta * b(i)
  end do
end
""",
    ),
    "f3": Kernel(
        "f3", "sum of squares reduction",
        """
program f3
  integer n, i
  real a(n), s
  do i = 1, n
    s = s + a(i) * a(i)
  end do
end
""",
    ),
    "f4": Kernel(
        "f4", "2-norm of point pairs (sqrt in the block)",
        """
program f4
  integer n, i
  real x(n), y(n), r(n)
  do i = 1, n
    r(i) = sqrt(x(i) * x(i) + y(i) * y(i))
  end do
end
""",
    ),
    "f5": Kernel(
        "f5", "Horner evaluation of a cubic polynomial",
        """
program f5
  integer n, i
  real x(n), y(n)
  real c0, c1, c2, c3
  do i = 1, n
    y(i) = ((c3 * x(i) + c2) * x(i) + c1) * x(i) + c0
  end do
end
""",
    ),
    "f6": Kernel(
        "f6", "explicit time-step update",
        """
program f6
  integer n, i
  real u(n), f(n), g(n)
  real dt
  do i = 1, n
    u(i) = u(i) + dt * (f(i) - g(i))
  end do
end
""",
    ),
    "f7": Kernel(
        "f7", "three-point weighted interpolation",
        """
program f7
  integer n, i
  real a(n), v(n)
  real w1, w2, w3
  do i = 1, n
    v(i) = w1 * a(i) + w2 * a(i+1) + w3 * a(i+2)
  end do
end
""",
    ),
    "matmul": Kernel(
        "matmul",
        "matrix multiply, blocked and unrolled 4x4 (16 FMA basic block)",
        _matmul_4x4_source(),
    ),
    "jacobi": Kernel(
        "jacobi", "Jacobi 5-point relaxation sweep",
        """
program jacobi
  integer n, i, j
  real a(n,n), b(n,n)
  do j = 2, n - 1
    do i = 2, n - 1
      b(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
    end do
  end do
end
""",
    ),
    "rb": Kernel(
        "rb", "red-black Gauss-Seidel sweep (red points)",
        """
program redblack
  integer n, i, j
  real u(n,n), f(n,n)
  real omega
  do j = 2, n - 1
    do i = 2, n - 1, 2
      u(i,j) = u(i,j) + omega * (u(i-1,j) + u(i+1,j) + u(i,j-1) &
               + u(i,j+1) - 4.0 * u(i,j) - f(i,j))
    end do
  end do
end
""",
    ),
}


def kernel_names() -> list[str]:
    """Figure 7 row order."""
    return ["f1", "f2", "f3", "f4", "f5", "f6", "f7", "matmul", "jacobi", "rb"]


def kernel(name: str) -> Kernel:
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(kernel_names())}"
        ) from None


def innermost_block(k: Kernel) -> tuple[tuple[Stmt, ...], tuple[str, ...]]:
    """(innermost straight-line body, enclosing loop indices)."""
    indices: list[str] = []
    stmts: tuple[Stmt, ...] = k.program.body
    while len(stmts) >= 1 and isinstance(stmts[0], Do):
        loop = stmts[0]
        indices.append(loop.var)
        stmts = loop.body
    return stmts, tuple(indices)


def kernel_stream(
    k: Kernel,
    machine: Machine,
    flags: BackendFlags = AGGRESSIVE_BACKEND,
) -> BlockInfo:
    """Translate the kernel's innermost basic block for one machine."""
    stmts, indices = innermost_block(k)
    translator = Translator(machine, k.symtab(), flags)
    return translator.translate_block(stmts, indices, label=k.name)
