"""Synthetic workload generators for stress and efficiency benches.

``random_block`` builds deterministic pseudo-random straight-line
blocks (seeded) with a controllable operation mix; ``random_stream``
skips the front-end and emits atomic instruction DAGs directly.  Both
are used by E-EFF (estimations/second, linearity in block size) and the
property-test style stress benches.
"""

from __future__ import annotations

import random

from ..ir import builder as b
from ..ir.nodes import Program, Stmt
from ..machine.machine import Machine
from ..translate.stream import InstrStream

__all__ = ["random_block_program", "random_stream"]

_ARRAYS = ["aa", "bb", "cc", "dd"]
_SCALARS = ["s1", "s2", "s3"]


def random_block_program(size: int, seed: int = 0) -> Program:
    """A program whose single loop body has ``size`` random statements.

    Statements mix array loads/stores, scalar temporaries, multiplies
    and adds -- roughly the texture of unrolled scientific inner loops.
    """
    rng = random.Random(seed)
    stmts: list[Stmt] = []
    for k in range(size):
        target_array = rng.choice(_ARRAYS)
        lhs = b.aref(target_array, b.add(b.var("i"), b.lit(k % 7)))
        terms = []
        for _ in range(rng.randint(1, 3)):
            source = rng.choice(_ARRAYS)
            offset = rng.randint(0, 4)
            ref = b.aref(source, b.add(b.var("i"), b.lit(offset)))
            if rng.random() < 0.5:
                terms.append(b.mul(b.var(rng.choice(_SCALARS)), ref))
            else:
                terms.append(ref)
        expr = terms[0]
        for term in terms[1:]:
            expr = b.add(expr, term) if rng.random() < 0.8 else b.sub(expr, term)
        stmts.append(b.assign(lhs, expr))
    decls = [b.array_decl(name, "n+8") for name in _ARRAYS]
    decls += [b.decl(name) for name in _SCALARS]
    decls += [b.decl("n", scalar=b.ScalarType.INTEGER),
              b.decl("i", scalar=b.ScalarType.INTEGER)]
    loop = b.do_("i", 1, b.var("n"), stmts)
    return b.program(f"rand{size}_{seed}", decls, [loop])


def random_stream(
    machine: Machine, size: int, seed: int = 0, dep_prob: float = 0.4
) -> InstrStream:
    """A random atomic-op DAG straight on one machine's vocabulary."""
    rng = random.Random(seed)
    names = [n for n in machine.table.names() if "call" not in n]
    stream = InstrStream(machine_name=machine.name, label=f"rand{size}")
    for i in range(size):
        deps: tuple[int, ...] = ()
        if i and rng.random() < dep_prob:
            count = rng.randint(1, min(2, i))
            deps = tuple(sorted(rng.sample(range(i), count)))
        stream.append(rng.choice(names), deps)
    return stream
