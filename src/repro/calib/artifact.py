"""Versioned cost-table artifacts: calibrated machines on disk.

A calibration run emits one JSON document carrying everything needed
to rebuild the machine -- units, widths, the fitted table, the atomic
mapping -- plus provenance (format version, source oracle id, fit
residuals).  Loading is *strict*: a wrong format version, an unknown
unit kind, an atomic mapping referencing an op the table does not
define, or a truncated file are all hard errors -- a service must
never silently serve predictions off a half-read cost table.

``Machine.fingerprint()`` hashes the full table, so any change to a
stored artifact yields a different fingerprint and invalidates cached
results when the machine is (re)registered.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Mapping

from ..machine.atomic import AtomicCostTable, AtomicOp
from ..machine.machine import Machine, MemoryGeometry
from ..machine.registry import register_machine
from ..machine.units import FunctionalUnit, UnitCost, UnitKind

__all__ = [
    "ArtifactError", "COST_TABLE_FORMAT", "load_cost_table",
    "machine_from_artifact", "register_calibrated", "result_to_payload",
    "save_cost_table",
]

COST_TABLE_FORMAT = "repro-cost-table-v1"


class ArtifactError(ValueError):
    """A cost-table artifact failed validation."""


def result_to_payload(result, *, created: str | None = None) -> dict:
    """Serialize a :class:`~repro.calib.fit.CalibrationResult`."""
    machine = result.machine
    payload = {
        "format": COST_TABLE_FORMAT,
        "name": machine.name,
        "oracle_id": result.oracle_id,
        "residuals": {k: round(v, 6) for k, v in result.residuals.items()},
        "mean_abs_residual": round(result.mean_abs_residual, 6),
        "probes": result.probes,
        "machine": _machine_meta(machine),
        "table": _table_to_dict(machine.table),
        "atomic_mapping": {basic: list(atomics) for basic, atomics
                           in machine.atomic_mapping.items()},
    }
    if created is not None:
        payload["created"] = created
    return payload


def save_cost_table(result, path: str, *, created: str | None = None) -> dict:
    """Write the artifact atomically; returns the payload written."""
    payload = result_to_payload(result, created=created)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return payload


def load_cost_table(path: str) -> dict:
    """Read and strictly validate an artifact; returns the payload."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise ArtifactError(f"cannot read cost table {path}: {error}")
    except json.JSONDecodeError as error:
        raise ArtifactError(
            f"cost table {path} is not valid JSON (truncated?): {error}")
    validate_payload(payload, source=path)
    return payload


def validate_payload(payload, *, source: str = "<payload>") -> None:
    if not isinstance(payload, dict):
        raise ArtifactError(f"cost table {source}: not a JSON object")
    fmt = payload.get("format")
    if fmt != COST_TABLE_FORMAT:
        raise ArtifactError(
            f"cost table {source}: format {fmt!r} != {COST_TABLE_FORMAT!r}")
    for field in ("name", "oracle_id"):
        if not isinstance(payload.get(field), str) or not payload[field]:
            raise ArtifactError(
                f"cost table {source}: missing/bad field {field!r}")
    table = payload.get("table")
    if not isinstance(table, dict) or not table:
        raise ArtifactError(f"cost table {source}: missing table")
    valid_kinds = {kind.value for kind in UnitKind}
    for op_name, spec in table.items():
        costs = spec.get("costs") if isinstance(spec, dict) else None
        if not isinstance(costs, list) or not costs:
            raise ArtifactError(
                f"cost table {source}: op {op_name!r} has no costs")
        for cost in costs:
            if not isinstance(cost, dict):
                raise ArtifactError(
                    f"cost table {source}: op {op_name!r} bad cost entry")
            if cost.get("unit") not in valid_kinds:
                raise ArtifactError(
                    f"cost table {source}: op {op_name!r} unknown unit "
                    f"{cost.get('unit')!r}")
            for comp in ("noncoverable", "coverable"):
                value = cost.get(comp)
                if not isinstance(value, int) or value < 0:
                    raise ArtifactError(
                        f"cost table {source}: op {op_name!r} bad "
                        f"{comp} {value!r}")
            if cost["noncoverable"] + cost["coverable"] < 1:
                raise ArtifactError(
                    f"cost table {source}: op {op_name!r} zero-cycle cost")
    mapping = payload.get("atomic_mapping")
    if not isinstance(mapping, dict) or not mapping:
        raise ArtifactError(f"cost table {source}: missing atomic_mapping")
    for basic, atomics in mapping.items():
        if not isinstance(atomics, list) or not atomics:
            raise ArtifactError(
                f"cost table {source}: bad mapping for {basic!r}")
        for atomic in atomics:
            if atomic not in table:
                raise ArtifactError(
                    f"cost table {source}: mapping {basic!r} references "
                    f"unknown atomic op {atomic!r}")
    meta = payload.get("machine")
    if not isinstance(meta, dict):
        raise ArtifactError(f"cost table {source}: missing machine meta")
    units = meta.get("units")
    if not isinstance(units, list) or not units:
        raise ArtifactError(f"cost table {source}: machine meta has no units")
    for unit in units:
        if (not isinstance(unit, dict)
                or unit.get("kind") not in valid_kinds
                or not isinstance(unit.get("count"), int)
                or unit["count"] < 1):
            raise ArtifactError(
                f"cost table {source}: bad unit entry {unit!r}")
    for field in ("dispatch_width", "fp_registers", "int_registers"):
        value = meta.get(field)
        if not isinstance(value, int) or value < 1:
            raise ArtifactError(
                f"cost table {source}: bad machine {field} {value!r}")


def machine_from_artifact(payload: Mapping) -> Machine:
    """Rebuild a first-class :class:`Machine` from a validated payload."""
    validate_payload(payload)
    meta = payload["machine"]
    table = AtomicCostTable()
    for op_name in sorted(payload["table"]):
        spec = payload["table"][op_name]
        costs = tuple(
            UnitCost(UnitKind(c["unit"]), c["noncoverable"], c["coverable"])
            for c in spec["costs"]
        )
        table.define(AtomicOp(op_name, costs, spec.get("description", "")))
    memory = MemoryGeometry(**meta.get("memory", {}))
    return Machine(
        name=payload["name"],
        units=tuple(FunctionalUnit(UnitKind(u["kind"]), u["count"])
                    for u in meta["units"]),
        table=table,
        atomic_mapping={basic: tuple(atomics) for basic, atomics
                        in payload["atomic_mapping"].items()},
        supports_fma=bool(meta.get("supports_fma", False)),
        dispatch_width=meta["dispatch_width"],
        fp_registers=meta["fp_registers"],
        int_registers=meta["int_registers"],
        memory=memory,
    )


def register_calibrated(payload_or_path, *, replace: bool = True) -> str:
    """Register an artifact's machine with the registry; returns its name.

    The factory rebuilds from the captured payload, so the registry's
    identity-keyed memos see a fresh factory per registration and the
    new fingerprint invalidates stale cache entries.
    """
    if isinstance(payload_or_path, (str, os.PathLike)):
        payload = load_cost_table(os.fspath(payload_or_path))
    else:
        payload = dict(payload_or_path)
        validate_payload(payload)
    machine = machine_from_artifact(payload)

    def factory(machine=machine):
        return machine

    register_machine(machine.name, factory, replace=replace)
    return machine.name


def _machine_meta(machine: Machine) -> dict:
    return {
        "units": [{"kind": unit.kind.value, "count": unit.count}
                  for unit in machine.units],
        "dispatch_width": machine.dispatch_width,
        "supports_fma": machine.supports_fma,
        "fp_registers": machine.fp_registers,
        "int_registers": machine.int_registers,
        "memory": dataclasses.asdict(machine.memory),
    }


def _table_to_dict(table: AtomicCostTable) -> dict:
    out = {}
    for op_name in table.names():
        op = table[op_name]
        out[op_name] = {
            "description": op.description,
            "costs": [{
                "unit": cost.unit.value,
                "noncoverable": cost.noncoverable,
                "coverable": cost.coverable,
            } for cost in op.costs],
        }
    return out
