"""Probe stream families for cost-table calibration.

Three families, each isolating one aspect of an atomic operation's
cost on the target machine description:

* **serial** -- a dependence chain of one op repeated ``k`` times.
  Every instruction waits for its predecessor's result, so the
  measured time is ``k * (noncoverable + coverable)``: the chain pins
  the op's *total* result latency.
* **burst** -- ``k`` independent instances of one op.  The unit's
  pipes are the bottleneck: groups of ``p`` issue every
  ``noncoverable`` cycles and only the last group pays the coverable
  tail, so the time is ``ceil(k/p) * noncoverable + coverable``.
  Combined with the serial row this separates the coverable from the
  noncoverable component (the probe algebra assumes the machine's
  dispatch width is at least the pipe count, which holds for every
  machine in this repo).
* **interleave** -- a serial chain round-robining ops of *different*
  units (a -> b -> c -> a ...).  Each link still pays its full result
  latency, so the row is linear in the mixed totals; these rows
  over-determine the system and guard the least-squares solve against
  measurement noise.

Rows are expressed over the unknown vector
``[n_0 .. n_{K-1}, c_0 .. c_{K-1}]`` (noncoverable, then coverable,
for each calibrated op's primary cost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..machine.machine import Machine
from ..translate.stream import Instr

__all__ = ["Probe", "make_probe_family"]

DEFAULT_CHAIN_LENGTHS = (6, 10)
DEFAULT_BURST_LENGTHS = (4, 8)


@dataclass(frozen=True)
class Probe:
    """One probe: a named instruction stream plus its design row.

    ``row`` holds the linear coefficients of the probe's predicted
    cycle count over ``[n_0..n_{K-1}, c_0..c_{K-1}]``.
    """

    name: str
    instrs: tuple[Instr, ...]
    row: tuple[float, ...]
    kind: str

    def predicted(self, solution: Sequence[float]) -> float:
        return sum(a * x for a, x in zip(self.row, solution))


def _serial(name: str, ops: Sequence[str]) -> tuple[Instr, ...]:
    return tuple(
        Instr(i, op, deps=(i - 1,) if i else ())
        for i, op in enumerate(ops)
    )


def _burst(name: str, op: str, k: int) -> tuple[Instr, ...]:
    return tuple(Instr(i, op, deps=()) for i in range(k))


def _primary_unit(machine: Machine, op_name: str):
    """The cost entry that sets the op's result latency."""
    op = machine.atomic(op_name)
    for cost in op.costs:
        if cost.total == op.result_latency:
            return cost
    return op.costs[0]  # pragma: no cover - result_latency is a max


def make_probe_family(
    machine: Machine,
    ops: Sequence[str] | None = None,
    chain_lengths: Sequence[int] = DEFAULT_CHAIN_LENGTHS,
    burst_lengths: Sequence[int] = DEFAULT_BURST_LENGTHS,
) -> tuple[list[str], list[Probe]]:
    """Build the full probe family for ``ops`` on ``machine``.

    Returns ``(names, probes)`` where ``names`` fixes the unknown
    ordering: unknown ``i`` is ``names[i]``'s noncoverable component
    and unknown ``len(names) + i`` its coverable component.
    """
    names = list(ops) if ops is not None else machine.table.names()
    if not names:
        raise ValueError("no operations to calibrate")
    index = {name: i for i, name in enumerate(names)}
    count = len(names)
    probes: list[Probe] = []

    def row_for(counts_n: dict[int, float], counts_c: dict[int, float]):
        row = [0.0] * (2 * count)
        for i, v in counts_n.items():
            row[i] = v
        for i, v in counts_c.items():
            row[count + i] = v
        return tuple(row)

    # Serial chains: k * (n + c) per op.
    for op in names:
        for k in chain_lengths:
            i = index[op]
            probes.append(Probe(
                name=f"serial_{op}_{k}",
                instrs=_serial(op, (op,) * k),
                row=row_for({i: float(k)}, {i: float(k)}),
                kind="serial",
            ))

    # Bursts: ceil(k/p) * n + c per op.
    for op in names:
        pipes = machine.unit(_primary_unit(machine, op).unit).count
        for k in burst_lengths:
            i = index[op]
            groups = math.ceil(k / pipes)
            probes.append(Probe(
                name=f"burst_{op}_{k}",
                instrs=_burst(op, op, k),
                row=row_for({i: float(groups)}, {i: 1.0}),
                kind="burst",
            ))

    # Mixed-unit interleavings: serial round-robin across units.
    by_unit: dict[str, list[str]] = {}
    for op in names:
        by_unit.setdefault(str(_primary_unit(machine, op).unit), []).append(op)
    units = sorted(by_unit)
    if len(units) >= 2:
        rounds = max(len(ops_) for ops_ in by_unit.values())
        for offset in range(rounds):
            mix = [by_unit[u][offset % len(by_unit[u])] for u in units]
            chain = (mix * 4)[:4 * len(mix)]
            counts: dict[int, float] = {}
            for op in chain:
                counts[index[op]] = counts.get(index[op], 0.0) + 1.0
            probes.append(Probe(
                name=f"interleave_{offset}",
                instrs=_serial("mix", chain),
                row=row_for(dict(counts), dict(counts)),
                kind="interleave",
            ))
    return names, probes
