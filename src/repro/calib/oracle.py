"""Cycle oracles for calibration: where probe timings come from.

An oracle maps a :class:`~repro.calib.probes.Probe` to a measured
cycle count and carries an ``oracle_id`` recorded in the emitted
artifact so a cost table can always be traced back to its source.

Two implementations:

* :class:`SimulatorOracle` runs probes through the reference list
  scheduler (:func:`repro.backend.simulate`) on a *truth* machine --
  the stand-in for timing streams on real hardware.
* :class:`RecordedOracle` replays measurements from a JSON fixture,
  so calibration tests are hermetic and fixtures recorded once (e.g.
  on real hardware) can be re-fit offline.  :func:`record_fixture`
  writes such a file from any other oracle.
"""

from __future__ import annotations

import json
import os
from typing import Protocol, Sequence

from ..machine.machine import Machine
from .probes import Probe

__all__ = [
    "CycleOracle", "FIXTURE_FORMAT", "RecordedOracle", "SimulatorOracle",
    "record_fixture",
]

FIXTURE_FORMAT = "repro-calib-fixture-v1"


class CycleOracle(Protocol):
    """Anything that can time a probe stream."""

    oracle_id: str

    def measure(self, probe: Probe) -> int: ...


class SimulatorOracle:
    """Reference-scheduler timings of probe streams on ``machine``."""

    def __init__(self, machine: Machine, *, jitter=None):
        self.machine = machine
        self.oracle_id = f"simulator:{machine.fingerprint()}"
        #: Optional ``callable(probe_name) -> int`` additive noise, for
        #: robustness tests (a real timer is never exact).
        self.jitter = jitter

    def measure(self, probe: Probe) -> int:
        from ..backend.simulator import simulate

        cycles = simulate(
            self.machine, list(probe.instrs), with_spills=False
        ).cycles
        if self.jitter is not None:
            cycles = max(1, cycles + int(self.jitter(probe.name)))
        return cycles


class RecordedOracle:
    """Replay of a measurement fixture keyed by probe name."""

    def __init__(self, measurements: dict[str, int], oracle_id: str):
        self.measurements = dict(measurements)
        self.oracle_id = oracle_id

    @classmethod
    def from_file(cls, path: str) -> "RecordedOracle":
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ValueError(f"bad calibration fixture {path}: {error}")
        if payload.get("format") != FIXTURE_FORMAT:
            raise ValueError(
                f"bad calibration fixture {path}: format "
                f"{payload.get('format')!r} != {FIXTURE_FORMAT!r}")
        raw = payload.get("measurements")
        if not isinstance(raw, dict):
            raise ValueError(f"bad calibration fixture {path}: "
                             "missing measurements")
        measurements = {}
        for name, cycles in raw.items():
            if not isinstance(cycles, int) or cycles < 0:
                raise ValueError(f"bad calibration fixture {path}: "
                                 f"measurement {name!r} = {cycles!r}")
            measurements[name] = cycles
        return cls(measurements, str(payload.get("oracle_id", "recorded")))

    def measure(self, probe: Probe) -> int:
        try:
            return self.measurements[probe.name]
        except KeyError:
            raise ValueError(
                f"fixture has no measurement for probe {probe.name!r}"
            ) from None


def record_fixture(
    oracle, probes: Sequence[Probe], path: str
) -> dict[str, int]:
    """Measure every probe on ``oracle`` and write a replay fixture."""
    measurements = {probe.name: int(oracle.measure(probe))
                    for probe in probes}
    payload = {
        "format": FIXTURE_FORMAT,
        "oracle_id": getattr(oracle, "oracle_id", "unknown"),
        "measurements": measurements,
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return measurements
