"""Auto-calibration of machine cost tables (PALMED/OSACA-style).

The hand-written cost tables in :mod:`repro.machine` can instead be
*inferred* from measured instruction streams: generate probe families
(:mod:`repro.calib.probes`), time them on a cycle oracle
(:mod:`repro.calib.oracle` -- the reference simulator, or recorded
fixtures for hermetic tests), solve the overdetermined linear system
for per-op noncoverable/coverable components
(:mod:`repro.calib.fit`), and emit a versioned cost-table artifact the
machine registry loads as a first-class machine
(:mod:`repro.calib.artifact`).
"""

from __future__ import annotations

from .artifact import (
    COST_TABLE_FORMAT,
    ArtifactError,
    load_cost_table,
    machine_from_artifact,
    register_calibrated,
    result_to_payload,
    save_cost_table,
)
from .fit import CalibrationResult, calibrate_machine, calibration_stats
from .oracle import CycleOracle, RecordedOracle, SimulatorOracle, record_fixture
from .probes import Probe, make_probe_family

__all__ = [
    "COST_TABLE_FORMAT",
    "ArtifactError",
    "CalibrationResult",
    "CycleOracle",
    "Probe",
    "RecordedOracle",
    "SimulatorOracle",
    "calibrate_machine",
    "calibration_stats",
    "load_cost_table",
    "machine_from_artifact",
    "make_probe_family",
    "record_fixture",
    "register_calibrated",
    "result_to_payload",
    "save_cost_table",
]
