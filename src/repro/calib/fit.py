"""Least-squares fit of per-op cost components from probe timings.

Generalizes the latency-only solver in :mod:`repro.machine.training`:
instead of fitting one total per op and splitting it by the original
table's proportions, this fits the *noncoverable* and *coverable*
components as separate unknowns, using the burst probes' different
algebra (``ceil(k/p)*n + c`` vs the serial ``k*(n+c)``) to separate
them.  The overdetermined system is solved with
:func:`repro.learn.model.solve_ridge`, which falls back to a pure
python Gaussian solve when numpy is absent.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from ..learn.model import solve_ridge
from ..machine.atomic import AtomicCostTable, AtomicOp
from ..machine.machine import Machine
from ..machine.units import UnitCost
from .probes import (
    DEFAULT_BURST_LENGTHS,
    DEFAULT_CHAIN_LENGTHS,
    Probe,
    make_probe_family,
)

__all__ = ["CalibrationResult", "calibrate_machine", "calibration_stats"]

#: Process-local calibration telemetry (``repro_calib_*`` gauges).
_STATS = {"calibrations": 0, "probes": 0}


def calibration_stats() -> dict[str, int]:
    """Cumulative calibration counters for this process."""
    return dict(_STATS)


@dataclass(frozen=True)
class CalibrationResult:
    """A fitted machine plus the evidence behind it."""

    machine: Machine
    table: AtomicCostTable
    oracle_id: str
    residuals: dict[str, float]
    measurements: dict[str, int]
    mean_abs_residual: float
    probes: int

    @property
    def mean_relative_error(self) -> float:
        """Mean |residual| / measured over probes with nonzero truth."""
        rel = [abs(r) / self.measurements[name]
               for name, r in self.residuals.items()
               if self.measurements.get(name)]
        return sum(rel) / len(rel) if rel else 0.0


def calibrate_machine(
    machine: Machine,
    oracle,
    ops: Sequence[str] | None = None,
    *,
    name: str | None = None,
    chain_lengths: Sequence[int] = DEFAULT_CHAIN_LENGTHS,
    burst_lengths: Sequence[int] = DEFAULT_BURST_LENGTHS,
    ridge: float = 1e-6,
) -> CalibrationResult:
    """Fit ``machine``'s cost table against ``oracle``.

    ``machine`` provides the *structure* (which ops exist, which units
    they run on, how many pipes each unit has); the oracle provides the
    timings.  Each op's primary cost is refit to the recovered
    ``(noncoverable, coverable)`` pair; secondary-unit costs (e.g. the
    store's extra FXU cycle) are kept from the structural table, as are
    any ops excluded from ``ops``.
    """
    names, probes = make_probe_family(
        machine, ops, chain_lengths, burst_lengths)
    rows = [list(probe.row) for probe in probes]
    measured = [float(oracle.measure(probe)) for probe in probes]
    solution = solve_ridge(rows, measured, ridge=ridge)

    count = len(names)
    fitted: dict[str, tuple[int, int]] = {}
    for i, op_name in enumerate(names):
        noncoverable = max(0, round(solution[i]))
        coverable = max(0, round(solution[count + i]))
        if noncoverable + coverable == 0:
            coverable = 1
        fitted[op_name] = (noncoverable, coverable)

    table = AtomicCostTable()
    for op_name in machine.table.names():
        op = machine.table[op_name]
        if op_name not in fitted:
            table.define(op)
            continue
        table.define(_refit(op, *fitted[op_name]))

    calibrated = dataclasses.replace(
        machine,
        name=name if name is not None else f"{machine.name}-calib",
        table=table,
        atomic_mapping=dict(machine.atomic_mapping),
    )

    # Residuals of the *rounded* solution -- what the artifact ships.
    rounded = (
        [float(fitted[n][0]) for n in names]
        + [float(fitted[n][1]) for n in names]
    )
    residuals = {
        probe.name: m - probe.predicted(rounded)
        for probe, m in zip(probes, measured)
    }
    mean_abs = (sum(abs(r) for r in residuals.values()) / len(residuals)
                if residuals else 0.0)
    _STATS["calibrations"] += 1
    _STATS["probes"] += len(probes)
    return CalibrationResult(
        machine=calibrated,
        table=table,
        oracle_id=getattr(oracle, "oracle_id", "unknown"),
        residuals=residuals,
        measurements={probe.name: int(m)
                      for probe, m in zip(probes, measured)},
        mean_abs_residual=mean_abs,
        probes=len(probes),
    )


def _refit(op: AtomicOp, noncoverable: int, coverable: int) -> AtomicOp:
    """Swap the op's primary cost for the fitted component pair."""
    primary = None
    for cost in op.costs:
        if cost.total == op.result_latency:
            primary = cost
            break
    new_costs = tuple(
        UnitCost(cost.unit, noncoverable, coverable)
        if cost is primary else cost
        for cost in op.costs
    )
    return AtomicOp(op.name, new_costs, op.description + " [calibrated]")
