"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``predict FILE``      symbolic cost of a mini-Fortran program
``compare A B``       symbolic comparison of two programs
``restructure FILE``  performance-guided A* restructuring
``kernels``           the Figure 7 table (predicted vs reference)
``machines``          registered machine descriptions
``serve``             run one HTTP/JSON prediction backend
``route``             run the consistent-hash shard router over N backends
``top``               live per-shard request/latency/SLO table
``trace fetch``       pull one request's stitched Chrome trace

``predict``, ``compare``, and ``kernels`` take ``--json`` to emit the
service wire format (see :mod:`repro.service.protocol`) instead of
human-readable text, so scripted callers get a stable schema.

``restructure`` can also run against a live service:
``--server URL`` sends the search to a backend (or router), and adding
``--async`` submits it as a background *job* -- the command prints the
job id immediately, ``--follow`` streams best-so-far candidates per
beam round, and ``--job-id`` re-attaches to a job submitted earlier.
``serve --job-store DIR`` enables the job subsystem on a backend;
shards sharing one store directory resume each other's jobs after a
crash.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from fractions import Fraction

from . import (
    AGGRESSIVE_BACKEND,
    NAIVE_BACKEND,
    compare,
    get_machine,
    machine_names,
    parse_program,
    predict,
    print_program,
    region_report,
)
from .symbolic import Interval

__all__ = ["main"]


def _parse_bindings(text: str | None) -> dict[str, Fraction]:
    """``n=100,m=50`` -> {"n": 100, "m": 50}."""
    if not text:
        return {}
    out: dict[str, Fraction] = {}
    for item in text.split(","):
        name, _, value = item.partition("=")
        if not value:
            raise SystemExit(f"bad binding {item!r}; expected name=value")
        try:
            out[name.strip()] = Fraction(value.strip())
        except (ValueError, ZeroDivisionError):
            raise SystemExit(f"bad binding {item!r}; {value.strip()!r} "
                             "is not a number")
    return out


def _parse_domain(text: str | None) -> dict[str, Interval]:
    """``n=1:1000,m=0:50`` -> interval bounds per variable."""
    if not text:
        return {}
    out: dict[str, Interval] = {}
    for item in text.split(","):
        name, _, span = item.partition("=")
        lo, _, hi = span.partition(":")
        if not hi:
            raise SystemExit(f"bad domain {item!r}; expected name=lo:hi")
        out[name.strip()] = Interval(Fraction(lo), Fraction(hi))
    return out


def _load(path: str):
    try:
        with open(path) as handle:
            return parse_program(handle.read())
    except OSError as error:
        raise SystemExit(f"cannot read {path}: {error}")


def _flags(name: str):
    if name == "aggressive":
        return AGGRESSIVE_BACKEND
    if name == "naive":
        return NAIVE_BACKEND
    raise SystemExit(f"unknown backend flags {name!r}")


def _read_source(path: str) -> str:
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as error:
        raise SystemExit(f"cannot read {path}: {error}")


def _emit_json(kind: str, payload: dict) -> int:
    """Run one request inline through the service engine and print it."""
    from .service import PredictionEngine

    result = PredictionEngine(workers=0, cache_size=1).handle(kind, payload)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 1 if "error" in result else 0


def _emit_predict_tiered(payload: dict, store: str | None) -> int:
    """Run one fast/auto predict through an engine with a surrogate.

    A persisted model artifact (``--surrogate-store``) makes the fast
    tier answer immediately; without one the request falls through to
    exact (the response then has no ``fidelity`` field).
    """
    from .learn import Surrogate, SurrogateConfig, extract_static
    from .service import PredictionEngine

    surrogate = Surrogate(SurrogateConfig(store=store, background=False))
    engine = PredictionEngine(workers=0, cache_size=1, surrogate=surrogate)
    try:
        # a one-shot process starts with a cold feature memo; warm it
        # so the fast tier can answer (invalid sources fall through and
        # get the engine's proper error envelope)
        try:
            extract_static(payload["source"], payload.get("machine", "power"),
                           payload.get("backend", "aggressive"),
                           bool(payload.get("include_memory", False)))
        except Exception:  # noqa: BLE001
            pass
        result = engine.handle("predict", payload)
    finally:
        engine.close()
    print(json.dumps(result, indent=2, sort_keys=True))
    return 1 if "error" in result else 0


def _cmd_surrogate_train(args: argparse.Namespace) -> int:
    """Offline bootstrap: fit models from a persisted result-cache file."""
    from .learn import train_from_cache

    try:
        summary = train_from_cache(
            args.cache,
            store=args.store,
            coverage=args.coverage,
            min_samples=args.min_samples,
        )
    except OSError as error:
        raise SystemExit(f"surrogate train failed: {error}")
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if summary["models"] else 1


def _apply_kernel(args: argparse.Namespace) -> None:
    """Honor ``--kernel`` by switching this process's placement kernel."""
    kernel = getattr(args, "kernel", None)
    if kernel:
        from .cost import set_placement_kernel

        set_placement_kernel(kernel)


def _domain_json(text: str | None) -> dict[str, list[str]] | None:
    domain = _parse_domain(text)
    if not domain:
        return None
    return {k: [str(v.lo), str(v.hi)] for k, v in domain.items()}


def _cmd_predict(args: argparse.Namespace) -> int:
    _apply_kernel(args)
    fidelity = getattr(args, "fidelity", "exact")
    if args.json or fidelity != "exact":
        bindings = _parse_bindings(args.at)
        payload = {
            "source": _read_source(args.file),
            "machine": args.machine,
            "backend": args.backend,
            "include_memory": bool(args.memory),
            **({"bindings": {k: str(v) for k, v in bindings.items()}}
               if bindings else {}),
        }
        if fidelity != "exact":
            payload["fidelity"] = fidelity
            if args.tolerance is not None:
                payload["tolerance"] = args.tolerance
            return _emit_predict_tiered(payload, args.surrogate_store)
        return _emit_json("predict", payload)
    program = _load(args.file)
    cost = predict(
        program,
        machine=args.machine,
        flags=_flags(args.backend),
        include_memory=args.memory,
    )
    print(f"cost[{args.machine}] = {cost}")
    bindings = _parse_bindings(args.at)
    if bindings:
        value = cost.evaluate(bindings)
        point = ", ".join(f"{k}={v}" for k, v in bindings.items())
        print(f"  at {point}: {value} cycles")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    _apply_kernel(args)
    if args.json:
        domain = _domain_json(args.domain)
        return _emit_json("compare", {
            "first": _read_source(args.first),
            "second": _read_source(args.second),
            "machine": args.machine,
            **({"domain": domain} if domain else {}),
        })
    cost_a = predict(_load(args.first), machine=args.machine)
    cost_b = predict(_load(args.second), machine=args.machine)
    print(f"A = {cost_a}")
    print(f"B = {cost_b}")
    result = compare(cost_a, cost_b, domain=_parse_domain(args.domain) or None)
    print(region_report(result))
    return 0


def _cmd_restructure(args: argparse.Namespace) -> int:
    if args.server or args.job_id:
        return _remote_restructure(args)
    if args.async_ or args.follow:
        raise SystemExit("--async/--follow need --server URL "
                         "(jobs run on a service, not inline)")
    from .aggregate import CostAggregator
    from .ir import SymbolTable
    from .transform import (
        Distribute,
        Fuse,
        IncrementalPredictor,
        Interchange,
        ReorderStatements,
        StripMine,
        Unroll,
        UnrollAndJam,
        astar_search,
    )

    program = _load(args.file)
    machine = get_machine(args.machine)
    predictor = IncrementalPredictor(
        CostAggregator(machine, SymbolTable.from_program(program))
    )
    workload = {
        k: int(v) for k, v in _parse_bindings(args.workload).items()
    } or None
    result = astar_search(
        program,
        [Unroll(factors=(2, 4)), UnrollAndJam(factors=(2, 4)),
         Interchange(), StripMine(tiles=(16,)),
         Fuse(), Distribute(), ReorderStatements()],
        predictor,
        workload=workload,
        max_depth=args.depth,
        max_nodes=args.max_nodes,
        domain=_parse_domain(args.domain) or None,
        beam_width=args.beam_width,
        search_workers=args.search_workers,
    )
    print(f"sequence: {result.sequence}")
    print(f"cost: {result.cost}")
    print(print_program(result.program))
    return 0


def _remote_restructure(args: argparse.Namespace) -> int:
    """``restructure --server URL [--async [--follow]] [--job-id ID]``."""
    from .service import ReproClient, ReproClientError

    if not args.server:
        raise SystemExit("--job-id needs --server URL")
    client = ReproClient(args.server)
    try:
        if not args.async_ and not args.job_id:
            # Plain synchronous remote search.
            response = client.restructure(
                _read_source(args.file), machine=args.machine,
                workload={k: str(v) for k, v in
                          _parse_bindings(args.workload).items()} or None,
                domain=_domain_json(args.domain),
                depth=args.depth, max_nodes=args.max_nodes,
                beam_width=args.beam_width)
            print(f"sequence: {response.sequence}")
            print(f"cost: {response.cost}")
            print(response.program)
            return 0
        if args.job_id:
            job_id = args.job_id
        else:
            submitted = client.submit_restructure(
                _read_source(args.file), machine=args.machine,
                workload={k: str(v) for k, v in
                          _parse_bindings(args.workload).items()} or None,
                domain=_domain_json(args.domain),
                depth=args.depth, max_nodes=args.max_nodes,
                beam_width=args.beam_width, priority=args.priority)
            job_id = submitted.job_id
            print(f"job: {job_id} ({submitted.status})")
        if not args.follow:
            if not args.job_id:
                return 0
            status = client.job_status(job_id)
            print(f"job: {job_id} ({status.status}, "
                  f"round {status.rounds})")
            if status.result:
                print(f"sequence: {status.result.get('sequence')}")
                print(f"cost: {status.result.get('cost')}")
            return 0
        for event in client.follow(job_id):
            if event.get("final"):
                print(f"final: {event.get('status')} "
                      f"after {event.get('round')} round(s)")
            else:
                print(f"round {event.get('round')}: "
                      f"{event.get('best_sequence') or '(original)'} "
                      f"-> {event.get('best_cost')}")
        status = client.wait(job_id, timeout=30)
        if status.result:
            print(f"sequence: {status.result.get('sequence')}")
            print(f"cost: {status.result.get('cost')}")
            print(status.result.get("program", ""))
        return 0
    except ReproClientError as error:
        raise SystemExit(f"restructure job failed: {error}")
    finally:
        client.close()


def _cmd_kernels(args: argparse.Namespace) -> int:
    if args.json:
        return _emit_json("kernels", {"machine": args.machine})
    from .backend import simulate
    from .bench import kernel, kernel_names, kernel_stream
    from .cost import StraightLineEstimator

    machine = get_machine(args.machine)
    estimator = StraightLineEstimator(machine)
    print(f"{'kernel':8s} {'predicted':>9s} {'reference':>9s} {'error':>8s}")
    for name in kernel_names():
        info = kernel_stream(kernel(name), machine)
        predicted = estimator.estimate(info.stream).cycles
        iterative = [i for i in info.stream if not i.one_time]
        reference = simulate(machine, iterative).cycles
        error = 100 * (predicted - reference) / reference
        print(f"{name:8s} {predicted:9d} {reference:9d} {error:+7.1f}%")
    return 0


def _cmd_machines(args: argparse.Namespace) -> int:
    for name in machine_names():
        print(get_machine(name))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .calib import (
        RecordedOracle,
        SimulatorOracle,
        calibrate_machine,
        make_probe_family,
        record_fixture,
        register_calibrated,
        result_to_payload,
        save_cost_table,
    )

    machine = get_machine(args.machine)
    if args.oracle == "simulator":
        oracle = SimulatorOracle(get_machine(args.truth or args.machine))
    else:
        try:
            oracle = RecordedOracle.from_file(args.oracle)
        except ValueError as error:
            raise SystemExit(str(error))
    try:
        result = calibrate_machine(machine, oracle, name=args.name)
    except ValueError as error:
        raise SystemExit(f"calibration failed: {error}")
    if args.record_fixture:
        _, probes = make_probe_family(machine)
        record_fixture(oracle, probes, args.record_fixture)
    if args.out:
        payload = save_cost_table(result, args.out)
        register_calibrated(payload)
    if args.json:
        print(json.dumps(result_to_payload(result), indent=2,
                         sort_keys=True))
        return 0
    print(f"calibrated {result.machine.name} against {result.oracle_id}")
    print(f"  probes: {result.probes}  "
          f"mean abs residual: {result.mean_abs_residual:.3f} cycles  "
          f"mean rel error: {100 * result.mean_relative_error:.2f}%")
    print(f"  fingerprint: {result.machine.fingerprint()}")
    if args.out:
        print(f"  artifact: {args.out} (registered as "
              f"{result.machine.name!r})")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    widths = None
    if args.widths:
        try:
            widths = tuple(int(w) for w in args.widths.split(","))
        except ValueError:
            raise SystemExit(f"bad --widths {args.widths!r}; "
                             "expected e.g. 1,2,4,8")
    machine = args.machine
    if args.table:
        from .calib import ArtifactError, register_calibrated

        try:
            machine = register_calibrated(args.table)
        except ArtifactError as error:
            raise SystemExit(str(error))
    if args.json:
        bindings = _parse_bindings(args.at)
        return _emit_json("sweep", {
            "source": _read_source(args.file),
            "machine": machine,
            **({"widths": list(widths)} if widths else {}),
            **({"bindings": {k: str(v) for k, v in bindings.items()}}
               if bindings else {}),
            **({"branch_miss_rate": args.branch_miss_rate}
               if args.branch_miss_rate else {}),
            **({"cache_miss_rate": args.cache_miss_rate}
               if args.cache_miss_rate else {}),
        })
    from .sweep import sweep_program

    try:
        outcome = sweep_program(
            _load(args.file),
            machine=machine,
            widths=widths,
            bindings=_parse_bindings(args.at),
            branch_miss_rate=args.branch_miss_rate,
            cache_miss_rate=args.cache_miss_rate,
        )
    except (KeyError, ValueError) as error:
        raise SystemExit(f"sweep failed: {error}")
    print(f"sweep[{outcome.machine}] N = {outcome.instructions:g} "
          "instructions")
    print(f"{'width':>5s} {'cycles':>12s} {'ipc':>7s} "
          f"{'placement':>10s} {'penalty':>8s}")
    for point in outcome.points:
        print(f"{point.width:5d} {point.cycles:12.1f} {point.ipc:7.2f} "
              f"{point.placement_cycles:10.1f} {point.penalty_cycles:8.1f}")
    print(f"saturates at width {outcome.saturation_width}")
    return 0


def _load_slo(path: str | None):
    if not path:
        return None
    from .obs.slo import load_slo_config

    try:
        return load_slo_config(path)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        raise SystemExit(f"bad --slo-config {path}: {error}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import PredictionEngine, run_server

    surrogate = None
    if args.surrogate:
        from .learn import Surrogate, SurrogateConfig

        store = args.surrogate_store
        if store is None and args.cache_file:
            store = args.cache_file + ".surrogate.json"
        surrogate = Surrogate(SurrogateConfig(
            coverage=args.surrogate_coverage,
            min_samples=args.surrogate_min_samples,
            retrain_every=args.surrogate_retrain_every,
            drift_threshold=args.surrogate_drift_threshold,
            default_tolerance=args.surrogate_tolerance,
            store=store,
        ))
    engine = PredictionEngine(
        workers=args.workers,
        cache_size=args.cache_size,
        cache_path=args.cache_file,
        executor=args.executor,
        scheduling=args.scheduling,
        surrogate=surrogate,
    )
    if args.job_store:
        # Fork the worker pool *before* the job runner threads exist --
        # forking a threaded process is how deadlocks are made.
        engine.start_workers()
        engine.attach_jobs(
            args.job_store,
            slots=args.job_slots or None,
            stale_after=args.job_stale_seconds,
        )
    run_server(
        engine,
        host=args.host,
        port=args.port,
        tracing=not args.no_tracing,
        slow_request_seconds=args.slow_request_seconds,
        shard_of=args.shard_of,
        slo=_load_slo(args.slo_config),
    )
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from .service.router import run_router

    backends = [url.strip() for url in (args.backends or "").split(",")
                if url.strip()]
    spawned = []
    if args.spawn:
        from .service.cluster import spawn_backends

        spawned = spawn_backends(args.spawn, workers=args.spawn_workers)
        backends.extend(backend.url for backend in spawned)
        for backend in spawned:
            print(f"spawned backend {backend.url} (pid {backend.process.pid})",
                  flush=True)
    if not backends:
        raise SystemExit("route needs --backends URL[,URL...] and/or "
                         "--spawn N")
    try:
        run_router(
            backends,
            host=args.host,
            port=args.port,
            vnodes=args.vnodes,
            retries=args.retries,
            probe_interval=args.probe_interval,
            forward_timeout=args.forward_timeout,
            local_fallback=not args.no_local_fallback,
            digest_memo_size=args.digest_memo_size,
            tracing=not args.no_tracing,
            slo=_load_slo(args.slo_config),
        )
    finally:
        for backend in spawned:
            backend.terminate()
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Poll ``/metrics/cluster`` (or ``/metrics`` against a plain
    server) and render the per-shard request/latency/SLO table."""
    from .obs.aggregate import (
        format_top,
        slo_rows_from_exposition,
        summarize_cluster,
        surrogate_rows_from_exposition,
    )
    from .service import BadRequestError, ReproClient, ReproClientError

    client = ReproClient(args.server)
    shown = 0
    try:
        while True:
            try:
                try:
                    text = client.cluster_metrics()
                except BadRequestError:
                    # Plain backend, no cluster endpoint: single-shard view.
                    text = client.metrics()
            except ReproClientError as error:
                raise SystemExit(f"top failed: {error}")
            slo_rows = slo_rows_from_exposition(text)
            surrogate_rows = surrogate_rows_from_exposition(text)
            print(format_top(summarize_cluster(text),
                             slo_rows=slo_rows or None,
                             surrogate_rows=surrogate_rows or None),
                  flush=True)
            shown += 1
            if args.iterations and shown >= args.iterations:
                return 0
            time.sleep(args.interval)
            print()
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def _cmd_trace_fetch(args: argparse.Namespace) -> int:
    from .service import ReproClient, ReproClientError

    client = ReproClient(args.server)
    try:
        data = client.debug_trace(
            args.request_id, fmt="spans" if args.spans else "chrome")
    except ReproClientError as error:
        raise SystemExit(f"trace fetch failed: {error}")
    finally:
        client.close()
    rendered = json.dumps(data, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"trace written to {args.output}", file=sys.stderr)
    else:
        print(rendered)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compile-time performance prediction (Wang, PLDI 1994)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("predict", help="symbolic cost of a program")
    p.add_argument("file")
    p.add_argument("--machine", default="power", choices=machine_names())
    p.add_argument("--backend", default="aggressive",
                   choices=("aggressive", "naive"))
    p.add_argument("--memory", action="store_true",
                   help="include cache/TLB cost terms")
    p.add_argument("--at", help="evaluate at a point, e.g. n=100,m=50")
    p.add_argument("--fidelity", default="exact",
                   choices=("exact", "fast", "auto"),
                   help="serving tier: exact pipeline, learned fast "
                        "path, or auto (fast only within tolerance)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="auto tier's relative interval-width ceiling")
    p.add_argument("--surrogate-store", metavar="FILE", default=None,
                   help="surrogate model artifact for --fidelity fast/auto")
    p.add_argument("--kernel", default=None,
                   choices=("fused", "legacy", "arena"),
                   help="placement kernel (default: REPRO_PLACEMENT_KERNEL "
                        "or fused); all three are bit-identical")
    p.add_argument("--json", action="store_true",
                   help="emit the service wire format")
    p.add_argument("--trace", metavar="FILE",
                   help="write a Chrome trace_event JSON of the run")
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser("compare", help="compare two programs symbolically")
    p.add_argument("first")
    p.add_argument("second")
    p.add_argument("--machine", default="power", choices=machine_names())
    p.add_argument("--domain", help="bounds, e.g. n=1:1000")
    p.add_argument("--kernel", default=None,
                   choices=("fused", "legacy", "arena"),
                   help="placement kernel (default: REPRO_PLACEMENT_KERNEL "
                        "or fused); all three are bit-identical")
    p.add_argument("--json", action="store_true",
                   help="emit the service wire format")
    p.add_argument("--trace", metavar="FILE",
                   help="write a Chrome trace_event JSON of the run")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("restructure", help="performance-guided A* search")
    p.add_argument("file")
    p.add_argument("--machine", default="power", choices=machine_names())
    p.add_argument("--workload", help="evaluation point, e.g. n=256")
    p.add_argument("--domain", help="bounds for symbolic mode")
    p.add_argument("--depth", type=int, default=2)
    p.add_argument("--max-nodes", type=int, default=200)
    p.add_argument("--beam-width", type=int, default=1,
                   help="nodes expanded per search round (batched together)")
    p.add_argument("--search-workers", type=int, default=0,
                   help="worker processes for candidate evaluation "
                        "(0/1 = inline)")
    p.add_argument("--server", metavar="URL",
                   help="run the search on a live service (backend or "
                        "router) instead of inline")
    p.add_argument("--async", dest="async_", action="store_true",
                   help="submit as a background job (needs --server); "
                        "prints the job id immediately")
    p.add_argument("--follow", action="store_true",
                   help="stream best-so-far candidates per beam round "
                        "until the job finishes")
    p.add_argument("--priority", type=int, default=0,
                   help="job priority, -10..10 (higher runs first)")
    p.add_argument("--job-id", metavar="ID",
                   help="attach to an existing job instead of submitting")
    p.add_argument("--trace", metavar="FILE",
                   help="write a Chrome trace_event JSON of the run")
    p.set_defaults(func=_cmd_restructure)

    p = sub.add_parser("kernels", help="the Figure 7 table")
    p.add_argument("--machine", default="power", choices=machine_names())
    p.add_argument("--json", action="store_true",
                   help="emit the service wire format")
    p.set_defaults(func=_cmd_kernels)

    p = sub.add_parser("machines", help="list machine descriptions")
    p.set_defaults(func=_cmd_machines)

    p = sub.add_parser(
        "calibrate",
        help="fit a machine's cost table against a cycle oracle")
    p.add_argument("--machine", default="power", choices=machine_names(),
                   help="structural machine: ops, units, pipe counts")
    p.add_argument("--truth", default=None, choices=machine_names(),
                   help="simulator-oracle truth machine "
                        "(default: --machine itself)")
    p.add_argument("--oracle", default="simulator", metavar="SOURCE",
                   help="'simulator' or a recorded fixture JSON path")
    p.add_argument("--name", default=None,
                   help="name for the calibrated machine "
                        "(default: <machine>-calib)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the cost-table artifact JSON here "
                        "(and register the machine)")
    p.add_argument("--record-fixture", metavar="FILE", default=None,
                   help="also write the probe measurements as a "
                        "replayable fixture")
    p.add_argument("--json", action="store_true",
                   help="emit the artifact payload as JSON")
    p.set_defaults(func=_cmd_calibrate)

    p = sub.add_parser(
        "sweep", help="evaluate a program across a width ladder")
    p.add_argument("file")
    p.add_argument("--machine", default="power",
                   help="base machine for the width family "
                        "(any registered name)")
    p.add_argument("--table", metavar="FILE", default=None,
                   help="calibrated cost-table artifact to sweep instead "
                        "of --machine")
    p.add_argument("--widths", default=None,
                   help="comma-separated ladder, e.g. 1,2,4,8 "
                        "(default: 1,2,4,6,8)")
    p.add_argument("--at", help="evaluate at a point, e.g. n=100,m=50")
    p.add_argument("--branch-miss-rate", type=float, default=0.0,
                   help="per-instruction branch mispredict rate in [0,1]")
    p.add_argument("--cache-miss-rate", type=float, default=0.0,
                   help="per-instruction cache miss rate in [0,1]")
    p.add_argument("--json", action="store_true",
                   help="emit the service wire format")
    p.add_argument("--trace", metavar="FILE",
                   help="write a Chrome trace_event JSON of the run")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("serve", help="run the HTTP/JSON prediction service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes (0/1 = inline execution)")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="max resident result-cache entries")
    p.add_argument("--cache-file",
                   help="JSON-lines persistence file for warm restarts")
    p.add_argument("--executor", default="auto",
                   choices=("auto", "process", "thread", "sync"))
    p.add_argument("--scheduling", default="weighted",
                   choices=("weighted", "naive"),
                   help="batch scheduling: group light requests and split "
                        "heavy restructures (weighted) or one task per "
                        "request (naive)")
    p.add_argument("--slow-request-seconds", type=float, default=1.0,
                   help="log requests slower than this, with their span tree")
    p.add_argument("--no-tracing", action="store_true",
                   help="disable per-request tracing spans")
    p.add_argument("--shard-of", metavar="INDEX/COUNT",
                   help="shard identity when running behind the router, "
                        "e.g. 0/3 (shown in /healthz and metrics)")
    p.add_argument("--job-store", metavar="DIR",
                   help="enable async restructure jobs, persisting "
                        "records/events/checkpoints in DIR (shards "
                        "sharing a DIR resume each other's jobs)")
    p.add_argument("--job-slots", type=int, default=0,
                   help="concurrent job runners (default: workers-1, "
                        "min 1)")
    p.add_argument("--job-stale-seconds", type=float, default=5.0,
                   help="heartbeat age after which another shard may "
                        "adopt a job")
    p.add_argument("--surrogate", action="store_true",
                   help="enable the learned fast tier "
                        "(serves fidelity=fast/auto predicts)")
    p.add_argument("--surrogate-store", metavar="FILE", default=None,
                   help="surrogate model artifact path (defaults to "
                        "<cache-file>.surrogate.json when --cache-file "
                        "is set)")
    p.add_argument("--surrogate-coverage", type=float, default=0.9,
                   help="nominal conformal interval coverage")
    p.add_argument("--surrogate-min-samples", type=int, default=40,
                   help="harvested samples before the first fit")
    p.add_argument("--surrogate-retrain-every", type=int, default=64,
                   help="fresh samples between periodic refits")
    p.add_argument("--surrogate-drift-threshold", type=float, default=1.0,
                   help="rolling |error|/half-width that forces a refit")
    p.add_argument("--surrogate-tolerance", type=float, default=0.1,
                   help="auto tier's default relative-width ceiling")
    p.add_argument("--slo-config", metavar="FILE",
                   help="JSON latency/error objectives; exports "
                        "repro_slo_* burn-rate gauges on /metrics")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "surrogate", help="learned fast-tier model management")
    surrogate_sub = p.add_subparsers(dest="surrogate_command", required=True)
    p = surrogate_sub.add_parser(
        "train",
        help="bootstrap surrogate models offline from a cache file")
    p.add_argument("--cache", required=True, metavar="FILE",
                   help="JSONL result-cache file written by "
                        "'repro serve --cache-file'")
    p.add_argument("--store", metavar="FILE", default=None,
                   help="write the fitted model artifact here")
    p.add_argument("--coverage", type=float, default=0.9,
                   help="nominal conformal interval coverage")
    p.add_argument("--min-samples", type=int, default=24,
                   help="skip machines with fewer harvested samples")
    p.set_defaults(func=_cmd_surrogate_train)

    p = sub.add_parser(
        "route", help="run the consistent-hash shard router")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--backends", metavar="URL[,URL...]",
                   help="backend base URLs, e.g. "
                        "http://10.0.0.1:8081,http://10.0.0.2:8081")
    p.add_argument("--spawn", type=int, default=0, metavar="N",
                   help="also spawn N local backend processes on "
                        "ephemeral ports and route over them")
    p.add_argument("--spawn-workers", type=int, default=0,
                   help="worker processes per spawned backend")
    p.add_argument("--vnodes", type=int, default=64,
                   help="virtual nodes per backend on the hash ring")
    p.add_argument("--retries", type=int, default=2,
                   help="max additional ring replicas tried per request")
    p.add_argument("--probe-interval", type=float, default=2.0,
                   help="seconds between backend /healthz probes")
    p.add_argument("--forward-timeout", type=float, default=30.0,
                   help="per-forward timeout in seconds")
    p.add_argument("--no-local-fallback", action="store_true",
                   help="return 503 instead of serving inline when every "
                        "backend is down")
    p.add_argument("--digest-memo-size", type=int, default=4096,
                   help="max resident source->digest memo entries "
                        "(LRU; evictions show up in /metrics)")
    p.add_argument("--no-tracing", action="store_true",
                   help="disable per-request tracing spans and "
                        "traceparent propagation to shards")
    p.add_argument("--slo-config", metavar="FILE",
                   help="JSON latency/error objectives; exports "
                        "repro_slo_* burn-rate gauges on /metrics")
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser("top", help="live per-shard request/latency table")
    p.add_argument("server", metavar="URL",
                   help="router (or single server) base URL")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes")
    p.add_argument("--iterations", type=int, default=0, metavar="N",
                   help="stop after N refreshes (0 = run until Ctrl-C)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser("trace", help="stitched traces from a live service")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    p = trace_sub.add_parser(
        "fetch", help="fetch one request's stitched Chrome trace")
    p.add_argument("request_id")
    p.add_argument("--server", metavar="URL", required=True,
                   help="router (or single server) base URL")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the JSON here instead of stdout")
    p.add_argument("--spans", action="store_true",
                   help="raw span dicts instead of a Chrome trace object")
    p.set_defaults(func=_cmd_trace_fetch)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return args.func(args)

    from .obs import Tracer, trace_span, write_chrome_trace

    tracer = Tracer()
    with tracer.activate():
        with trace_span(f"cli.{args.command}", file=getattr(args, "file", "")):
            status = args.func(args)
    write_chrome_trace(tracer.export(), trace_path)
    print(f"trace written to {trace_path}", file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
