"""Network parameter sets for the communication cost model.

The paper's communication module follows Wang & Houstis [19]: a
parameterized static model.  A :class:`NetworkParameters` instance is
the per-machine table: startup latency (cycles), per-byte transfer
cost, hop cost for multi-hop topologies, and the processor count.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

__all__ = ["NetworkParameters", "sp1_network", "ethernet_cluster"]


@dataclass(frozen=True)
class NetworkParameters:
    """Cycles-based cost parameters of one interconnect."""

    name: str
    processors: int
    startup_cycles: int          # alpha: per-message software overhead
    cycles_per_byte: Fraction    # beta: inverse bandwidth
    hop_cycles: int = 0          # per-hop latency (0 for crossbar-like)
    bisection_penalty: Fraction = Fraction(1)  # contention multiplier

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("need at least one processor")
        if self.startup_cycles < 0 or self.cycles_per_byte < 0:
            raise ValueError("costs must be non-negative")


def sp1_network(processors: int = 16) -> NetworkParameters:
    """An IBM SP1-flavoured multistage switch (the paper's era)."""
    return NetworkParameters(
        name="sp1-switch",
        processors=processors,
        startup_cycles=3000,             # ~50 us at 60 MHz
        cycles_per_byte=Fraction(3, 2),  # ~40 MB/s
        hop_cycles=60,
        bisection_penalty=Fraction(1),
    )


def ethernet_cluster(processors: int = 8) -> NetworkParameters:
    """A shared-medium cluster: high startup, contention grows with P."""
    return NetworkParameters(
        name="ethernet",
        processors=processors,
        startup_cycles=30_000,
        cycles_per_byte=Fraction(6),
        hop_cycles=0,
        bisection_penalty=Fraction(2),
    )
