"""Symbolic costs of message-passing primitives.

Each primitive returns a :class:`~repro.symbolic.PerfExpr`, so message
sizes and processor counts may be unknowns exactly like loop bounds --
the communication cost joins the unified performance expression the
framework compares (distinctness point 1 of the paper's related-work
section).
"""

from __future__ import annotations

import math
from fractions import Fraction

from ..symbolic.expr import PerfExpr
from .network import NetworkParameters

__all__ = [
    "send_cost",
    "shift_cost",
    "broadcast_cost",
    "reduce_cost",
    "allreduce_cost",
    "exchange_cost",
]


def _size_expr(nbytes: PerfExpr | int) -> PerfExpr:
    if isinstance(nbytes, PerfExpr):
        return nbytes
    return PerfExpr.const(nbytes)


def send_cost(
    net: NetworkParameters,
    nbytes: PerfExpr | int,
    hops: int = 1,
) -> PerfExpr:
    """Point-to-point send: alpha + beta * n + hop term."""
    size = _size_expr(nbytes)
    fixed = net.startup_cycles + net.hop_cycles * hops
    return PerfExpr.const(fixed) + size * PerfExpr.const(net.cycles_per_byte)


def shift_cost(net: NetworkParameters, nbytes: PerfExpr | int) -> PerfExpr:
    """Nearest-neighbour shift: all processors send concurrently."""
    return send_cost(net, nbytes, hops=1) * PerfExpr.const(net.bisection_penalty)


def _log2p(net: NetworkParameters) -> int:
    return max(1, math.ceil(math.log2(net.processors)))


def broadcast_cost(net: NetworkParameters, nbytes: PerfExpr | int) -> PerfExpr:
    """Binomial-tree broadcast: ceil(log2 P) send steps."""
    return send_cost(net, nbytes) * PerfExpr.const(_log2p(net))


def reduce_cost(
    net: NetworkParameters,
    nbytes: PerfExpr | int,
    op_cycles_per_byte: Fraction = Fraction(1, 4),
) -> PerfExpr:
    """Binomial-tree reduction: log2 P steps of send + combine."""
    size = _size_expr(nbytes)
    combine = size * PerfExpr.const(op_cycles_per_byte)
    return (send_cost(net, nbytes) + combine) * PerfExpr.const(_log2p(net))


def allreduce_cost(
    net: NetworkParameters,
    nbytes: PerfExpr | int,
    op_cycles_per_byte: Fraction = Fraction(1, 4),
) -> PerfExpr:
    """Reduce followed by broadcast (the simple composition)."""
    return reduce_cost(net, nbytes, op_cycles_per_byte) + broadcast_cost(net, nbytes)


def exchange_cost(net: NetworkParameters, nbytes: PerfExpr | int) -> PerfExpr:
    """All-to-all exchange: P-1 sends through the bisection."""
    steps = PerfExpr.const(net.processors - 1)
    return send_cost(net, nbytes) * steps * PerfExpr.const(net.bisection_penalty)
