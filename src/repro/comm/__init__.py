"""Communication cost model for distributed-memory targets."""

from .model import CommunicationCostModel
from .network import NetworkParameters, ethernet_cluster, sp1_network
from .primitives import (
    allreduce_cost,
    broadcast_cost,
    exchange_cost,
    reduce_cost,
    send_cost,
    shift_cost,
)

__all__ = [
    "CommunicationCostModel", "NetworkParameters", "allreduce_cost",
    "broadcast_cost", "ethernet_cluster", "exchange_cost", "reduce_cost",
    "send_cost", "shift_cost", "sp1_network",
]
