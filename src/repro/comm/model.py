"""Communication cost model facade (paper section 2, Figure 1).

"For distributed memory machines, message passing instructions are
sent along with the sequential cost estimation to the communication
cost module to get cost of moving data among processors."

The model recognizes the message-passing pseudo-calls the mini-Fortran
programs use (``call send(...)``, ``call broadcast(...)``, ...) and
prices them with the primitives; everything else flows through
unchanged.  It also offers the classic block-distribution estimate for
a distributed loop nest.
"""

from __future__ import annotations

from fractions import Fraction

from ..analysis.loops import expression_poly
from ..ir.nodes import CallStmt, Expr
from ..symbolic.expr import PerfExpr, UnknownKind
from ..symbolic.intervals import Interval
from .network import NetworkParameters
from .primitives import (
    allreduce_cost,
    broadcast_cost,
    exchange_cost,
    reduce_cost,
    send_cost,
    shift_cost,
)

__all__ = ["CommunicationCostModel"]

_PRIMITIVES = {
    "send": send_cost,
    "recv": send_cost,       # receiver pays the matching cost
    "shift": shift_cost,
    "broadcast": broadcast_cost,
    "reduce": reduce_cost,
    "allreduce": allreduce_cost,
    "exchange": exchange_cost,
}


class CommunicationCostModel:
    """Prices message-passing calls against one network description."""

    def __init__(self, network: NetworkParameters, element_bytes: int = 4):
        self.network = network
        self.element_bytes = element_bytes

    def recognizes(self, name: str) -> bool:
        return name in _PRIMITIVES

    def call_cost(self, stmt: CallStmt) -> PerfExpr:
        """Cost of one recognized message-passing call.

        The first argument (if any) is the element count; it may be
        symbolic.  Unrecognized calls raise KeyError -- the aggregator
        falls back to the library table for those.
        """
        fn = _PRIMITIVES[stmt.name]
        nbytes = self._size_of(stmt.args[0]) if stmt.args else PerfExpr.const(
            self.element_bytes
        )
        return fn(self.network, nbytes)

    def _size_of(self, count_expr: Expr) -> PerfExpr:
        poly, unknowns = expression_poly(count_expr)
        bounds = {name: Interval.nonnegative() for name in unknowns}
        count = PerfExpr(poly, bounds, unknowns)
        return count * PerfExpr.const(self.element_bytes)

    # ------------------------------------------------------------------
    def block_distribution_cost(
        self,
        elements: PerfExpr | int,
        halo: int = 1,
    ) -> PerfExpr:
        """Per-iteration halo exchange of a block-distributed stencil.

        ``elements`` is the per-boundary element count (symbolic OK);
        each processor shifts ``halo`` boundary planes both ways.
        """
        size = elements if isinstance(elements, PerfExpr) else PerfExpr.const(elements)
        nbytes = size * PerfExpr.const(self.element_bytes * halo)
        return shift_cost(self.network, nbytes) * PerfExpr.const(2)

    def processors_unknown(self) -> PerfExpr:
        """A symbolic processor count for what-if comparisons."""
        return PerfExpr.unknown(
            "nproc",
            UnknownKind.MACHINE,
            Interval(Fraction(1), self.network.processors),
            description="processor count",
        )
