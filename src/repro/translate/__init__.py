"""The instruction translation module (paper section 2.2).

Two-level translation (operation specialization, then atomic operation
mapping) plus imitation of back-end optimizations, so that source-level
cost estimates match the code the compiler will eventually generate.
"""

from .atomic_map import UnsupportedOperation, resolve_basic_op
from .backend_opts import AGGRESSIVE_BACKEND, NAIVE_BACKEND, BackendFlags
from .basic_ops import ALL_BASIC_OPS, FALLBACKS, arith_op, cmp_op, load_op, store_op
from .hl_table import HL_INTRINSICS, HL_OPERATORS, HLOp, SMALL_MULTIPLIER_RANGE
from .patterns import (
    Reduction,
    carried_scalar_chain,
    find_reductions,
    is_axpy_loop,
    is_inner_product_loop,
)
from .registers import RegisterPressure
from .specialize import (
    power_expansion,
    specialize_binop,
    specialize_intrinsic,
    specialize_unop,
)
from .stream import Instr, InstrStream
from .translator import BlockInfo, Translator

__all__ = [
    "AGGRESSIVE_BACKEND", "ALL_BASIC_OPS", "BackendFlags", "BlockInfo",
    "FALLBACKS", "HLOp", "HL_INTRINSICS", "HL_OPERATORS", "Instr",
    "InstrStream", "NAIVE_BACKEND", "Reduction", "RegisterPressure",
    "SMALL_MULTIPLIER_RANGE", "Translator", "UnsupportedOperation",
    "arith_op", "carried_scalar_chain", "cmp_op", "find_reductions",
    "is_axpy_loop", "is_inner_product_loop", "load_op", "power_expansion",
    "resolve_basic_op", "specialize_binop", "specialize_intrinsic",
    "specialize_unop", "store_op",
]
