"""Level-1 translation: operation specialization mapping.

"In the first level, the operation specialization mapping translates
language specific expressions into language independent basic
operations such as integer-add operation, floating-point multiply-add
operation, etc."  (section 2.2.1)

Specialization is type-driven and value-aware:

* ``+`` on two integers is ``iadd``; on a double and a real, ``dadd``;
* integer ``*`` by a constant in [-128, 127] is ``imul_small`` (the
  paper's variable-latency multiply, modeled as "multiple basic
  operations ... the operation specialization mapping can map different
  cases to different basic operations");
* small constant integer powers expand to multiply chains;
* intrinsics map to their basic ops or to an external ``call``.
"""

from __future__ import annotations

from ..ir.nodes import Expr, IntConst
from ..ir.symtab import SymbolTable
from ..ir.types import ScalarType, TypeError_
from .basic_ops import PREFIX
from .hl_table import HL_INTRINSICS, HL_OPERATORS, SMALL_MULTIPLIER_RANGE

__all__ = [
    "specialize_binop",
    "specialize_unop",
    "specialize_intrinsic",
    "power_expansion",
]


def _prefix(scalar: ScalarType) -> str:
    return PREFIX[scalar]


def specialize_binop(op: str, left_type: ScalarType, right_type: ScalarType,
                     right: Expr | None = None) -> list[str]:
    """Basic-op names for a binary operator applied to typed operands.

    ``right`` (when supplied) enables value-aware specialization of
    integer multiplies.  Returns a list because some spellings expand
    to several basic operations.
    """
    hl = HL_OPERATORS.get(op)
    if hl is None:
        raise TypeError_(f"no high-level operation for {op!r}")
    if hl.category == "logical":
        return [hl.stem]
    if hl.category == "compare":
        joined = left_type.join(right_type)
        return [f"{_prefix(joined)}cmp"]
    joined = left_type.join(right_type)
    prefix = _prefix(joined)
    if hl.stem == "pow":
        return power_expansion(joined, right)
    if hl.stem == "mul" and joined is ScalarType.INTEGER:
        if isinstance(right, IntConst) and _is_small(right.value):
            return ["imul_small"]
        return ["imul"]
    return [f"{prefix}{hl.stem}"]


def _is_small(value: int) -> bool:
    lo, hi = SMALL_MULTIPLIER_RANGE
    return lo <= value <= hi


def power_expansion(scalar: ScalarType, exponent: Expr | None) -> list[str]:
    """Expand ``x ** e``.

    Small constant integer exponents become multiply chains (the
    back-end strength-reduces them); anything else is an external call
    to the runtime's pow.
    """
    prefix = _prefix(scalar)
    if isinstance(exponent, IntConst) and 0 <= exponent.value <= 8:
        e = exponent.value
        if e in (0, 1):
            return []
        # Binary-method multiply count: squarings + extra multiplies.
        count = e.bit_length() - 1 + bin(e).count("1") - 1
        if scalar is ScalarType.INTEGER:
            return ["imul"] * count
        return [f"{prefix}mul"] * count
    return ["call"]


def specialize_unop(op: str, operand_type: ScalarType) -> list[str]:
    if op == "-":
        return [f"{_prefix(operand_type)}neg"]
    if op == ".not.":
        return ["lnot"]
    raise TypeError_(f"no high-level operation for unary {op!r}")


def specialize_intrinsic(name: str, table: SymbolTable, args: tuple[Expr, ...]) -> list[str]:
    """Basic ops for an intrinsic function call."""
    stem = HL_INTRINSICS.get(name)
    if stem is None:
        return ["call"]  # unknown function: external call overhead
    if stem == "call":
        return ["call"]
    if stem == "cvt":
        return _conversion_ops(name, table, args)
    if not args:
        raise TypeError_(f"intrinsic {name} needs arguments")
    arg_type = table.type_of(args[0])
    for arg in args[1:]:
        arg_type = arg_type.join(table.type_of(arg))
    if stem == "sqrt":
        # Square root of an integer promotes to single precision.
        prefix = _prefix(arg_type) if arg_type.is_float else "f"
        return [f"{prefix}sqrt"]
    prefix = _prefix(arg_type)
    if stem == "mod":
        # mod(a, b) = a - (a/b)*b
        if arg_type is ScalarType.INTEGER:
            return ["idiv", "imul", "isub"]
        return [f"{prefix}div", f"{prefix}mul", f"{prefix}sub"]
    if stem in ("min", "max"):
        # n-ary min/max: one cmp+select per extra argument.
        per_pair = [f"{prefix}{stem}"]
        return per_pair * max(1, len(args) - 1)
    if stem == "abs":
        return [f"{prefix}abs"]
    raise TypeError_(f"unhandled intrinsic {name}")


def _conversion_ops(name: str, table: SymbolTable, args: tuple[Expr, ...]) -> list[str]:
    if not args:
        raise TypeError_(f"intrinsic {name} needs an argument")
    src = table.type_of(args[0])
    if name == "int":
        return [] if src is ScalarType.INTEGER else ["cvt_fi"]
    if name == "real":
        if src is ScalarType.INTEGER:
            return ["cvt_if"]
        if src is ScalarType.DOUBLE:
            return ["cvt_df"]
        return []
    if name == "dble":
        if src is ScalarType.INTEGER:
            return ["cvt_if"]
        if src is ScalarType.REAL:
            return ["cvt_fd"]
        return []
    raise TypeError_(f"unknown conversion {name}")
