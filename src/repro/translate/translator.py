"""The instruction translation module (paper section 2.2).

Converts a basic block of the mini-Fortran IR into a stream of atomic
operations for one machine, *imitating the back-end*: common
subexpressions are evaluated once, loop-invariant work is marked
one-time (it will be hoisted), recognized reduction accumulators stay
in registers with their per-iteration stores eliminated, multiply-adds
are fused where the machine supports them, induction-variable
addressing is free, dead values are removed, and register pressure
forces spill stores.

The two-level mapping runs inside: expressions specialize to basic
operations (:mod:`.specialize`), which resolve to machine atomics
(:mod:`.atomic_map`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    Expr,
    FuncCall,
    IntConst,
    RealConst,
    Stmt,
    UnOp,
    VarRef,
)
from ..ir.symtab import SymbolTable
from ..ir.types import ScalarType
from ..ir.visitor import walk_exprs
from ..machine.machine import Machine
from ..obs import trace_span
from .atomic_map import resolve_basic_op
from .backend_opts import AGGRESSIVE_BACKEND, BackendFlags
from .basic_ops import load_op, store_op
from .patterns import Reduction, carried_scalar_chain, find_reductions
from .registers import RegisterPressure
from .specialize import specialize_binop, specialize_intrinsic, specialize_unop
from .stream import InstrStream

__all__ = ["BlockInfo", "Translator"]

#: Atomic-op side effects survive dead-code elimination.
_SIDE_EFFECT_BASIC = frozenset({
    "istore", "fstore", "dstore", "br", "jmp", "call",
})


@dataclass
class BlockInfo:
    """Everything the aggregator needs to know about one basic block."""

    stream: InstrStream
    reductions: list[Reduction] = field(default_factory=list)
    carried_latency: int = 0          # cycles of the per-iteration recurrence
    has_carried_chain: bool = False   # non-reduction scalar recurrence
    spills: int = 0
    external_calls: list[str] = field(default_factory=list)


class Translator:
    """IR basic blocks -> atomic instruction streams for one machine."""

    def __init__(
        self,
        machine: Machine,
        symtab: SymbolTable | None = None,
        flags: BackendFlags = AGGRESSIVE_BACKEND,
    ):
        self.machine = machine
        self.symtab = symtab if symtab is not None else SymbolTable()
        self.flags = flags

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def translate_block(
        self,
        stmts: tuple[Stmt, ...] | list[Stmt],
        loop_indices: tuple[str, ...] = (),
        label: str = "",
    ) -> BlockInfo:
        """Translate straight-line statements (assignments and calls).

        ``loop_indices`` are the enclosing loop variables, innermost
        last; they drive invariant detection and free addressing.
        """
        session = _BlockSession(self, tuple(stmts), loop_indices, label)
        return session.run()

    def translate_condition(
        self,
        cond: Expr,
        loop_indices: tuple[str, ...] = (),
        label: str = "cond",
    ) -> BlockInfo:
        """Translate a conditional expression plus its compare-and-branch."""
        session = _BlockSession(self, (), loop_indices, label)
        with trace_span("translate.specialize") as span:
            dep = session.translate_expr(cond)[0]
            deps = (dep,) if dep is not None else ()
            session.emit_basic("br", deps, tag="branch")
            if span.recording:
                span.set(label=label, emitted=len(session.stream))
        return session.finish()

    def loop_overhead(self, label: str = "loop-overhead") -> BlockInfo:
        """The per-iteration bookkeeping: increment, compare, branch."""
        session = _BlockSession(self, (), (), label)
        incr = session.emit_basic("iadd", (), tag="index += step")
        cmp_idx = session.emit_basic("icmp", (incr,), tag="index vs bound")
        session.emit_basic("br", (cmp_idx,), tag="loop back-edge")
        return session.finish()


class _BlockSession:
    """Translation state for one basic block."""

    def __init__(
        self,
        owner: Translator,
        stmts: tuple[Stmt, ...],
        loop_indices: tuple[str, ...],
        label: str,
    ):
        self.machine = owner.machine
        self.symtab = owner.symtab
        self.flags = owner.flags
        self.stmts = stmts
        self.loop_indices = loop_indices
        self.innermost = loop_indices[-1] if loop_indices else None
        self.stream = InstrStream(machine_name=owner.machine.name, label=label)
        self.value_cache: dict[Expr, tuple[int | None, bool]] = {}
        self.last_array_store: dict[str, int] = {}
        self.block_assigned = self._collect_assigned()
        self.arrays_stored = self._collect_stored_arrays()
        # A syntactic reduction is a true cross-iteration accumulator only
        # when its target does not move with the innermost loop index
        # (c(i,j) accumulating over k, or a scalar sum) -- c(i) += ... with
        # loop index i touches a fresh element each iteration.
        self.reductions = [
            r for r in find_reductions(stmts)
            if self._is_accumulator_target(r.statement.target)
        ]
        self.reduction_stmts = {r.statement for r in self.reductions}
        self.regs = RegisterPressure(
            owner.machine.fp_registers, owner.machine.int_registers
        )
        self.carried_latency = 0
        self.accumulator_final: dict[Expr, int] = {}
        self.external_calls: list[str] = []
        self.live_out: set[int] = set()

    def _is_accumulator_target(self, target: VarRef | ArrayRef) -> bool:
        if isinstance(target, VarRef):
            return True
        if self.innermost is None:
            return True
        for sub in target.subscripts:
            for node in walk_exprs(sub):
                if isinstance(node, VarRef) and node.name == self.innermost:
                    return False
        return True

    # -- pre-passes ---------------------------------------------------------
    def _collect_assigned(self) -> set[str]:
        names: set[str] = set()
        for stmt in self.stmts:
            if isinstance(stmt, Assign) and isinstance(stmt.target, VarRef):
                names.add(stmt.target.name)
        return names

    def _collect_stored_arrays(self) -> set[str]:
        names: set[str] = set()
        for stmt in self.stmts:
            if isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef):
                names.add(stmt.target.name)
        return names

    # -- driver ---------------------------------------------------------------
    def run(self) -> BlockInfo:
        with trace_span("translate.specialize") as span:
            for stmt in self.stmts:
                if isinstance(stmt, Assign):
                    self._translate_assign(stmt)
                elif isinstance(stmt, CallStmt):
                    self._translate_call(stmt)
                else:
                    raise TypeError(
                        f"translate_block only handles straight-line code, got {stmt}"
                    )
            self._store_accumulators()
            if span.recording:
                span.set(statements=len(self.stmts),
                         label=self.stream.label,
                         emitted=len(self.stream))
        return self.finish()

    def finish(self) -> BlockInfo:
        with trace_span("translate.atomic_map") as span:
            if self.flags.dce:
                self._eliminate_dead_code()
            if span.recording:
                span.set(label=self.stream.label,
                         atomics=len(self.stream),
                         spills=self.regs.spills,
                         reductions=len(self.reductions))
        return BlockInfo(
            stream=self.stream,
            reductions=self.reductions,
            carried_latency=self.carried_latency,
            has_carried_chain=self._has_non_reduction_chain(),
            spills=self.regs.spills,
            external_calls=self.external_calls,
        )

    def _has_non_reduction_chain(self) -> bool:
        if not self.stmts:
            return False
        reduction_keys = {r.target for r in self.reductions}
        non_reduction = tuple(
            s for s in self.stmts if s not in self.reduction_stmts
        )
        if not carried_scalar_chain(non_reduction):
            return False
        # A scalar both read and written outside reductions: real chain,
        # unless the only such scalars are recognized accumulators.
        return not all(key in reduction_keys for key in self._chain_scalars(non_reduction))

    @staticmethod
    def _chain_scalars(stmts: tuple[Stmt, ...]) -> set[str]:
        assigned: set[str] = set()
        read: set[str] = set()
        for stmt in stmts:
            if isinstance(stmt, Assign):
                for node in walk_exprs(stmt.value):
                    if isinstance(node, VarRef):
                        read.add(node.name)
                if isinstance(stmt.target, VarRef):
                    assigned.add(stmt.target.name)
        return assigned & read

    # -- emission ---------------------------------------------------------------
    def emit_basic(
        self,
        basic_op: str,
        deps: tuple[int, ...],
        tag: str = "",
        one_time: bool = False,
    ) -> int:
        """Emit the atomic expansion of one basic op; returns value index."""
        atomics = resolve_basic_op(self.machine, basic_op)
        index = -1
        for i, atomic in enumerate(atomics):
            chain = deps if i == 0 else (index,)
            instr = self.stream.append(atomic, chain, tag=tag, one_time=one_time)
            index = instr.index
        if index < 0:
            raise AssertionError(f"basic op {basic_op} expanded to nothing")
        return index

    # -- expressions ----------------------------------------------------------
    def translate_expr(self, expr: Expr) -> tuple[int | None, bool]:
        """Translate one expression.

        Returns ``(value_index, invariant)``: the stream index whose
        result holds the value (None for free values: constants, loop
        indices, already-registered scalars), and whether the value is
        invariant in the innermost loop.
        """
        if isinstance(expr, (IntConst, RealConst)):
            return None, True
        if isinstance(expr, VarRef):
            return self._translate_var(expr)
        if isinstance(expr, ArrayRef):
            return self._translate_array_load(expr)
        if isinstance(expr, BinOp):
            return self._translate_binop(expr)
        if isinstance(expr, UnOp):
            return self._translate_unop(expr)
        if isinstance(expr, FuncCall):
            return self._translate_funccall(expr)
        raise TypeError(f"cannot translate expression {expr!r}")

    def _cached(self, expr: Expr) -> tuple[int | None, bool] | None:
        if self.flags.cse:
            return self.value_cache.get(expr)
        return None

    def _remember(self, expr: Expr, value: int | None, invariant: bool) -> None:
        if self.flags.cse:
            self.value_cache[expr] = (value, invariant)

    def _is_invariant_name(self, name: str) -> bool:
        if name in self.block_assigned:
            return False
        return name != self.innermost

    def _translate_var(self, ref: VarRef) -> tuple[int | None, bool]:
        if ref.name in self.loop_indices:
            return None, ref.name != self.innermost
        # Scalar values live in registers once loaded or assigned --
        # this is register reuse, not CSE, so it ignores the cse flag.
        hit = self.value_cache.get(ref)
        if hit is not None:
            return hit
        scalar = self.symtab.scalar_type(ref.name)
        invariant = self.flags.licm and self._is_invariant_name(ref.name)
        one_time = invariant and self.innermost is not None
        value = self.emit_basic(
            load_op(scalar), (), tag=f"load {ref.name}", one_time=one_time
        )
        self._note_register(str(ref), scalar)
        self.value_cache[ref] = (value, invariant)
        return value, invariant

    def _translate_array_load(self, ref: ArrayRef) -> tuple[int | None, bool]:
        # Element values are forwarded/reused from registers regardless
        # of the cse flag (register reuse); see _translate_var.
        hit = self.value_cache.get(ref)
        if hit is not None:
            return hit
        deps, subs_invariant = self._subscript_deps(ref)
        order_dep = self._ordering_dep(ref)
        if order_dep is not None:
            deps = deps + (order_dep,)
        scalar = self.symtab.scalar_type(ref.name)
        invariant = (
            self.flags.licm
            and subs_invariant
            and ref.name not in self.arrays_stored
        )
        one_time = invariant and self.innermost is not None
        value = self.emit_basic(
            load_op(scalar), deps, tag=f"load {ref}", one_time=one_time
        )
        self._note_register(str(ref), scalar)
        self.value_cache[ref] = (value, invariant)
        return value, invariant

    def _subscript_deps(self, ref: ArrayRef) -> tuple[tuple[int, ...], bool]:
        """Cost of computing the element address.

        With strength-reduced addressing, affine subscripts in loop
        indices and invariants are free (update-form loads); otherwise
        each subscript expression is translated and charged, and its
        value feeds the load.
        """
        deps: list[int] = []
        invariant = True
        for sub in ref.subscripts:
            if self.flags.strength_reduce_addressing and self._is_affine(sub):
                invariant = invariant and self._expr_invariant(sub)
                continue
            value, sub_invariant = self.translate_expr(sub)
            invariant = invariant and sub_invariant
            if value is not None:
                deps.append(value)
        return tuple(deps), invariant

    def _is_affine(self, expr: Expr) -> bool:
        """Affine in loop indices / invariants: free under strength
        reduction."""
        if isinstance(expr, IntConst):
            return True
        if isinstance(expr, VarRef):
            return expr.name in self.loop_indices or expr.name not in self.block_assigned
        if isinstance(expr, UnOp) and expr.op == "-":
            return self._is_affine(expr.operand)
        if isinstance(expr, BinOp):
            if expr.op in ("+", "-"):
                return self._is_affine(expr.left) and self._is_affine(expr.right)
            if expr.op == "*":
                left_const = isinstance(expr.left, IntConst)
                right_const = isinstance(expr.right, IntConst)
                if left_const:
                    return self._is_affine(expr.right)
                if right_const:
                    return self._is_affine(expr.left)
        return False

    def _expr_invariant(self, expr: Expr) -> bool:
        for node in walk_exprs(expr):
            if isinstance(node, VarRef):
                if node.name == self.innermost or node.name in self.block_assigned:
                    return False
        return True

    def _ordering_dep(self, ref: ArrayRef) -> int | None:
        """Conservative memory ordering: a load after a may-alias store."""
        store = self.last_array_store.get(ref.name)
        if store is None:
            return None
        return store

    def _translate_binop(self, expr: BinOp) -> tuple[int | None, bool]:
        hit = self._cached(expr)
        if hit is not None:
            return hit
        fused = self._try_fma(expr)
        if fused is not None:
            self._remember(expr, fused[0], fused[1])
            return fused
        left_value, left_inv = self.translate_expr(expr.left)
        right_value, right_inv = self.translate_expr(expr.right)
        left_type = self.symtab.type_of(expr.left)
        right_type = self.symtab.type_of(expr.right)
        basics = specialize_binop(expr.op, left_type, right_type, expr.right)
        deps = tuple(d for d in (left_value, right_value) if d is not None)
        invariant = left_inv and right_inv
        if not basics:  # e.g. x ** 1: free
            value = left_value
        else:
            value = deps[0] if deps else None
            one_time = invariant and self.innermost is not None and self.flags.licm
            for i, basic in enumerate(basics):
                chain = deps if i == 0 else ((value,) if value is not None else ())
                value = self.emit_basic(
                    basic, chain, tag=f"{expr.op}", one_time=one_time
                )
        self._remember(expr, value, invariant)
        return value, invariant

    def _try_fma(self, expr: BinOp) -> tuple[int | None, bool] | None:
        """Fuse a*b+c (and c+a*b, a*b-c) into a multiply-add."""
        if not (self.flags.fuse_fma and self.machine.supports_fma):
            return None
        if expr.op not in ("+", "-"):
            return None
        result_type = self.symtab.type_of(expr)
        if not result_type.is_float:
            return None
        mul: BinOp | None = None
        other: Expr | None = None
        if isinstance(expr.left, BinOp) and expr.left.op == "*":
            mul, other = expr.left, expr.right
        elif (
            expr.op == "+"
            and isinstance(expr.right, BinOp)
            and expr.right.op == "*"
        ):
            mul, other = expr.right, expr.left
        if mul is None or not self.symtab.type_of(mul).is_float:
            return None
        a_value, a_inv = self.translate_expr(mul.left)
        b_value, b_inv = self.translate_expr(mul.right)
        c_value, c_inv = self.translate_expr(other)
        deps = tuple(d for d in (a_value, b_value, c_value) if d is not None)
        invariant = a_inv and b_inv and c_inv
        basic = "dfma" if result_type is ScalarType.DOUBLE else "fma"
        one_time = invariant and self.innermost is not None and self.flags.licm
        value = self.emit_basic(basic, deps, tag="fma", one_time=one_time)
        return value, invariant

    def _translate_unop(self, expr: UnOp) -> tuple[int | None, bool]:
        hit = self._cached(expr)
        if hit is not None:
            return hit
        value, invariant = self.translate_expr(expr.operand)
        basics = specialize_unop(expr.op, self.symtab.type_of(expr.operand))
        deps = (value,) if value is not None else ()
        one_time = invariant and self.innermost is not None and self.flags.licm
        for i, basic in enumerate(basics):
            chain = deps if i == 0 else ((value,) if value is not None else ())
            value = self.emit_basic(basic, chain, tag=expr.op, one_time=one_time)
        self._remember(expr, value, invariant)
        return value, invariant

    def _translate_funccall(self, expr: FuncCall) -> tuple[int | None, bool]:
        hit = self._cached(expr)
        if hit is not None:
            return hit
        deps: list[int] = []
        invariant = True
        for arg in expr.args:
            value, arg_inv = self.translate_expr(arg)
            invariant = invariant and arg_inv
            if value is not None:
                deps.append(value)
        basics = specialize_intrinsic(expr.name, self.symtab, expr.args)
        if basics == ["call"]:
            self.external_calls.append(expr.name)
        value: int | None = deps[0] if deps else None
        one_time = invariant and self.innermost is not None and self.flags.licm
        dep_tuple = tuple(deps)
        for i, basic in enumerate(basics):
            chain = dep_tuple if i == 0 else ((value,) if value is not None else ())
            value = self.emit_basic(
                basic, chain, tag=expr.name, one_time=one_time
            )
        if not basics:  # free conversion
            value = deps[0] if deps else None
        self._remember(expr, value, invariant)
        return value, invariant

    # -- statements ------------------------------------------------------------
    def _translate_assign(self, stmt: Assign) -> None:
        is_reduction = stmt in self.reduction_stmts
        if is_reduction and self.flags.registerize_scalars:
            self._translate_reduction(stmt)
            return
        value, _ = self.translate_expr(stmt.value)
        target = stmt.target
        if isinstance(target, VarRef):
            self._assign_scalar(target, value)
        else:
            self._assign_array(target, value)

    def _assign_scalar(self, target: VarRef, value: int | None) -> None:
        self.value_cache[target] = (value, False)
        if value is not None:
            self.live_out.add(value)
        if not self.flags.registerize_scalars:
            scalar = self.symtab.scalar_type(target.name)
            deps = (value,) if value is not None else ()
            self.emit_basic(store_op(scalar), deps, tag=f"store {target.name}")

    def _assign_array(self, target: ArrayRef, value: int | None) -> None:
        sub_deps, _ = self._subscript_deps(target)
        deps = sub_deps + ((value,) if value is not None else ())
        scalar = self.symtab.scalar_type(target.name)
        store = self.emit_basic(store_op(scalar), deps, tag=f"store {target}")
        self.last_array_store[target.name] = store
        # Forward the stored value to later loads of the same element.
        self.value_cache[target] = (value, False)

    def _translate_reduction(self, stmt: Assign) -> None:
        """Accumulate in a register; the store happens once, after the loop.

        The accumulator's initial load is one-time (hoisted); the
        accumulate operation itself is the loop-carried recurrence whose
        latency bounds iteration overlap.
        """
        target = stmt.target
        if target not in self.value_cache:
            # The accumulator's initial value loads once, before the loop.
            scalar = self.symtab.scalar_type(target.name)
            seed = self.emit_basic(
                load_op(scalar), (), tag=f"load {target} (acc)", one_time=True
            )
            self.value_cache[target] = (seed, False)
        value, _ = self.translate_expr(stmt.value)
        if value is not None:
            accumulate_atomic = self.stream[value].atomic
            latency = self.machine.atomic(accumulate_atomic).result_latency
            self.carried_latency = max(self.carried_latency, latency)
            self.live_out.add(value)
        self.value_cache[target] = (value, False)
        self.accumulator_final[target] = value if value is not None else before

    def _store_accumulators(self) -> None:
        """One-time stores of registered accumulators after the loop."""
        for target, value in self.accumulator_final.items():
            scalar = self.symtab.scalar_type(
                target.name if isinstance(target, (VarRef, ArrayRef)) else ""
            )
            self.emit_basic(
                store_op(scalar),
                (value,),
                tag=f"store {target} (post-loop)",
                one_time=True,
            )

    def _translate_call(self, stmt: CallStmt) -> None:
        if stmt.name == "return":
            return
        deps: list[int] = []
        for arg in stmt.args:
            value, _ = self.translate_expr(arg)
            if value is not None:
                deps.append(value)
        self.external_calls.append(stmt.name)
        self.emit_basic("call", tuple(deps), tag=f"call {stmt.name}")

    # -- register pressure -------------------------------------------------------
    def _note_register(self, key: str, scalar: ScalarType) -> None:
        evicted = self.regs.note_load(key, scalar.is_float)
        if evicted is not None:
            # The heuristic's forced spill store (section 2.2.1).
            self.emit_basic(
                store_op(scalar), (), tag=f"spill {evicted}",
            )

    # -- dead-code elimination ------------------------------------------------------
    def _eliminate_dead_code(self) -> None:
        instrs = self.stream.instrs
        if not instrs:
            return
        side_effects: set[int] = set()
        for instr in instrs:
            if _is_side_effecting(instr.atomic):
                side_effects.add(instr.index)
        live: set[int] = set(side_effects) | {
            v for v in self.live_out if v is not None
        }
        worklist = list(live)
        while worklist:
            index = worklist.pop()
            for dep in instrs[index].deps:
                if dep not in live:
                    live.add(dep)
                    worklist.append(dep)
        if len(live) == len(instrs):
            return
        keep = [i for i in instrs if i.index in live]
        remap = {old.index: new for new, old in enumerate(keep)}
        new_stream = InstrStream(
            machine_name=self.stream.machine_name, label=self.stream.label
        )
        for instr in keep:
            new_stream.append(
                instr.atomic,
                tuple(remap[d] for d in instr.deps if d in remap),
                tag=instr.tag,
                one_time=instr.one_time,
            )
        self.stream = new_stream


def _is_side_effecting(atomic: str) -> bool:
    return (
        "store" in atomic
        or "branch" in atomic
        or "call" in atomic
        or atomic in ("br", "jmp")
    )
