"""Level-2 translation: basic operations -> atomic operations.

The *atomic operation mapping* is architecture dependent but language
independent (section 2.2.1).  Each machine carries its own mapping; a
basic operation the machine does not map directly is decomposed through
the language-level :data:`~repro.translate.basic_ops.FALLBACKS` table
(e.g. ``fma`` -> ``fmul`` + ``fadd`` on a machine without
multiply-and-add) until every name resolves.
"""

from __future__ import annotations

from ..machine.machine import Machine
from .basic_ops import ALL_BASIC_OPS, FALLBACKS

__all__ = ["resolve_basic_op", "UnsupportedOperation"]

_MAX_DEPTH = 8


class UnsupportedOperation(KeyError):
    """A basic operation has no mapping and no usable fallback."""


def resolve_basic_op(machine: Machine, basic_op: str) -> tuple[str, ...]:
    """Atomic-op names for one basic operation on one machine.

    The result is an ordered sequence; the translator chains each
    atomic's result into the next (a multi-atomic expansion behaves as
    a dependent micro-op sequence).
    """
    if basic_op not in ALL_BASIC_OPS:
        raise UnsupportedOperation(f"unknown basic op {basic_op!r}")
    return _resolve(machine, basic_op, 0)


def _resolve(machine: Machine, name: str, depth: int) -> tuple[str, ...]:
    if depth > _MAX_DEPTH:
        raise UnsupportedOperation(
            f"fallback recursion too deep resolving {name!r} on {machine.name}"
        )
    direct = machine.atomic_mapping.get(name)
    if direct is not None:
        return direct
    expansion = FALLBACKS.get(name)
    if expansion is None:
        raise UnsupportedOperation(
            f"machine {machine.name} cannot execute basic op {name!r}"
        )
    out: list[str] = []
    for sub in expansion:
        out.extend(_resolve(machine, sub, depth + 1))
    return tuple(out)
