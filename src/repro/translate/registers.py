"""Register-pressure heuristic (paper section 2.2.1).

"The effect of the limited number of registers on performance is
simulated by using a heuristic that forces a store after certain number
of loads."

The tracker counts simultaneously-live loaded values per register
class; once the count passes the budget, each further load also incurs
a spill store (and the evicted value will reload if used again -- the
re-load shows up naturally because the translator's CSE cache entry is
invalidated).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RegisterPressure"]

#: Registers reserved for the stack pointer, constants, accumulators...
_RESERVED = 4


@dataclass
class RegisterPressure:
    """Tracks live loaded values and reports forced spills.

    ``fp_budget`` / ``int_budget`` are the machine's register counts;
    the heuristic spills once live values exceed ``budget - reserved``.
    """

    fp_budget: int
    int_budget: int
    fp_live: list[str] = field(default_factory=list)
    int_live: list[str] = field(default_factory=list)
    spills: int = 0

    def note_load(self, key: str, is_float: bool) -> str | None:
        """Record a loaded value; returns the evicted key on spill.

        The eviction is FIFO -- deliberately crude, like the paper's
        heuristic: the point is to charge *some* store traffic when a
        block's working set exceeds the register file, not to model a
        real allocator.
        """
        live = self.fp_live if is_float else self.int_live
        budget = (self.fp_budget if is_float else self.int_budget) - _RESERVED
        if key in live:
            return None
        live.append(key)
        if len(live) > max(budget, 1):
            evicted = live.pop(0)
            self.spills += 1
            return evicted
        return None

    def forget(self, key: str) -> None:
        """Drop a value (e.g. it was overwritten)."""
        if key in self.fp_live:
            self.fp_live.remove(key)
        if key in self.int_live:
            self.int_live.remove(key)
