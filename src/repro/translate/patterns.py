"""Pattern recognizers for common operations (paper section 2.2.2).

"The cost model can use pattern matching techniques to recognize some
commonly used operations such as sum-reductions for which all but one
store instruction can be eliminated by using registers.  The same
technique can be applied to other operations such as inner products,
array-constant multiply, or array multiplications."

Recognition has two uses: the translator keeps recognized accumulators
in registers (eliminating per-iteration stores), and the aggregator
learns the loop-carried dependence chain that bounds iteration overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.nodes import ArrayRef, Assign, BinOp, Do, Expr, Stmt, VarRef
from ..ir.visitor import walk_exprs

__all__ = [
    "Reduction",
    "find_reductions",
    "is_inner_product_loop",
    "is_axpy_loop",
    "carried_scalar_chain",
]


@dataclass(frozen=True)
class Reduction:
    """A recognized accumulation ``acc = acc op expr``."""

    target: str          # scalar name, or "array:name" for array accumulators
    op: str              # "+", "-", or "*"
    statement: Assign


def _accumulator_key(target: VarRef | ArrayRef) -> str:
    if isinstance(target, VarRef):
        return target.name
    return f"array:{target.name}({', '.join(str(s) for s in target.subscripts)})"


def _reads_target(expr: Expr, target: VarRef | ArrayRef) -> bool:
    """Does the expression read exactly the assignment target?"""
    return any(node == target for node in walk_exprs(expr))


def find_reductions(body: tuple[Stmt, ...]) -> list[Reduction]:
    """Recognize ``s = s + e`` / ``s = e + s`` (and -, *) accumulations.

    Array-element accumulators (``c(i,j) = c(i,j) + ...``) count too:
    after unrolling they are exactly the 16 independent FMA chains of
    the paper's Matmul kernel.
    """
    out: list[Reduction] = []
    for stmt in body:
        if not isinstance(stmt, Assign):
            continue
        value = stmt.value
        if not isinstance(value, BinOp) or value.op not in ("+", "-", "*"):
            continue
        target = stmt.target
        if value.left == target and not _reads_target(value.right, target):
            out.append(Reduction(_accumulator_key(target), value.op, stmt))
        elif (
            value.op in ("+", "*")
            and value.right == target
            and not _reads_target(value.left, target)
        ):
            out.append(Reduction(_accumulator_key(target), value.op, stmt))
    return out


def is_inner_product_loop(loop: Do) -> bool:
    """``s = s + a(...) * b(...)`` as the only statement of the loop."""
    if len(loop.body) != 1:
        return False
    reductions = find_reductions(loop.body)
    if len(reductions) != 1 or reductions[0].op != "+":
        return False
    stmt = reductions[0].statement
    added = stmt.value.right if stmt.value.left == stmt.target else stmt.value.left
    return (
        isinstance(added, BinOp)
        and added.op == "*"
        and isinstance(added.left, ArrayRef)
        and isinstance(added.right, ArrayRef)
    )


def is_axpy_loop(loop: Do) -> bool:
    """``y(i) = y(i) + a * x(i)`` (or a*x(i) form) as the loop body."""
    if len(loop.body) != 1:
        return False
    stmt = loop.body[0]
    if not isinstance(stmt, Assign) or not isinstance(stmt.target, ArrayRef):
        return False
    value = stmt.value
    if not isinstance(value, BinOp) or value.op != "+":
        return False
    other = None
    if value.left == stmt.target:
        other = value.right
    elif value.right == stmt.target:
        other = value.left
    if other is None or not isinstance(other, BinOp) or other.op != "*":
        return False
    return isinstance(other.left, ArrayRef) or isinstance(other.right, ArrayRef)


def carried_scalar_chain(body: tuple[Stmt, ...]) -> bool:
    """Is there any scalar read-then-written across iterations?

    Conservative: a scalar that is both read and assigned in the body
    (in any order) carries a dependence from one iteration to the next,
    which forbids free iteration overlap.  Loop indices are handled by
    the caller (they are recurrences too, but strength-reduced away).
    """
    assigned: set[str] = set()
    read: set[str] = set()
    for stmt in body:
        if isinstance(stmt, Assign):
            for node in walk_exprs(stmt.value):
                if isinstance(node, VarRef):
                    read.add(node.name)
            if isinstance(stmt.target, VarRef):
                assigned.add(stmt.target.name)
            else:
                for sub in stmt.target.subscripts:
                    for node in walk_exprs(sub):
                        if isinstance(node, VarRef):
                            read.add(node.name)
    return bool(assigned & read)
