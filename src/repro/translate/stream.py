"""Atomic-instruction streams: what translation hands the cost model.

The instruction translation module (section 2.2) turns a basic block
into a stream of atomic operations with data-dependence edges; the cost
model's placement algorithm (section 2.1) then drops those operations
into the functional-unit bins.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = ["Instr", "InstrStream", "placement_digest", "reindex"]


def placement_digest(instrs: Sequence["Instr"]) -> str:
    """Hex digest of a stream's placement-relevant content.

    Covers index, atomic op, dependence edges, and the one-time flag --
    everything placement reads -- and nothing else (tags are
    diagnostic).  :class:`InstrStream` memoizes it (:meth:`~InstrStream.digest`),
    so callers that hold a stream object hash it once, not per lookup.
    """
    h = hashlib.blake2b(digest_size=16)
    update = h.update
    for instr in instrs:
        update(b"|")
        update(str(instr.index).encode())
        update(instr.atomic.encode())
        update(b"1" if instr.one_time else b"0")
        for dep in instr.deps:
            update(b",")
            update(str(dep).encode())
    return h.hexdigest()


def reindex(instrs: list["Instr"]) -> list["Instr"]:
    """Renumber a filtered instruction list densely, remapping deps.

    Dependences on instructions outside the list are dropped: the
    producing value is assumed to be available (e.g. a loop-invariant
    operand already sitting in a register).
    """
    index_map = {instr.index: new for new, instr in enumerate(instrs)}
    out: list[Instr] = []
    for new_index, instr in enumerate(instrs):
        deps = tuple(index_map[d] for d in instr.deps if d in index_map)
        out.append(Instr(new_index, instr.atomic, deps, instr.tag, instr.one_time))
    return out


@dataclass(frozen=True)
class Instr:
    """One atomic operation in a basic block's instruction stream.

    ``deps`` lists the stream indices of instructions whose *results*
    this one consumes (flow dependences): the placement algorithm will
    not start it before those results are available (the paper's
    "filter" on top of each cost object).
    """

    index: int
    atomic: str
    deps: tuple[int, ...] = ()
    tag: str = ""
    one_time: bool = False  # loop-invariant: costed once, not per iteration

    def __post_init__(self) -> None:
        for dep in self.deps:
            if dep >= self.index:
                raise ValueError(
                    f"instr {self.index} depends on later/self instr {dep}"
                )
            if dep < 0:
                raise ValueError(f"instr {self.index} has negative dep {dep}")

    def __str__(self) -> str:
        deps = f" <-{list(self.deps)}" if self.deps else ""
        note = f"  ; {self.tag}" if self.tag else ""
        return f"{self.index:3d}: {self.atomic}{deps}{note}"


@dataclass
class InstrStream:
    """An ordered list of atomic instructions for one basic block."""

    instrs: list[Instr] = field(default_factory=list)
    machine_name: str = ""
    label: str = ""
    #: Memoized placement digest; dropped on append.
    _digest: str | None = field(default=None, init=False, repr=False,
                                compare=False)

    def append(self, atomic: str, deps: tuple[int, ...] = (), tag: str = "",
               one_time: bool = False) -> Instr:
        instr = Instr(len(self.instrs), atomic, deps, tag, one_time)
        self.instrs.append(instr)
        self._digest = None
        return instr

    def digest(self) -> str:
        """The placement digest, computed once and cached on the stream."""
        if self._digest is None:
            self._digest = placement_digest(self.instrs)
        return self._digest

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __getitem__(self, index: int) -> Instr:
        return self.instrs[index]

    def iterative(self) -> list[Instr]:
        """Instructions charged per iteration (the non-one-time part)."""
        return [i for i in self.instrs if not i.one_time]

    def one_time(self) -> list[Instr]:
        """Loop-invariant instructions, costed once outside the loop."""
        return [i for i in self.instrs if i.one_time]

    def counts(self) -> dict[str, int]:
        """Histogram of atomic op names (used by the op-count baseline)."""
        out: dict[str, int] = {}
        for instr in self.instrs:
            out[instr.atomic] = out.get(instr.atomic, 0) + 1
        return out

    def listing(self) -> str:
        header = f"; {self.label or 'block'} on {self.machine_name or '?'}\n"
        return header + "\n".join(str(i) for i in self.instrs)
