"""Imitated back-end optimizations and their capability flags.

Section 2.2.2: performance estimation runs *before* code generation,
so the translator must imitate the low-level optimizations the back-end
will later perform, or the source-level estimate will not match the
generated code.  "To ease this process, flags representing the
optimization capabilities of the back-end are defined and used for
tuning the cost model" -- porting the cost model to a *compiler* (as
opposed to a machine) is a matter of setting these flags.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["BackendFlags", "AGGRESSIVE_BACKEND", "NAIVE_BACKEND"]


@dataclass(frozen=True)
class BackendFlags:
    """Which back-end optimizations the target compiler performs.

    Each flag corresponds to an imitation implemented by the
    translator / aggregator:

    ``cse``                  evaluate common subexpressions once;
    ``licm``                 hoist loop-invariant expressions (costed in
                             the one-time bins, section 2.2.2);
    ``dce``                  drop computed-but-unused values;
    ``fuse_fma``             use multiply-and-add where the machine has it;
    ``registerize_scalars``  keep block-local scalars in registers and
                             eliminate per-iteration stores (this is what
                             makes sum-reductions cheap);
    ``strength_reduce_addressing``  induction-variable addressing is free
                             (update-form loads), only non-affine subscript
                             arithmetic is charged;
    ``branch_optimize``      let naturally-covered branches cost nothing
                             (shape matching, section 2.2.2);
    ``overlap_iterations``   credit shape overlap between loop iterations
                             when no loop-carried dependence forbids it.
    """

    cse: bool = True
    licm: bool = True
    dce: bool = True
    fuse_fma: bool = True
    registerize_scalars: bool = True
    strength_reduce_addressing: bool = True
    branch_optimize: bool = True
    overlap_iterations: bool = True

    def without(self, **off: bool) -> "BackendFlags":
        """A copy with the named optimizations disabled, e.g.
        ``flags.without(cse=True, licm=True)``."""
        updates = {name: False for name, value in off.items() if value}
        return replace(self, **updates)


#: A modern optimizing back-end (IBM xlf-class): everything on.
AGGRESSIVE_BACKEND = BackendFlags()

#: A naive code generator: no optimization imitation at all.
NAIVE_BACKEND = BackendFlags(
    cse=False,
    licm=False,
    dce=False,
    fuse_fma=False,
    registerize_scalars=False,
    strength_reduce_addressing=False,
    branch_optimize=False,
    overlap_iterations=False,
)
