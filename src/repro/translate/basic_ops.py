"""The basic operation vocabulary (language- and machine-independent).

Section 2.2.1: the *operation specialization mapping* translates
language-specific expressions into "language independent basic
operations such as integer-add operation, floating-point multiply-add
operation, etc.".  This module fixes that vocabulary.  Each machine's
*atomic operation mapping* then lowers these names to its own atomic
operations; names a machine does not map are decomposed via
:data:`FALLBACKS` (e.g. ``fma`` on a machine without multiply-and-add).

Type prefixes: ``i`` integer, ``f`` single-precision, ``d`` double.
"""

from __future__ import annotations

from ..ir.types import ScalarType

__all__ = [
    "ALL_BASIC_OPS",
    "FALLBACKS",
    "arith_op",
    "load_op",
    "store_op",
    "cmp_op",
    "PREFIX",
]

#: Scalar type -> basic-op prefix.
PREFIX = {
    ScalarType.INTEGER: "i",
    ScalarType.REAL: "f",
    ScalarType.DOUBLE: "d",
    ScalarType.LOGICAL: "i",  # logicals live in integer registers
}

_ARITH = [
    "add", "sub", "mul", "div", "neg",
]

#: Every basic operation name the specializer may emit.
ALL_BASIC_OPS = frozenset(
    [f"{p}{op}" for p in "ifd" for op in _ARITH]
    + [
        "imul_small",            # integer multiply by a small constant
        "ipow",                  # integer power (decomposed when possible)
        "fma", "dfma",           # fused multiply-add
        "fsqrt", "dsqrt",
        "iload", "fload", "dload",
        "istore", "fstore", "dstore",
        "icmp", "fcmp", "dcmp",
        "br", "jmp",
        "cvt_if", "cvt_fi", "cvt_fd", "cvt_df",
        "iabs", "fabs", "dabs",
        "fmin", "fmax", "imin", "imax",
        "land", "lor", "lnot",
        "call",
    ]
)

#: Decompositions used when a machine's atomic mapping lacks a basic op.
#: Applied recursively until every name is mapped.
FALLBACKS: dict[str, tuple[str, ...]] = {
    "fma": ("fmul", "fadd"),
    "dfma": ("dmul", "dadd"),
    "imul_small": ("imul",),
    "ipow": ("imul", "imul"),  # general integer power: repeated multiplies
    "ineg": ("isub",),
    "fneg": ("fsub",),
    "dneg": ("dsub",),
    "iabs": ("icmp", "isub"),
    "fabs": ("fcmp", "fsub"),
    "dabs": ("dcmp", "dsub"),
    "fmin": ("fcmp", "fadd"),
    "fmax": ("fcmp", "fadd"),
    "imin": ("icmp", "iadd"),
    "imax": ("icmp", "iadd"),
    "land": ("iadd",),
    "lor": ("iadd",),
    "lnot": ("iadd",),
    "jmp": ("br",),
    "cvt_if": ("fadd",),
    "cvt_fi": ("fadd",),
    "cvt_fd": ("fadd",),
    "cvt_df": ("fadd",),
    "dsqrt": ("fsqrt",),
    "dadd": ("fadd",),
    "dsub": ("fsub",),
    "dmul": ("fmul",),
    "ddiv": ("fdiv",),
    "dload": ("fload",),
    "dstore": ("fstore",),
    "dcmp": ("fcmp",),
}


def arith_op(op: str, scalar: ScalarType) -> str:
    """Basic-op name for an arithmetic operator on a scalar type.

    ``op`` is one of ``add sub mul div neg``.
    """
    return f"{PREFIX[scalar]}{op}"


def load_op(scalar: ScalarType) -> str:
    return f"{PREFIX[scalar]}load"


def store_op(scalar: ScalarType) -> str:
    return f"{PREFIX[scalar]}store"


def cmp_op(scalar: ScalarType) -> str:
    return f"{PREFIX[scalar]}cmp"
