"""The high-level operation table (paper Figure 6, left column).

Declarative description of the source language's operations: which
arithmetic category each operator belongs to, which intrinsics exist
and how they specialize.  This table is language dependent and
architecture independent; a different front-end language would plug in
a different table while reusing the specializer machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HLOp", "HL_OPERATORS", "HL_INTRINSICS", "SMALL_MULTIPLIER_RANGE"]

#: The paper: integer multiply is cheap "when the multiplier has a value
#: between -128 and 127".
SMALL_MULTIPLIER_RANGE = (-128, 127)


@dataclass(frozen=True)
class HLOp:
    """One high-level operation: its category and basic-op stem."""

    spelling: str
    category: str        # "arith" | "compare" | "logical"
    stem: str            # basic-op stem, e.g. "add" -> iadd/fadd/dadd


#: Operator spelling -> high-level operation descriptor.
HL_OPERATORS: dict[str, HLOp] = {
    "+": HLOp("+", "arith", "add"),
    "-": HLOp("-", "arith", "sub"),
    "*": HLOp("*", "arith", "mul"),
    "/": HLOp("/", "arith", "div"),
    "**": HLOp("**", "arith", "pow"),
    ".lt.": HLOp(".lt.", "compare", "cmp"),
    ".le.": HLOp(".le.", "compare", "cmp"),
    ".gt.": HLOp(".gt.", "compare", "cmp"),
    ".ge.": HLOp(".ge.", "compare", "cmp"),
    ".eq.": HLOp(".eq.", "compare", "cmp"),
    ".ne.": HLOp(".ne.", "compare", "cmp"),
    ".and.": HLOp(".and.", "logical", "land"),
    ".or.": HLOp(".or.", "logical", "lor"),
}

#: Intrinsic name -> basic-op stem ("" means free / type conversion only).
HL_INTRINSICS: dict[str, str] = {
    "sqrt": "sqrt",
    "abs": "abs",
    "min": "min",
    "max": "max",
    "mod": "mod",
    "exp": "call",
    "log": "call",
    "sin": "call",
    "cos": "call",
    "int": "cvt",
    "real": "cvt",
    "dble": "cvt",
}
