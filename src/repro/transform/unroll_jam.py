"""Unroll-and-jam: unroll an outer loop and fuse the copies inward.

The transformation that actually produces the paper's Matmul kernel
("blocked and unrolled 4 times in both dimensions (a total of 16 FMA
operations in the basic block)"): unrolling the ``i`` and ``j`` loops
of a matmul and jamming the copies into the ``k`` body multiplies the
independent FMA chains in the innermost block, feeding the FPU's
pipeline.

Legality: jamming moves the copied inner iterations across outer
iterations -- exactly an interchange of the (outer, inner) pair -- so
the interchange test gates it.
"""

from __future__ import annotations

from ..analysis.dependence import interchange_legal
from ..ir.nodes import BinOp, Do, IntConst, Program, VarRef
from ..ir.visitor import rename_index
from .base import TransformSite, Transformation, loop_paths, replace_at, stmt_at

__all__ = ["UnrollAndJam", "unroll_and_jam"]


def unroll_and_jam(outer: Do, factor: int) -> Do:
    """Unroll ``outer`` by ``factor`` and jam the copies inward.

    The copies are jammed through the whole perfect nest into the
    *innermost* body (for a 3-deep matmul nest, unrolling ``i`` puts 4
    shifted statements into the ``k`` body, not 4 separate ``k`` loops).
    Requires every deeper loop's bounds to be independent of the outer
    index.  As with plain unrolling, the remainder iterations are
    omitted by the usual cost-study convention.
    """
    from ..analysis.loops import perfect_nest

    if factor < 2:
        raise ValueError("unroll-and-jam factor must be >= 2")
    nest = perfect_nest(outer)
    if len(nest) < 2:
        raise ValueError("unroll-and-jam needs a perfectly nested pair")
    for info in nest[1:]:
        if _bounds_mention(info.loop, outer.var):
            raise ValueError(
                f"inner loop {info.loop.var}'s bounds depend on {outer.var}"
            )
    innermost = nest[-1].loop
    jammed_body = []
    for k in range(factor):
        if k == 0:
            jammed_body.extend(innermost.body)
            continue
        shift = (
            IntConst(k)
            if outer.step == IntConst(1)
            else BinOp("*", IntConst(k), outer.step)
        )
        offset = BinOp("+", VarRef(outer.var), shift)
        jammed_body.extend(rename_index(innermost.body, outer.var, offset))
    # Rebuild the nest bottom-up with the jammed innermost body.
    rebuilt: Do = Do(
        innermost.var, innermost.lb, innermost.ub, innermost.step,
        tuple(jammed_body),
    )
    for info in reversed(nest[1:-1]):
        loop = info.loop
        rebuilt = Do(loop.var, loop.lb, loop.ub, loop.step, (rebuilt,))
    new_step = (
        IntConst(factor)
        if outer.step == IntConst(1)
        else BinOp("*", IntConst(factor), outer.step)
    )
    return Do(outer.var, outer.lb, outer.ub, new_step, (rebuilt,))


class UnrollAndJam(Transformation):
    """Unroll-and-jam perfectly nested pairs by the configured factors."""

    name = "unroll-and-jam"

    def __init__(self, factors: tuple[int, ...] = (2, 4)):
        if any(f < 2 for f in factors):
            raise ValueError("factors must be >= 2")
        self.factors = factors

    def sites(self, program: Program) -> list[TransformSite]:
        from ..analysis.loops import perfect_nest

        out: list[TransformSite] = []
        for path, loop in loop_paths(program):
            nest = perfect_nest(loop)
            if len(nest) < 2:
                continue
            if any(_bounds_mention(info.loop, loop.var) for info in nest[1:]):
                continue
            # Jamming crosses outer iterations past every deeper loop:
            # the outer index must be interchange-legal with each.
            if not all(
                interchange_legal(loop, info.loop) for info in nest[1:]
            ):
                continue
            innermost = nest[-1].loop
            for factor in self.factors:
                out.append(TransformSite(
                    path,
                    f"unroll-and-jam {loop.var} x{factor} into {innermost.var}",
                    factor,
                ))
        return out

    def apply(self, program: Program, site: TransformSite) -> Program:
        loop = stmt_at(program, site.path)
        assert isinstance(loop, Do) and site.parameter is not None
        return replace_at(
            program, site.path, (unroll_and_jam(loop, site.parameter),)
        )


def _bounds_mention(inner: Do, outer_var: str) -> bool:
    from ..ir.visitor import walk_exprs

    for expr in (inner.lb, inner.ub, inner.step):
        if any(
            isinstance(node, VarRef) and node.name == outer_var
            for node in walk_exprs(expr)
        ):
            return True
    return False
