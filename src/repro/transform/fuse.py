"""Loop fusion and loop distribution.

Fusion merges adjacent conformable loops (fewer loop overheads, better
producer/consumer locality); distribution splits a multi-statement loop
into separate loops (enabling different per-statement treatment).  Both
use the dependence legality predicates from :mod:`repro.analysis`.
"""

from __future__ import annotations

from ..analysis.dependence import fusion_legal
from ..analysis.usedef import accesses
from ..ir.nodes import Assign, CallStmt, Do, Program, Stmt, VarRef
from ..ir.visitor import rename_index
from .base import Path, TransformSite, Transformation, loop_paths, replace_at, stmt_at

__all__ = ["Fuse", "Distribute", "fuse_loops", "distribute_loop"]


def fuse_loops(first: Do, second: Do) -> Do:
    """Concatenate two conformable loop bodies under the first index."""
    body2 = (
        second.body
        if second.var == first.var
        else rename_index(second.body, second.var, VarRef(first.var))
    )
    return Do(first.var, first.lb, first.ub, first.step, first.body + body2)


def distribute_loop(loop: Do, split: int) -> tuple[Do, Do]:
    """Split the body at ``split`` into two loops (legality: caller)."""
    if not 0 < split < len(loop.body):
        raise ValueError("split out of range")
    head = Do(loop.var, loop.lb, loop.ub, loop.step, loop.body[:split])
    tail = Do(loop.var, loop.lb, loop.ub, loop.step, loop.body[split:])
    return head, tail


def _distribution_legal(loop: Do, split: int) -> bool:
    """Conservative: the two groups must touch disjoint data, except
    that both may *read* the same names."""
    first, second = loop.body[:split], loop.body[split:]

    def summary(stmts: tuple[Stmt, ...]):
        reads: set[str] = set()
        writes: set[str] = set()
        for stmt in stmts:
            if not isinstance(stmt, (Assign, CallStmt)):
                return None
            acc = accesses(stmt)
            if acc.has_call:
                return None
            reads |= set(acc.reads_scalars | acc.reads_arrays)
            writes |= set(acc.writes_scalars | acc.writes_arrays)
        return reads, writes

    a = summary(first)
    b = summary(second)
    if a is None or b is None:
        return False
    reads_a, writes_a = a
    reads_b, writes_b = b
    return not (
        writes_a & (reads_b | writes_b) or writes_b & (reads_a | writes_a)
    )


class Fuse(Transformation):
    """Fuse adjacent conformable loops."""

    name = "fuse"

    def sites(self, program: Program) -> list[TransformSite]:
        out: list[TransformSite] = []
        seen: set[Path] = set()
        for path, loop in loop_paths(program):
            parent_path, index = path[:-1], path[-1]
            sibling_path = parent_path + (index + 1,)
            try:
                sibling = stmt_at(program, sibling_path)
            except IndexError:
                continue
            if not isinstance(sibling, Do):
                continue
            if path in seen:
                continue
            seen.add(path)
            if fusion_legal(loop, sibling):
                out.append(TransformSite(
                    path, f"fuse {loop.var}-loops at {path}"
                ))
        return out

    def apply(self, program: Program, site: TransformSite) -> Program:
        first = stmt_at(program, site.path)
        second_path = site.path[:-1] + (site.path[-1] + 1,)
        second = stmt_at(program, second_path)
        assert isinstance(first, Do) and isinstance(second, Do)
        fused = fuse_loops(first, second)
        # Replace the pair: drop the second, substitute the first.
        without_second = replace_at(program, second_path, ())
        return replace_at(without_second, site.path, (fused,))


class Distribute(Transformation):
    """Split multi-statement loops into independent loops."""

    name = "distribute"

    def sites(self, program: Program) -> list[TransformSite]:
        out: list[TransformSite] = []
        for path, loop in loop_paths(program):
            if len(loop.body) < 2:
                continue
            for split in range(1, len(loop.body)):
                if _distribution_legal(loop, split):
                    out.append(TransformSite(
                        path, f"distribute {loop.var}-loop at {split}", split
                    ))
        return out

    def apply(self, program: Program, site: TransformSite) -> Program:
        loop = stmt_at(program, site.path)
        assert isinstance(loop, Do) and site.parameter is not None
        head, tail = distribute_loop(loop, site.parameter)
        return replace_at(program, site.path, (head, tail))
