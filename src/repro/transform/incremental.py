"""Incremental update of performance predictions (paper section 3.3.1).

"The performance prediction framework needs to support incremental
update so that cost of maintaining up-to-date performance during the
program optimization process is as small as possible.  To avoid
unnecessary recomputing, each transformation defines an affected region
of performance based on the structure it changes."

The implementation exploits the IR's structural immutability: a
transformation rebuilds only the spine from the changed site to the
root, so every untouched subtree compares equal to its old self.
Caching ``cost_stmts`` by (statements, enclosing indices) therefore
*is* the affected-region rule: exactly the changed region and its
ancestors miss the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..aggregate.aggregator import CostAggregator
from ..ir.nodes import Program, Stmt
from ..symbolic.expr import PerfExpr

__all__ = ["CacheStats", "IncrementalPredictor"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


class IncrementalPredictor:
    """A caching wrapper around :class:`CostAggregator`.

    Repeated predictions of transformed variants reuse the costs of
    unchanged regions; ``stats`` reports how much work was avoided.
    """

    def __init__(self, aggregator: CostAggregator):
        self.aggregator = aggregator
        self._cache: dict[tuple[tuple[Stmt, ...], tuple[str, ...]], PerfExpr] = {}
        self.stats = CacheStats()
        self._install()

    def _install(self) -> None:
        """Route the aggregator's recursion through the cache.

        ``cost_stmts`` recurses via ``self.aggregator.cost_stmts`` in
        loop aggregation, so overriding the bound method captures every
        compound region, at every nesting level.
        """
        original_stmts = self.aggregator.cost_stmts
        original_loop = self.aggregator.cost_loop

        def cached_stmts(stmts, enclosing=()):
            key = ("stmts", tuple(stmts), tuple(enclosing))
            hit = self._cache.get(key)
            if hit is not None:
                self.stats.hits += 1
                return hit
            self.stats.misses += 1
            result = original_stmts(stmts, enclosing)
            self._cache[key] = result
            return result

        def cached_loop(stmt, enclosing=()):
            key = ("loop", stmt, tuple(enclosing))
            hit = self._cache.get(key)
            if hit is not None:
                self.stats.hits += 1
                return hit
            self.stats.misses += 1
            result = original_loop(stmt, enclosing)
            self._cache[key] = result
            return result

        self.aggregator.cost_stmts = cached_stmts  # type: ignore[method-assign]
        self.aggregator.cost_loop = cached_loop    # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def predict(self, program: Program) -> PerfExpr:
        """Predicted cost; unchanged subtrees come from the cache."""
        return self.aggregator.cost_stmts(program.body, ())

    def invalidate(self) -> None:
        """Drop the cache (e.g. after machine/flag changes)."""
        self._cache.clear()
        self.stats = CacheStats()
