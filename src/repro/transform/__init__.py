"""Program restructuring transformations and performance-guided search
(paper sections 3.2-3.3)."""

from .base import (
    Path,
    TransformSite,
    Transformation,
    loop_paths,
    replace_at,
    stmt_at,
)
from .fuse import Distribute, Fuse, distribute_loop, fuse_loops
from .incremental import CacheStats, IncrementalPredictor
from .interchange import Interchange, interchange_pair
from .parallel import SearchPool, shared_predictor
from .reorder import ReorderStatements
from .search import (
    RoundProgress,
    SearchCheckpoint,
    SearchResult,
    SearchStep,
    TranspositionTable,
    astar_search,
    exhaustive_search,
)
from .tile import StripMine, Tile2D, strip_mine, tile_nest_2d
from .unroll import Unroll, unroll_loop
from .unroll_jam import UnrollAndJam, unroll_and_jam

__all__ = [
    "CacheStats", "Distribute", "Fuse", "IncrementalPredictor",
    "Interchange", "Path", "ReorderStatements", "RoundProgress",
    "SearchCheckpoint", "SearchPool",
    "SearchResult", "SearchStep", "StripMine", "Tile2D", "TransformSite",
    "Transformation", "TranspositionTable",
    "astar_search", "distribute_loop", "exhaustive_search", "fuse_loops",
    "interchange_pair", "loop_paths", "replace_at", "shared_predictor",
    "stmt_at", "strip_mine", "tile_nest_2d", "unroll_loop",
    "UnrollAndJam", "unroll_and_jam",
]
