"""Transformation framework: sites, paths, and the rewrite protocol.

A *site* addresses a statement inside the (immutable) IR by the path of
body indices leading to it.  Transformations enumerate their applicable
sites and rebuild the program functionally; the incremental predictor
(section 3.3.1) exploits the sharing this leaves behind -- untouched
subtrees compare equal, so their cached costs are reused.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

from ..ir.nodes import Do, If, Program, Stmt

__all__ = [
    "Path",
    "TransformSite",
    "Transformation",
    "stmt_at",
    "replace_at",
    "loop_paths",
]

#: A path of body indices from the program root to a statement.  Each
#: element selects a child: in a Do, the body index; in an If, indices
#: 0..len(then)-1 address the then-arm and are offset by 1000 for the
#: else-arm (IR bodies are far smaller than 1000 statements).
Path = tuple[int, ...]

_ELSE_OFFSET = 1000


@dataclass(frozen=True)
class TransformSite:
    """One legal application point of a transformation."""

    path: Path
    description: str
    parameter: int | None = None  # unroll factor, tile size, ...


class Transformation(ABC):
    """A source-to-source restructuring transformation."""

    name: str = "transformation"

    @abstractmethod
    def sites(self, program: Program) -> list[TransformSite]:
        """All legal application sites in the program."""

    @abstractmethod
    def apply(self, program: Program, site: TransformSite) -> Program:
        """Functionally rebuild the program with the site transformed."""

    def affected_path(self, site: TransformSite) -> Path:
        """Root of the region whose cost the transformation may change.

        Default: the site itself (the enclosing structure is rebuilt but
        its *other* children keep their cached costs).
        """
        return site.path

    def __str__(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# Path navigation over the immutable IR
# ---------------------------------------------------------------------------

def stmt_at(program: Program, path: Path) -> Stmt:
    """The statement addressed by a path.

    A step under an ``If`` parent selects the then-arm for plain
    indices and the else-arm for indices offset by ``_ELSE_OFFSET``.
    """
    node: Stmt | None = None
    for step in path:
        if node is None:
            siblings: tuple[Stmt, ...] = program.body
            if step >= _ELSE_OFFSET or step >= len(siblings):
                raise IndexError(f"path step {step} out of range at root")
            node = siblings[step]
        elif isinstance(node, Do):
            if step >= _ELSE_OFFSET or step >= len(node.body):
                raise IndexError(f"path step {step} out of range in do-body")
            node = node.body[step]
        elif isinstance(node, If):
            if step >= _ELSE_OFFSET:
                node = node.else_body[step - _ELSE_OFFSET]
            else:
                node = node.then_body[step]
        else:
            raise IndexError(f"cannot descend into {node}")
    if node is None:
        raise IndexError("empty path")
    return node


def replace_at(
    program: Program, path: Path, replacement: tuple[Stmt, ...]
) -> Program:
    """Rebuild the program with the addressed statement replaced.

    ``replacement`` may contain zero, one, or several statements
    (deletion / substitution / splicing).
    """
    if not path:
        raise IndexError("empty path")
    new_body = _replace_in(program.body, path, replacement)
    return Program(program.name, program.decls, new_body, program.params)


def _replace_in(
    stmts: tuple[Stmt, ...], path: Path, replacement: tuple[Stmt, ...]
) -> tuple[Stmt, ...]:
    step, rest = path[0], path[1:]
    if step >= len(stmts):
        raise IndexError(f"path step {step} out of range")
    target = stmts[step]
    if not rest:
        return stmts[:step] + replacement + stmts[step + 1:]
    if isinstance(target, Do):
        new_child = Do(
            target.var, target.lb, target.ub, target.step,
            _replace_in(target.body, rest, replacement),
        )
    elif isinstance(target, If):
        then_len = len(target.then_body)
        inner_step = rest[0]
        if inner_step >= _ELSE_OFFSET:
            adjusted = (inner_step - _ELSE_OFFSET,) + rest[1:]
            new_child = If(
                target.cond,
                target.then_body,
                _replace_in(target.else_body, adjusted, replacement),
            )
        else:
            new_child = If(
                target.cond,
                _replace_in(target.then_body, rest, replacement),
                target.else_body,
            )
    else:
        raise IndexError(f"cannot descend into {target}")
    return stmts[:step] + (new_child,) + stmts[step + 1:]


def loop_paths(program: Program) -> Iterator[tuple[Path, Do]]:
    """All DO loops with their paths, preorder."""

    def walk(stmts: tuple[Stmt, ...], prefix: Path) -> Iterator[tuple[Path, Do]]:
        for i, stmt in enumerate(stmts):
            path = prefix + (i,)
            if isinstance(stmt, Do):
                yield path, stmt
                yield from walk(stmt.body, path)
            elif isinstance(stmt, If):
                yield from walk(stmt.then_body, path)
                for j, inner in enumerate(stmt.else_body):
                    else_path = path + (_ELSE_OFFSET + j,)
                    if isinstance(inner, Do):
                        yield else_path, inner
                        yield from walk(inner.body, else_path)

    yield from walk(program.body, ())
