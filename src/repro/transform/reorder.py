"""Statement reordering.

Section 2.4.2: "The shapes of the cost blocks can be used to decide the
order of statement blocks" -- exchanging independent adjacent
statements can expose overlap (an FXU-heavy statement slides next to an
FPU-heavy one).  Legality comes from
:func:`repro.analysis.statements_commute`.
"""

from __future__ import annotations

from ..analysis.usedef import statements_commute
from ..ir.nodes import Assign, CallStmt, Do, If, Program, Stmt
from .base import Path, TransformSite, Transformation, replace_at, stmt_at

__all__ = ["ReorderStatements"]


class ReorderStatements(Transformation):
    """Swap adjacent independent straight-line statements."""

    name = "reorder"

    def sites(self, program: Program) -> list[TransformSite]:
        out: list[TransformSite] = []

        def scan(stmts: tuple[Stmt, ...], prefix: Path) -> None:
            for i, stmt in enumerate(stmts):
                if isinstance(stmt, Do):
                    scan(stmt.body, prefix + (i,))
                elif isinstance(stmt, If):
                    scan(stmt.then_body, prefix + (i,))
                if i + 1 >= len(stmts):
                    continue
                nxt = stmts[i + 1]
                if (
                    isinstance(stmt, (Assign, CallStmt))
                    and isinstance(nxt, (Assign, CallStmt))
                    and statements_commute(stmt, nxt)
                ):
                    out.append(TransformSite(
                        prefix + (i,), f"swap statements {i} and {i + 1}"
                    ))

        scan(program.body, ())
        return out

    def apply(self, program: Program, site: TransformSite) -> Program:
        first = stmt_at(program, site.path)
        second_path = site.path[:-1] + (site.path[-1] + 1,)
        second = stmt_at(program, second_path)
        without_second = replace_at(program, second_path, ())
        return replace_at(without_second, site.path, (second, first))
