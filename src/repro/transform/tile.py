"""Loop tiling (blocking) and strip-mining.

Strip-mining a loop with tile size ``B`` produces the controlling loop
``do ii = lb, ub, B`` around ``do i = ii, ii + B - 1`` (the divisible
boundary convention; the symbolic trip counts absorb the remainder the
same way unrolling does).  Tiling a 2-D nest strip-mines both loops and
interchanges the middle pair, the classic blocked-matmul shape whose
cache benefit the memory model prices (paper's incremental-update
example even uses blocking: "when a loop is blocked, the execution time
for the straight line code inside the loop is not changed ... the cache
access cost for the loop is changed").
"""

from __future__ import annotations

from ..analysis.dependence import interchange_legal
from ..ir.nodes import BinOp, Do, IntConst, Program
from .base import TransformSite, Transformation, loop_paths, replace_at, stmt_at

__all__ = ["StripMine", "Tile2D", "strip_mine", "tile_nest_2d"]


def strip_mine(loop: Do, tile: int, control_suffix: str = "_blk") -> Do:
    """``do i`` -> ``do i_blk step B / do i = i_blk, i_blk + B - 1``."""
    if tile < 2:
        raise ValueError("tile size must be >= 2")
    if loop.step != IntConst(1):
        raise ValueError("strip-mining requires unit step")
    control = loop.var + control_suffix
    inner = Do(
        loop.var,
        _var(control),
        BinOp("+", _var(control), IntConst(tile - 1)),
        IntConst(1),
        loop.body,
    )
    return Do(control, loop.lb, loop.ub, IntConst(tile), (inner,))


def _var(name: str):
    from ..ir.nodes import VarRef

    return VarRef(name)


def tile_nest_2d(outer: Do, tile: int) -> Do:
    """Block a perfect 2-D nest: (i, j) -> (i_blk, j_blk, i, j)."""
    if len(outer.body) != 1 or not isinstance(outer.body[0], Do):
        raise ValueError("tiling needs a perfectly nested pair")
    inner = outer.body[0]
    # Strip-mine inner first, then outer, then interchange the middle
    # pair (i, j_blk) -> (j_blk, i).
    inner_stripped = strip_mine(inner, tile)          # j_blk / j
    outer_stripped = strip_mine(
        Do(outer.var, outer.lb, outer.ub, outer.step, (inner_stripped,)),
        tile,
    )                                                  # i_blk / i / j_blk / j
    i_loop = outer_stripped.body[0]
    assert isinstance(i_loop, Do)
    j_blk_loop = i_loop.body[0]
    assert isinstance(j_blk_loop, Do)
    swapped = Do(
        j_blk_loop.var, j_blk_loop.lb, j_blk_loop.ub, j_blk_loop.step,
        (Do(i_loop.var, i_loop.lb, i_loop.ub, i_loop.step, j_blk_loop.body),),
    )
    return Do(
        outer_stripped.var, outer_stripped.lb, outer_stripped.ub,
        outer_stripped.step, (swapped,),
    )


class StripMine(Transformation):
    """Strip-mine unit-step loops with the configured tile sizes."""

    name = "strip-mine"

    def __init__(self, tiles: tuple[int, ...] = (16, 64)):
        if any(t < 2 for t in tiles):
            raise ValueError("tile sizes must be >= 2")
        self.tiles = tiles

    def sites(self, program: Program) -> list[TransformSite]:
        out: list[TransformSite] = []
        for path, loop in loop_paths(program):
            if loop.step != IntConst(1):
                continue
            if loop.var.endswith("_blk"):
                continue  # don't re-tile control loops
            for tile in self.tiles:
                out.append(TransformSite(
                    path, f"strip-mine {loop.var} by {tile}", tile
                ))
        return out

    def apply(self, program: Program, site: TransformSite) -> Program:
        loop = stmt_at(program, site.path)
        assert isinstance(loop, Do) and site.parameter is not None
        return replace_at(program, site.path, (strip_mine(loop, site.parameter),))


class Tile2D(Transformation):
    """Block perfect 2-D nests (requires interchange legality)."""

    name = "tile2d"

    def __init__(self, tiles: tuple[int, ...] = (16, 64)):
        if any(t < 2 for t in tiles):
            raise ValueError("tile sizes must be >= 2")
        self.tiles = tiles

    def sites(self, program: Program) -> list[TransformSite]:
        out: list[TransformSite] = []
        for path, loop in loop_paths(program):
            if loop.step != IntConst(1) or loop.var.endswith("_blk"):
                continue
            if len(loop.body) != 1 or not isinstance(loop.body[0], Do):
                continue
            inner = loop.body[0]
            if inner.step != IntConst(1) or inner.var.endswith("_blk"):
                continue
            if not interchange_legal(loop, inner):
                continue
            for tile in self.tiles:
                out.append(TransformSite(
                    path,
                    f"tile ({loop.var},{inner.var}) by {tile}",
                    tile,
                ))
        return out

    def apply(self, program: Program, site: TransformSite) -> Program:
        loop = stmt_at(program, site.path)
        assert isinstance(loop, Do) and site.parameter is not None
        return replace_at(
            program, site.path, (tile_nest_2d(loop, site.parameter),)
        )
