"""Parallel evaluation of search candidates over a worker pool.

The cost model is pure Python, so evaluating one candidate at a time
serializes the search on the GIL.  :class:`SearchPool` ships each A*
expansion round's fresh candidates to a ``ProcessPoolExecutor`` in
chunks; predictions are pure functions of (program, machine), so the
results are bit-identical to inline evaluation and only the wall clock
changes.

Worker processes keep a bounded LRU of
:class:`~repro.transform.incremental.IncrementalPredictor` instances
(:func:`shared_predictor` -- the same pool the service engine's predict
path uses), so successive rounds on the same root program reuse the
paper's section 3.3.1 affected-region cache instead of re-aggregating
unchanged regions from scratch.

Degradation mirrors the service engine: processes -> threads (pickling
or pool failures) -> inline, never an error.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Sequence

from ..cost.placement import placement_kernel, set_placement_kernel
from ..ir.digest import stmts_digest
from ..ir.nodes import Program
from ..ir.symtab import SymbolTable
from ..machine.machine import Machine
from ..symbolic.expr import PerfExpr
from .incremental import IncrementalPredictor

__all__ = ["SearchPool", "shared_predictor", "evaluate_chunk"]


def _adopt_kernel(kernel: str | None) -> None:
    """Switch this process to the caller's placement kernel.

    ``set_placement_kernel`` only changes the calling process, so a
    worker forked before the engine (or a test) flipped the kernel
    would silently keep the old one; every pool task therefore carries
    the submitting process's kernel name and adopts it on arrival.
    All kernels are bit-identical, so this is a performance contract,
    not a correctness one.
    """
    if kernel is not None and kernel != placement_kernel():
        set_placement_kernel(kernel)

#: Per-process predictor pool bound.  One entry per (root program,
#: machine, flags) combination a worker has served.
PREDICTOR_LIMIT = 64

_predictors: OrderedDict[tuple, IncrementalPredictor] = OrderedDict()


def shared_predictor(
    key: tuple,
    machine: Machine,
    program: Program,
    backend: str = "aggressive",
    include_memory: bool = False,
) -> IncrementalPredictor:
    """The process-wide predictor for ``key``, built on first use.

    ``key`` must identify everything that shapes predictions: the
    program whose symbol table seeds the aggregator, the machine's cost
    table, and the back-end flags.  Both the service engine's predict
    path and the search pool's round evaluation route through this LRU,
    so a worker that has predicted a program once keeps its incremental
    cache warm for every later probe of that program's variants.
    """
    predictor = _predictors.get(key)
    if predictor is not None:
        _predictors.move_to_end(key)
        return predictor
    from ..aggregate.aggregator import CostAggregator
    from ..translate.backend_opts import AGGRESSIVE_BACKEND, NAIVE_BACKEND

    flags = NAIVE_BACKEND if backend == "naive" else AGGRESSIVE_BACKEND
    kwargs: dict[str, Any] = {}
    if include_memory:
        from ..memory.model import MemoryCostModel

        kwargs["memory_model"] = MemoryCostModel(machine)
        kwargs["include_memory"] = True
    predictor = IncrementalPredictor(CostAggregator(
        machine, SymbolTable.from_program(program), flags=flags, **kwargs,
    ))
    _predictors[key] = predictor
    while len(_predictors) > PREDICTOR_LIMIT:
        _predictors.popitem(last=False)
    return predictor


def evaluate_chunk(
    root: Program,
    root_key: tuple,
    machine: Machine,
    programs: Sequence[Program],
    kernel: str | None = None,
) -> list[PerfExpr]:
    """Predict a chunk of candidate programs (the pool's unit of work).

    The predictor is keyed by the *root* program: every candidate is a
    transformed variant sharing the root's declarations and symbol
    table, exactly as the serial search evaluates them.  ``kernel``
    names the submitter's placement kernel (see :func:`_adopt_kernel`);
    with ``"arena"``, every sibling candidate in the chunk bottoms out
    in this process's shared placement arena, so their near-identical
    straight-line streams fork from common prefix snapshots instead of
    re-dropping them.
    """
    _adopt_kernel(kernel)
    predictor = shared_predictor(root_key, machine, root)
    return [predictor.predict(program) for program in programs]


def _chunked(items: list, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous runs."""
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out, pos = [], 0
    for i in range(chunks):
        take = size + (1 if i < extra else 0)
        out.append(items[pos:pos + take])
        pos += take
    return out


class SearchPool:
    """Chunked, pooled evaluation of one search's candidate programs.

    ``pool`` may be an external executor (the service engine lends its
    own); the pool is then *borrowed* -- :meth:`close` will not shut it
    down -- and ``workers`` bounds how many chunks one ``evaluate``
    call may occupy at once, which is how the engine caps a heavy
    restructure's worker occupancy.
    """

    def __init__(
        self,
        root: Program,
        machine: Machine,
        workers: int,
        executor: str = "auto",
        pool: Executor | None = None,
        min_chunk: int = 4,
    ):
        if executor not in ("auto", "process", "thread", "sync"):
            raise ValueError(f"unknown executor policy {executor!r}")
        self.root = root
        self.machine = machine
        self.workers = max(1, workers)
        self.min_chunk = max(1, min_chunk)
        self.root_key = ("search", stmts_digest(root.body),
                         machine.fingerprint())
        self._policy = executor
        self._pool = pool
        self._borrowed = pool is not None

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self) -> None:
        if self._pool is not None or self.workers <= 1 or self._policy == "sync":
            return
        if self._policy in ("auto", "process"):
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
                return
            except (OSError, ValueError):
                if self._policy == "process":
                    raise
        self._pool = ThreadPoolExecutor(max_workers=self.workers)

    def close(self) -> None:
        if self._pool is not None and not self._borrowed:
            self._pool.shutdown(wait=True)
        self._pool = None

    def __enter__(self) -> "SearchPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation -----------------------------------------------------
    def _inline(self, programs: list[Program]) -> list[PerfExpr]:
        return evaluate_chunk(self.root, self.root_key, self.machine, programs)

    def evaluate(self, programs: Sequence[Program]) -> list[PerfExpr]:
        """Costs of ``programs``, in order; parallel when it can be.

        Structurally identical candidates (commuting transformation
        orders reconverge on the same program) are predicted once --
        the batch is deduped on ``stmts_digest`` before chunking and
        the shared cost fanned back out to every duplicate slot.
        """
        programs = list(programs)
        if not programs:
            return []
        digests = [stmts_digest(program.body) for program in programs]
        slot_of: dict[str, int] = {}
        unique: list[Program] = []
        for digest, program in zip(digests, programs):
            if digest not in slot_of:
                slot_of[digest] = len(unique)
                unique.append(program)
        costs = self._evaluate_unique(unique)
        if len(unique) == len(programs):
            return costs
        return [costs[slot_of[digest]] for digest in digests]

    def _evaluate_unique(self, programs: list[Program]) -> list[PerfExpr]:
        if self.workers <= 1:
            return self._inline(programs)
        self._ensure_pool()
        if self._pool is None:
            return self._inline(programs)
        kernel = placement_kernel()
        chunks = _chunked(
            programs,
            min(self.workers, max(1, len(programs) // self.min_chunk)),
        )
        try:
            futures = [
                self._pool.submit(
                    evaluate_chunk, self.root, self.root_key,
                    self.machine, chunk, kernel,
                )
                for chunk in chunks
            ]
            out: list[PerfExpr] = []
            for future in futures:
                out.extend(future.result())
            return out
        except (BrokenProcessPool, OSError, pickle.PicklingError,
                TypeError, AttributeError):
            # A worker died, or something in the closure refused to
            # pickle: give up on the pool for this search and continue
            # inline -- same results, just serial.
            self.close()
            self.workers = 1
            return self._inline(programs)
