"""Loop unrolling (paper section 2.2.2).

Replicates the innermost body ``factor`` times with the index shifted
by ``k * step`` per copy and multiplies the loop step by ``factor``.
Following the paper's cost-study convention, the remainder loop is
omitted (the trip count is treated as divisible by the factor; the
aggregation's symbolic trip count ``(ub - lb + f*step) / (f*step)``
absorbs the boundary).

The estimator offers two unroll-factor predictions (shape inspection
and repeated dropping, section 2.2.2); :func:`recommend_factor` exposes
them for the examples and benches.
"""

from __future__ import annotations

from ..ir.nodes import Assign, BinOp, CallStmt, Do, IntConst, Program, VarRef
from ..ir.visitor import rename_index
from .base import TransformSite, Transformation, loop_paths, replace_at, stmt_at

__all__ = ["Unroll", "unroll_loop"]


def unroll_loop(loop: Do, factor: int) -> Do:
    """The unrolled loop (main body only; remainder omitted by design)."""
    if factor < 2:
        raise ValueError("unroll factor must be >= 2")
    new_body = []
    for k in range(factor):
        if k == 0:
            new_body.extend(loop.body)
            continue
        offset: BinOp | VarRef
        shift = (
            IntConst(k)
            if loop.step == IntConst(1)
            else BinOp("*", IntConst(k), loop.step)
        )
        offset = BinOp("+", VarRef(loop.var), shift)
        new_body.extend(rename_index(loop.body, loop.var, offset))
    new_step = (
        IntConst(factor)
        if loop.step == IntConst(1)
        else BinOp("*", IntConst(factor), loop.step)
    )
    return Do(loop.var, loop.lb, loop.ub, new_step, tuple(new_body))


class Unroll(Transformation):
    """Unroll innermost straight-line loops by the configured factors."""

    name = "unroll"

    def __init__(self, factors: tuple[int, ...] = (2, 4)):
        if any(f < 2 for f in factors):
            raise ValueError("factors must be >= 2")
        self.factors = factors

    def sites(self, program: Program) -> list[TransformSite]:
        out: list[TransformSite] = []
        for path, loop in loop_paths(program):
            if not all(isinstance(s, (Assign, CallStmt)) for s in loop.body):
                continue  # only innermost straight-line bodies
            for factor in self.factors:
                out.append(TransformSite(
                    path, f"unroll {loop.var}-loop x{factor}", factor
                ))
        return out

    def apply(self, program: Program, site: TransformSite) -> Program:
        loop = stmt_at(program, site.path)
        assert isinstance(loop, Do) and site.parameter is not None
        return replace_at(
            program, site.path, (unroll_loop(loop, site.parameter),)
        )
