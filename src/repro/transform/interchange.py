"""Loop interchange.

Swaps a perfectly-nested pair of loops when the dependence distance
vectors permit it (:func:`repro.analysis.interchange_legal`).  The
classic profitability case -- which the performance-guided search
discovers by itself -- is turning a row-traversing inner loop into a
column-traversing one, or moving a parallel/overlappable loop inward.
"""

from __future__ import annotations

from ..analysis.dependence import interchange_legal
from ..ir.nodes import Do, Program
from .base import TransformSite, Transformation, loop_paths, replace_at, stmt_at

__all__ = ["Interchange", "interchange_pair"]


def interchange_pair(outer: Do) -> Do:
    """The interchanged nest (legality is the caller's concern)."""
    if len(outer.body) != 1 or not isinstance(outer.body[0], Do):
        raise ValueError("interchange needs a perfectly nested pair")
    inner = outer.body[0]
    new_outer = Do(
        inner.var, inner.lb, inner.ub, inner.step,
        (Do(outer.var, outer.lb, outer.ub, outer.step, inner.body),),
    )
    return new_outer


class Interchange(Transformation):
    """Interchange adjacent perfectly-nested loop pairs."""

    name = "interchange"

    def sites(self, program: Program) -> list[TransformSite]:
        out: list[TransformSite] = []
        for path, loop in loop_paths(program):
            if len(loop.body) == 1 and isinstance(loop.body[0], Do):
                inner = loop.body[0]
                # Bounds of the inner loop must not depend on the outer
                # index (no triangular interchange).
                if _mentions_index(inner, loop.var):
                    continue
                if interchange_legal(loop, inner):
                    out.append(TransformSite(
                        path, f"interchange {loop.var}<->{inner.var}"
                    ))
        return out

    def apply(self, program: Program, site: TransformSite) -> Program:
        loop = stmt_at(program, site.path)
        assert isinstance(loop, Do)
        return replace_at(program, site.path, (interchange_pair(loop),))


def _mentions_index(inner: Do, outer_var: str) -> bool:
    from ..ir.nodes import VarRef
    from ..ir.visitor import walk_exprs

    for expr in (inner.lb, inner.ub, inner.step):
        if any(
            isinstance(node, VarRef) and node.name == outer_var
            for node in walk_exprs(expr)
        ):
            return True
    return False
